//! # cfinder
//!
//! A Rust reproduction of **CFinder** — "Protecting Data Integrity of Web
//! Applications with Database Constraints Inferred from Application Code"
//! (Huang, Shen, Zhong, Zhou — ASPLOS 2023).
//!
//! CFinder statically analyzes web-application source code for code
//! patterns that carry implicit database-constraint assumptions (unique,
//! not-null, foreign key), infers the formal constraints, and diffs them
//! against the declared database schema to report *missing* constraints —
//! the ones that let application bugs and operator mistakes corrupt
//! production data.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`pyast`] — lexer/parser/AST for the analyzed Python subset.
//! * [`flow`] — control-flow graphs, use-def chains, NULL-guard analysis.
//! * [`schema`] — relational schemas, constraints, migrations, and the §2
//!   study analytics.
//! * [`core`] — the analyzer: pattern library, detectors, constraint
//!   extraction, schema diff.
//! * [`minidb`] — an in-memory RDBMS with constraint enforcement and the
//!   check-then-act race experiments.
//! * [`corpus`] — the deterministic synthetic application corpus standing
//!   in for the paper's eight evaluated apps.
//! * [`report`] — the evaluation harness regenerating every paper table.
//! * [`obs`] — observability substrate: hierarchical spans (Chrome-trace
//!   export), metrics (Prometheus exposition), detection provenance.
//! * [`sql`] — multi-dialect SQL backend: `schema.sql` ingestion
//!   (recovering DDL parser) and dialect-correct remediation DDL emission
//!   for PostgreSQL, MySQL, and SQLite.
//! * [`serve`] — the `cfinder serve` daemon: multi-tenant JSON-over-stdio
//!   analysis service with deadlines, backpressure, and graceful drain.
//!
//! ## Quick start
//!
//! ```
//! use cfinder::core::{AppSource, CFinder, SourceFile};
//! use cfinder::schema::Schema;
//!
//! let app = AppSource::new(
//!     "shop",
//!     vec![SourceFile::new(
//!         "models.py",
//!         "class Voucher(models.Model):\n    code = models.CharField(max_length=32)\n\n\ndef redeem(code):\n    if Voucher.objects.filter(code=code).exists():\n        raise ValueError('duplicate voucher')\n    Voucher.objects.create(code=code)\n",
//!     )],
//! );
//! let report = CFinder::new().analyze(&app, &Schema::new());
//! assert_eq!(report.missing[0].constraint.to_string(), "Voucher Unique (code)");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use cfinder_core as core;
pub use cfinder_corpus as corpus;
pub use cfinder_flow as flow;
pub use cfinder_minidb as minidb;
pub use cfinder_obs as obs;
pub use cfinder_pyast as pyast;
pub use cfinder_report as report;
pub use cfinder_schema as schema;
pub use cfinder_serve as serve;
pub use cfinder_sql as sql;
