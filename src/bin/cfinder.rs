//! The `cfinder` command-line tool: analyze a directory of Python source
//! files against a declared schema and report missing database constraints.
//!
//! ```console
//! $ cfinder path/to/app [--schema schema.json] [--schema-sql schema.sql] [--dialect postgres|mysql|sqlite] [--fix-out fixes.sql] [--json] [--timings] [--strict] [--provenance] [--cache-dir DIR] [--no-cache] [--trace-out FILE] [--metrics-out FILE] [--profile-out FILE] [--profile-hz N] [--max-file-bytes N] [--ablate FLAG…]
//! $ cfinder explain <table[.column]> path/to/app [--schema schema.json]
//! $ cfinder cache stats|clear <dir>
//! $ cfinder perf [--out DIR] [--scale quick|paper] [--smoke] [--baseline FILE] [--tolerance PCT]
//! $ cfinder serve [--workers N] [--queue N] [--max-frame-bytes N] [--cache-dir DIR] [--slow-log FILE] [--slow-ms N] [--profile-hz N]
//! ```
//!
//! * `--schema FILE` — declared schema as JSON (see
//!   `cfinder::schema::Schema::to_json`); without it, every inferred
//!   constraint is reported as missing.
//! * `--schema-sql FILE` — declared schema as a SQL DDL dump (`pg_dump
//!   --schema-only`, `mysqldump --no-data`, `sqlite3 .schema`); parsed by
//!   the recovering multi-dialect parser in `cfinder::sql` and merged with
//!   `--schema` (JSON wins on conflicts). A missing or unreadable file is
//!   a usage error (exit 2); malformed statements inside the dump are
//!   per-statement warnings, matching the analyzer's recovery discipline.
//! * `--dialect postgres|mysql|sqlite` — the SQL dialect used for every
//!   emitted fix (the `fix:` lines and `--fix-out`); defaults to
//!   `postgres`. An unknown name is a usage error (exit 2).
//! * `--fix-out FILE` — write the missing constraints as a remediation
//!   fix script in the selected dialect (deterministic; header comments +
//!   one DDL statement per missing constraint).
//! * `--json` — machine-readable output (one JSON document).
//! * `--timings` — per-stage timing breakdown. The human-readable mode
//!   prints an aligned stage/seconds/percent table to stderr that accounts
//!   for 100% of the analysis wall time (the four passes plus
//!   orchestration); `--json` embeds a `timings` object. The thread count
//!   defaults to the available parallelism and can be overridden with the
//!   `CFINDER_THREADS` environment variable.
//! * `--trace-out FILE` — record hierarchical spans (per pass, per file,
//!   per pattern family, per worker chunk) and write Chrome trace-event
//!   JSON to FILE, loadable in `chrome://tracing` or Perfetto.
//! * `--metrics-out FILE` — record the metrics registry (files, bytes,
//!   tokens, AST nodes, detections per pattern, incidents per kind,
//!   latency histograms with p50/p95/p99 quantile lines, …) and write
//!   Prometheus text exposition to FILE. Either flag also embeds a
//!   `metrics` block in `--json` output.
//! * `--profile-out FILE` — run the wall-clock sampling profiler over the
//!   live span stacks and write the aggregate in flamegraph-collapsed
//!   format (`stack count` lines) to FILE; a top-10 hot-span table goes
//!   to stderr. `--profile-hz N` sets the sampling rate (default 97).
//!   Implies span recording, like `--trace-out`.
//!
//! All output flags (`--fix-out`, `--trace-out`, `--metrics-out`,
//! `--profile-out`) publish atomically via a temp file and rename: a
//! crash mid-write never leaves a torn file at the destination.
//! * `--provenance` — in `--json` mode, attach to each missing constraint
//!   its full provenance chain (pattern rule → file:line → table/columns
//!   → DDL).
//! * `--cache-dir DIR` — enable the incremental analysis cache: per-file
//!   analysis facts are memoized on disk keyed by content hash and tool
//!   fingerprint, so re-running over an unchanged tree skips parsing and
//!   detection entirely while producing a byte-identical report. DIR is
//!   created if needed; an unwritable or non-directory path is a usage
//!   error (exit 2). The `CFINDER_CACHE_DIR` environment variable supplies
//!   a default; `--no-cache` overrides both.
//! * `--strict` — treat any incident (recovered syntax error, dropped
//!   file, worker panic) as a failure: exit 3 instead of 0/1.
//! * `--max-file-bytes N` — skip files larger than N bytes (`0` disables
//!   the cap; defaults to 8 MiB or `CFINDER_MAX_FILE_BYTES`).
//! * `--ablate null-guard|data-dep|composite|partial|check|default|interproc` —
//!   disable an analysis feature (repeatable; for experimentation).
//!   `interproc` turns off the call-graph summary propagation of §4.1.3:
//!   helper-wrapped validation (`def require(x): if x is None: raise` called
//!   at a site) is no longer credited to the call site, and provenance
//!   chains lose their `via` helper hop.
//!
//! The `cache` subcommand inspects or resets a cache directory:
//! `cfinder cache stats <dir>` prints entry/shard/byte counts, `cfinder
//! cache clear <dir>` removes every entry (only files matching the
//! cache's own layout are touched).
//!
//! The `explain` subcommand answers "why does CFinder want a constraint on
//! this column?": it analyzes the app, finds every inferred constraint on
//! `<table[.column]>`, and prints each supporting detection's provenance
//! chain — the PA_* pattern, its rule, and the exact source site. Exit 0
//! when at least one constraint was explained, 1 when none matched.
//!
//! A per-file parse deadline can be enabled with the `CFINDER_DEADLINE_MS`
//! environment variable; files that blow it are skipped with a `deadline`
//! incident.
//!
//! Exit code: 0 when no missing constraints were found, 1 when some were,
//! 2 on usage or I/O errors, 3 under `--strict` when the analysis
//! recorded incidents (this takes precedence over 0/1). Without
//! `--strict`, incidents are reported — as warnings plus a coverage
//! summary on stderr, or in the `incidents`/`coverage` JSON fields — and
//! do **not** affect the exit code: the analysis proceeds over everything
//! that could be analyzed, as in the paper's tool.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use cfinder::core::{
    atomic_write, cache::CACHE_DIR_ENV, AnalysisCache, AppSource, CFinder, CFinderOptions, Limits,
    Obs, SourceFile,
};
use cfinder::schema::Schema;
use cfinder::sql::Dialect;

struct Outcome {
    missing: usize,
    incidents: usize,
    strict: bool,
}

const USAGE: &str = "usage: cfinder <dir> [--schema schema.json] [--schema-sql schema.sql] [--dialect postgres|mysql|sqlite] [--fix-out fixes.sql] [--json] [--timings] [--strict] [--provenance] [--cache-dir DIR] [--no-cache] [--trace-out FILE] [--metrics-out FILE] [--profile-out FILE] [--profile-hz N] [--max-file-bytes N] [--ablate null-guard|data-dep|composite|partial|check|default|interproc]…\n       cfinder explain <table[.column]> <dir> [--schema schema.json]\n       cfinder cache stats|clear <dir>\n       cfinder perf [--out DIR] [--scale quick|paper] [--smoke] [--baseline FILE] [--tolerance PCT]\n       cfinder minidb-bench [--rows N] [--repeats N] [--min-speedup X]\n       cfinder serve [--workers N] [--queue N] [--max-frame-bytes N] [--cache-dir DIR] [--slow-log FILE] [--slow-ms N] [--profile-hz N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(outcome) => {
            if outcome.strict && outcome.incidents > 0 {
                ExitCode::from(3)
            } else if outcome.missing == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("cfinder: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<Outcome, String> {
    if args.first().is_some_and(|a| a == "explain") {
        return run_explain(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "cache") {
        return run_cache(&args[1..]);
    }
    if args.first().is_some_and(|a| a == "serve") {
        // `serve` never returns through the usage-error path below: like
        // `reproduce`, it reports misuse via the shared
        // `cfinder::core::usage` format and exits 2 itself.
        return Ok(run_serve(&args[1..]));
    }
    if args.first().is_some_and(|a| a == "perf") {
        // Same contract as `serve`: misuse exits 2 via the shared path.
        return Ok(run_perf(&args[1..]));
    }
    if args.first().is_some_and(|a| a == "minidb-bench") {
        // Same contract as `perf`.
        return Ok(run_minidb_bench(&args[1..]));
    }
    let mut dir: Option<PathBuf> = None;
    let mut schema_path: Option<PathBuf> = None;
    let mut schema_sql_path: Option<PathBuf> = None;
    let mut dialect = Dialect::Postgres;
    let mut fix_out: Option<PathBuf> = None;
    let mut json = false;
    let mut timings = false;
    let mut strict = false;
    let mut provenance = false;
    let mut cache_dir: Option<PathBuf> = std::env::var_os(CACHE_DIR_ENV).map(PathBuf::from);
    let mut no_cache = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut profile_out: Option<PathBuf> = None;
    let mut profile_hz: u32 = cfinder::obs::profile::DEFAULT_HZ;
    let mut options = CFinderOptions::default();
    let mut limits = Limits::from_env();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--schema" => {
                let v = it.next().ok_or("--schema requires a file argument")?;
                schema_path = Some(PathBuf::from(v));
            }
            "--schema-sql" => {
                let v = it.next().ok_or("--schema-sql requires a file argument")?;
                schema_sql_path = Some(PathBuf::from(v));
            }
            "--dialect" => {
                let v = it.next().ok_or("--dialect requires a dialect argument")?;
                dialect = v.parse::<Dialect>()?;
            }
            "--fix-out" => {
                let v = it.next().ok_or("--fix-out requires a file argument")?;
                fix_out = Some(PathBuf::from(v));
            }
            "--json" => json = true,
            "--timings" => timings = true,
            "--strict" => strict = true,
            "--provenance" => provenance = true,
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir requires a directory argument")?;
                cache_dir = Some(PathBuf::from(v));
            }
            "--no-cache" => no_cache = true,
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out requires a file argument")?;
                trace_out = Some(PathBuf::from(v));
            }
            "--metrics-out" => {
                let v = it.next().ok_or("--metrics-out requires a file argument")?;
                metrics_out = Some(PathBuf::from(v));
            }
            "--profile-out" => {
                let v = it.next().ok_or("--profile-out requires a file argument")?;
                profile_out = Some(PathBuf::from(v));
            }
            "--profile-hz" => {
                let v = it.next().ok_or("--profile-hz requires a rate argument")?;
                profile_hz = v
                    .trim()
                    .parse::<u32>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("invalid --profile-hz value `{v}`"))?;
            }
            "--max-file-bytes" => {
                let v = it.next().ok_or("--max-file-bytes requires a byte-count argument")?;
                limits.max_file_bytes = v
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --max-file-bytes value `{v}`"))?;
            }
            "--ablate" => {
                let v = it.next().ok_or("--ablate requires a flag argument")?;
                match v.as_str() {
                    "null-guard" => options.null_guard_analysis = false,
                    "data-dep" => options.data_dependency_checks = false,
                    "composite" => options.composite_unique = false,
                    "partial" => options.partial_unique = false,
                    "check" => options.check_inference = false,
                    "default" => options.default_inference = false,
                    "interproc" => options.interprocedural = false,
                    other => return Err(format!("unknown ablation flag `{other}`")),
                }
            }
            "--help" | "-h" => return Err("help requested".to_string()),
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let dir = dir.ok_or("missing source directory argument")?;
    let (app, mut declared) = load_app(&dir, schema_path.as_deref())?;
    if let Some(sql_path) = &schema_sql_path {
        merge_sql_schema(&mut declared, sql_path)?;
    }

    let obs = if profile_out.is_some() {
        Obs::profiled(profile_hz)
    } else if trace_out.is_some() || metrics_out.is_some() {
        Obs::enabled()
    } else {
        Obs::disabled()
    };
    let mut finder = CFinder::with_options(options).with_limits(limits).with_obs(obs.clone());
    // The cache is opened *before* analysis so an unusable directory is a
    // typed usage error (exit 2) up front, not an io panic mid-run.
    if let (Some(cache_dir), false) = (&cache_dir, no_cache) {
        let cache = AnalysisCache::open(cache_dir, &options, &limits).map_err(|e| e.to_string())?;
        finder = finder.with_cache(Arc::new(cache));
    }
    let report = finder.analyze(&app, &declared);
    let coverage = report.coverage();

    if let Some(path) = &fix_out {
        let script = cfinder::sql::fix_script(
            report.missing.iter().map(|m| &m.constraint),
            dialect,
            Some(&declared),
            &report.app,
        );
        atomic_write(path, script.as_bytes())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!(
            "fix script: {} constraint(s) written to {} ({} dialect)",
            report.missing.len(),
            path.display(),
            dialect
        );
    }

    if let Some(path) = &trace_out {
        atomic_write(path, obs.tracer.to_chrome_trace().as_bytes())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("trace: {} spans written to {}", obs.tracer.events().len(), path.display());
    }
    if let Some(path) = &metrics_out {
        atomic_write(path, obs.metrics.to_prometheus_text().as_bytes())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!(
            "metrics: {} families written to {}",
            obs.metrics.snapshot().families.len(),
            path.display()
        );
    }
    if let Some(path) = &profile_out {
        let profiler = obs.profiler();
        profiler.stop();
        let profile = profiler.report();
        atomic_write(path, profile.folded().as_bytes())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!(
            "profile: {} sample(s) across {} stack(s) at {} Hz written to {} (flamegraph-collapsed)",
            profile.total_samples(),
            profile.samples.len(),
            profile.hz,
            path.display()
        );
        for hot in profile.hot_spans(10) {
            eprintln!(
                "  hot: {:<40} self {:>6}  total {:>6}",
                hot.frame, hot.self_samples, hot.total_samples
            );
        }
    }

    if json {
        // A stable machine-readable shape: missing constraints with their
        // supporting detections, plus incident and coverage diagnostics.
        #[derive(serde::Serialize)]
        struct JsonTimings {
            parse_seconds: f64,
            model_extraction_seconds: f64,
            detection_seconds: f64,
            diff_seconds: f64,
            orchestration_seconds: f64,
            threads: usize,
            cache_hits: usize,
            cache_misses: usize,
            files_parsed: usize,
        }
        #[derive(serde::Serialize)]
        struct JsonProvenance {
            constraint: String,
            chain: Vec<cfinder::core::Provenance>,
        }
        #[derive(serde::Serialize)]
        struct JsonSample {
            label: Option<String>,
            value: u64,
            sum_seconds: Option<f64>,
        }
        #[derive(serde::Serialize)]
        struct JsonMetric {
            name: String,
            kind: String,
            samples: Vec<JsonSample>,
        }
        #[derive(serde::Serialize)]
        struct JsonOut<'a> {
            app: &'a str,
            loc: usize,
            analysis_seconds: f64,
            timings: Option<JsonTimings>,
            missing: &'a [cfinder::core::MissingConstraint],
            provenance: Option<Vec<JsonProvenance>>,
            existing_covered: Vec<String>,
            incidents: &'a [cfinder::core::Incident],
            coverage: cfinder::core::Coverage,
            metrics: Option<Vec<JsonMetric>>,
        }
        let metrics_block = obs.metrics.is_enabled().then(|| {
            obs.metrics
                .snapshot()
                .families
                .into_iter()
                .map(|f| JsonMetric {
                    name: f.name,
                    kind: f.kind.to_string(),
                    samples: f
                        .samples
                        .into_iter()
                        .map(|s| JsonSample {
                            label: s.label.map(|(k, v)| format!("{k}={v}")),
                            value: s.value,
                            sum_seconds: s.histogram.map(|h| h.sum_seconds),
                        })
                        .collect(),
                })
                .collect()
        });
        let out = JsonOut {
            app: &report.app,
            loc: report.loc,
            analysis_seconds: report.analysis_time.as_secs_f64(),
            timings: timings.then_some(JsonTimings {
                parse_seconds: report.timings.parse.as_secs_f64(),
                model_extraction_seconds: report.timings.model_extraction.as_secs_f64(),
                detection_seconds: report.timings.detection.as_secs_f64(),
                diff_seconds: report.timings.diff.as_secs_f64(),
                orchestration_seconds: report.timings.orchestration.as_secs_f64(),
                threads: report.timings.threads,
                cache_hits: report.timings.cache_hits,
                cache_misses: report.timings.cache_misses,
                files_parsed: report.timings.files_parsed,
            }),
            missing: &report.missing,
            provenance: provenance.then(|| {
                report
                    .missing
                    .iter()
                    .map(|m| JsonProvenance {
                        constraint: m.constraint.to_string(),
                        chain: m.provenance(),
                    })
                    .collect()
            }),
            existing_covered: report.existing_covered.iter().map(|c| c.describe()).collect(),
            incidents: &report.incidents,
            coverage,
            metrics: metrics_block,
        };
        println!("{}", serde_json::to_string_pretty(&out).expect("serializable"));
    } else {
        println!(
            "analyzed {} files, {} LoC in {:.2}s",
            app.files.len(),
            report.loc,
            report.analysis_time.as_secs_f64()
        );
        if timings {
            let t = &report.timings;
            let total = t.total().as_secs_f64().max(f64::EPSILON);
            eprintln!("{:<15} {:>9} {:>7}", "stage", "seconds", "%");
            for (label, d) in [
                ("parse", t.parse),
                ("models", t.model_extraction),
                ("detect", t.detection),
                ("diff", t.diff),
                ("orchestration", t.orchestration),
                ("total", t.total()),
            ] {
                let secs = d.as_secs_f64();
                eprintln!("{label:<15} {secs:>9.3} {:>7.1}", 100.0 * secs / total);
            }
            if cache_dir.is_some() && !no_cache {
                eprintln!(
                    "cache: {} hit(s), {} miss(es); {} file(s) parsed from source",
                    t.cache_hits, t.cache_misses, t.files_parsed
                );
            }
            eprintln!("({} threads)", t.threads);
        }
        // Without --strict, incidents are warnings only: they never change
        // the exit code, but degraded coverage is always said out loud.
        for incident in &report.incidents {
            eprintln!("warning: {incident}");
        }
        if !report.incidents.is_empty() {
            eprintln!("coverage: {coverage} ({})", report.incident_summary());
        }
        if report.missing.is_empty() {
            println!("no missing database constraints found");
        } else {
            println!("missing database constraints ({}):", report.missing.len());
            for m in &report.missing {
                println!("\n  {}", m.constraint);
                for d in &m.detections {
                    println!("    {} at {}:{}", d.pattern, d.file, d.span.start.line);
                }
                let ddl = cfinder::sql::constraint_ddl(&m.constraint, dialect, Some(&declared));
                for (i, line) in ddl.lines().enumerate() {
                    if i == 0 {
                        println!("    fix: {line}");
                    } else {
                        println!("         {line}");
                    }
                }
            }
        }
        if strict && !report.incidents.is_empty() {
            eprintln!(
                "error: --strict: {} incident(s) degraded the analysis",
                report.incidents.len()
            );
        }
    }
    Ok(Outcome { missing: report.missing.len(), incidents: report.incidents.len(), strict })
}

/// `cfinder explain <table[.column]> <dir> [--schema FILE]`: print the
/// provenance chain of every inferred constraint on the target.
fn run_explain(args: &[String]) -> Result<Outcome, String> {
    let mut target: Option<String> = None;
    let mut dir: Option<PathBuf> = None;
    let mut schema_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--schema" => {
                let v = it.next().ok_or("--schema requires a file argument")?;
                schema_path = Some(PathBuf::from(v));
            }
            other if !other.starts_with('-') && target.is_none() => {
                target = Some(other.to_string());
            }
            other if !other.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let target = target.ok_or("explain requires a <table[.column]> argument")?;
    let dir = dir.ok_or("missing source directory argument")?;
    let (table, column) = match target.split_once('.') {
        Some((t, c)) => (t.to_string(), Some(c.to_string())),
        None => (target.clone(), None),
    };

    let (app, declared) = load_app(&dir, schema_path.as_deref())?;
    let report = CFinder::new().analyze(&app, &declared);

    let matches_target = |c: &cfinder::schema::Constraint| {
        c.table() == table && column.as_deref().is_none_or(|col| c.columns().contains(&col))
    };

    let mut explained = 0usize;
    for m in &report.missing {
        if !matches_target(&m.constraint) {
            continue;
        }
        explained += 1;
        println!("{}   [missing from declared schema]", m.constraint);
        print_chains(&m.provenance());
        println!("  fix: {}\n", m.constraint.ddl());
    }
    for constraint in report.existing_covered.iter() {
        if !matches_target(constraint) {
            continue;
        }
        explained += 1;
        println!("{constraint}   [already declared; detections agree]");
        let chains: Vec<cfinder::core::Provenance> = report
            .detections
            .iter()
            .filter(|d| &d.constraint == constraint)
            .map(|d| d.provenance())
            .collect();
        print_chains(&chains);
        println!();
    }
    if explained == 0 {
        println!("no inferred constraint on `{target}` (analyzed {} files)", app.files.len());
    }
    Ok(Outcome { missing: usize::from(explained == 0), incidents: 0, strict: false })
}

/// One-line synopsis of the `serve` subcommand, for the shared
/// usage-error path.
const SERVE_USAGE: &str = "cfinder serve [--workers N] [--queue N] [--max-frame-bytes N] \
     [--cache-dir DIR] [--slow-log FILE] [--slow-ms N] [--profile-hz N]";

/// One-line synopsis of the `perf` subcommand, for the shared
/// usage-error path.
const PERF_USAGE: &str = "cfinder perf [--out DIR] [--scale quick|paper] [--smoke] \
     [--baseline FILE] [--tolerance PCT] [--profile-hz N]";

/// `cfinder perf`: run the two-round (cold + warm) benchmark over the
/// generated corpus with the sampling profiler attached, publish the
/// schema-versioned `BENCH_<stamp>.json` data point atomically under
/// `--out` (default `bench/`), and — when `--baseline` names a previous
/// data point — gate throughput against it (exit 1 on regression).
/// `--smoke` forces quick scale; it exists so CI can state its intent.
fn run_perf(args: &[String]) -> Outcome {
    use cfinder::core::usage;
    use cfinder::report::perf;

    let usage_error = |msg: &str| -> ! { usage::usage_error(msg, PERF_USAGE) };
    let mut out_dir = PathBuf::from("bench");
    let mut scale = "quick".to_string();
    let mut smoke = false;
    let mut baseline: Option<PathBuf> = None;
    let mut tolerance = 10.0f64;
    let mut profile_hz = cfinder::obs::profile::DEFAULT_HZ;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str, kind: &str| -> String {
            match it.next() {
                Some(v) if !v.starts_with("--") => v.clone(),
                Some(flag2) => usage_error(&format!("{flag} expects {kind}, found flag `{flag2}`")),
                None => usage_error(&format!("{flag} expects {kind}")),
            }
        };
        match arg.as_str() {
            "--out" => out_dir = PathBuf::from(value("--out", "a directory")),
            "--scale" => {
                scale = value("--scale", "quick|paper");
                if scale != "quick" && scale != "paper" {
                    usage_error(&format!("--scale expects quick|paper, found `{scale}`"));
                }
            }
            "--smoke" => smoke = true,
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline", "a file"))),
            "--tolerance" => {
                let v = value("--tolerance", "a percentage");
                tolerance = v
                    .trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|t| (0.0..100.0).contains(t))
                    .unwrap_or_else(|| usage_error(&format!("invalid --tolerance value `{v}`")));
            }
            "--profile-hz" => {
                let v = value("--profile-hz", "a positive integer");
                profile_hz =
                    v.trim().parse::<u32>().ok().filter(|n| *n > 0).unwrap_or_else(|| {
                        usage_error(&format!("invalid --profile-hz value `{v}`"))
                    });
            }
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if smoke {
        scale = "quick".to_string();
    }
    let options = if scale == "paper" {
        cfinder::corpus::GenOptions::paper()
    } else {
        cfinder::corpus::GenOptions::quick()
    };

    // The benchmark's cache is ephemeral by design: the warm round must
    // measure this build's cache, not a leftover from a previous run.
    let cache_dir = std::env::temp_dir().join(format!("cfinder-perf-{}", std::process::id()));
    let _ = fs::remove_dir_all(&cache_dir);
    if let Err(e) = fs::create_dir_all(&cache_dir) {
        eprintln!("perf: cannot create scratch cache {}: {e}", cache_dir.display());
        return Outcome { missing: 1, incidents: 0, strict: false };
    }
    let unix_seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let stamp = perf::utc_stamp(unix_seconds);
    let query_opts = if scale == "paper" {
        cfinder::report::QueryBenchOptions::full()
    } else {
        cfinder::report::QueryBenchOptions::quick()
    };
    eprintln!("perf: benchmarking 8 apps at {scale} scale (profiler at {profile_hz} Hz)…");
    let doc = match perf::run_benchmark(options, &scale, profile_hz, &cache_dir, &stamp, query_opts)
    {
        Ok(doc) => doc,
        Err(e) => {
            let _ = fs::remove_dir_all(&cache_dir);
            eprintln!("perf: benchmark failed: {e}");
            return Outcome { missing: 1, incidents: 0, strict: false };
        }
    };
    let _ = fs::remove_dir_all(&cache_dir);
    if let Err(e) = perf::validate_bench(&doc) {
        eprintln!("perf: emitted document failed schema validation: {e}");
        return Outcome { missing: 1, incidents: 0, strict: false };
    }

    let text = serde_json::to_string_pretty(&doc).expect("BENCH serialization") + "\n";
    let path = out_dir.join(format!("BENCH_{stamp}.json"));
    if let Err(e) = fs::create_dir_all(&out_dir).and_then(|()| atomic_write(&path, text.as_bytes()))
    {
        eprintln!("perf: cannot write {}: {e}", path.display());
        return Outcome { missing: 1, incidents: 0, strict: false };
    }
    let num = |key: &str| doc.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
    eprintln!(
        "perf: {} LoC at {:.0} LoC/s cold ({:.2}s), {:.2}s warm; wrote {}",
        doc.get("loc_total").and_then(|v| v.as_u64()).unwrap_or(0),
        num("loc_per_second"),
        num("wall_seconds"),
        num("warm_wall_seconds"),
        path.display()
    );
    if let Some(spans) =
        doc.get("profile").and_then(|p| p.get("hot_spans")).and_then(|s| s.as_seq())
    {
        for span in spans.iter().take(5) {
            eprintln!(
                "  hot: {:<40} self {:>6}  total {:>6}",
                span.get("frame").and_then(|v| v.as_str()).unwrap_or("?"),
                span.get("self_samples").and_then(|v| v.as_u64()).unwrap_or(0),
                span.get("total_samples").and_then(|v| v.as_u64()).unwrap_or(0),
            );
        }
    }
    if let Some(classes) =
        doc.get("query_bench").and_then(|q| q.get("classes")).and_then(|c| c.as_seq())
    {
        for class in classes {
            eprintln!(
                "  query: {:<20} {:>7.2}x rewrite speedup",
                class.get("name").and_then(|v| v.as_str()).unwrap_or("?"),
                class.get("speedup").and_then(|v| v.as_f64()).unwrap_or(0.0),
            );
        }
    }
    if smoke {
        eprintln!("perf: smoke ok (schema v{} document validated)", perf::BENCH_SCHEMA_VERSION);
    }

    if let Some(baseline_path) = baseline {
        let baseline_doc =
            fs::read_to_string(&baseline_path).map_err(|e| e.to_string()).and_then(|text| {
                serde_json::from_str::<serde_json::Value>(&text).map_err(|e| e.to_string())
            });
        let baseline_doc = match baseline_doc {
            Ok(doc) => doc,
            Err(e) => {
                usage_error(&format!("unreadable --baseline {}: {e}", baseline_path.display()))
            }
        };
        match perf::regression_gate(&doc, &baseline_doc, tolerance) {
            Ok(verdict) => eprintln!("perf: gate passed: {verdict}"),
            Err(verdict) => {
                eprintln!("perf: gate FAILED: {verdict}");
                return Outcome { missing: 1, incidents: 0, strict: false };
            }
        }
    }
    Outcome { missing: 0, incidents: 0, strict: false }
}

/// One-line synopsis of the `minidb-bench` subcommand.
const MINIDB_BENCH_USAGE: &str = "cfinder minidb-bench [--rows N] [--repeats N] [--min-speedup X]";

/// `cfinder minidb-bench`: race the naive query plan against the
/// constraint-rewritten plan for each workload class and print the
/// speedup table. Every timed pair is oracle-gated (identical results)
/// before timing. With `--min-speedup X`, exit 1 unless at least two
/// classes reach an X× speedup — the CI gate for the claim that
/// inferred constraints buy real query performance.
fn run_minidb_bench(args: &[String]) -> Outcome {
    use cfinder::core::usage;
    use cfinder::report::{query_bench_table, run_query_bench, QueryBenchOptions};

    let usage_error = |msg: &str| -> ! { usage::usage_error(msg, MINIDB_BENCH_USAGE) };
    let mut opts = QueryBenchOptions::quick();
    let mut min_speedup: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str, kind: &str| -> String {
            match it.next() {
                Some(v) if !v.starts_with("--") => v.clone(),
                Some(flag2) => usage_error(&format!("{flag} expects {kind}, found flag `{flag2}`")),
                None => usage_error(&format!("{flag} expects {kind}")),
            }
        };
        match arg.as_str() {
            "--rows" => {
                let v = value("--rows", "a positive integer");
                opts.rows = v
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage_error(&format!("invalid --rows value `{v}`")));
            }
            "--repeats" => {
                let v = value("--repeats", "a positive integer");
                opts.repeats = v
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage_error(&format!("invalid --repeats value `{v}`")));
            }
            "--min-speedup" => {
                let v = value("--min-speedup", "a factor > 1");
                min_speedup =
                    Some(v.trim().parse::<f64>().ok().filter(|x| *x >= 1.0).unwrap_or_else(|| {
                        usage_error(&format!("invalid --min-speedup value `{v}`"))
                    }));
            }
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }

    eprintln!(
        "minidb-bench: {} rows/class, median of {} runs (oracle-gated)…",
        opts.rows, opts.repeats
    );
    let results = match run_query_bench(opts) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("minidb-bench: {e}");
            return Outcome { missing: 1, incidents: 0, strict: false };
        }
    };
    print!("{}", query_bench_table(&results).render());
    if let Some(floor) = min_speedup {
        let winners = results.iter().filter(|r| r.speedup() >= floor).count();
        if winners >= 2 {
            eprintln!("minidb-bench: gate passed: {winners}/4 classes at >= {floor:.2}x");
        } else {
            eprintln!("minidb-bench: gate FAILED: only {winners}/4 classes at >= {floor:.2}x");
            return Outcome { missing: 1, incidents: 0, strict: false };
        }
    }
    Outcome { missing: 0, incidents: 0, strict: false }
}

/// `cfinder serve [--workers N] [--queue N] [--max-frame-bytes N]
/// [--cache-dir DIR]`: run the multi-tenant analysis daemon over
/// stdin/stdout until EOF or a `shutdown` frame.
///
/// Misuse (unknown flags, bad values, an unusable `--cache-dir`) exits 2
/// through the same typed `error:`/`usage:` format as `reproduce` —
/// every CFinder binary surface shares `cfinder::core::usage`.
fn run_serve(args: &[String]) -> Outcome {
    use cfinder::core::usage;

    let usage_error = |msg: &str| -> ! { usage::usage_error(msg, SERVE_USAGE) };
    let mut config = cfinder::serve::ServeConfig {
        cache_dir: std::env::var_os(CACHE_DIR_ENV).map(PathBuf::from),
        ..cfinder::serve::ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut numeric = |flag: &str| -> usize {
            match it.next() {
                Some(v) => v
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage_error(&format!("invalid {flag} value `{v}`"))),
                None => usage_error(&format!("{flag} expects a positive integer")),
            }
        };
        match arg.as_str() {
            "--workers" => config.workers = numeric("--workers"),
            "--queue" => config.queue_capacity = numeric("--queue"),
            "--max-frame-bytes" => config.max_frame_bytes = numeric("--max-frame-bytes"),
            "--cache-dir" => match it.next() {
                Some(v) if !v.starts_with("--") => config.cache_dir = Some(PathBuf::from(v)),
                Some(flag) => {
                    usage_error(&format!("--cache-dir expects a directory, found flag `{flag}`"))
                }
                None => usage_error("--cache-dir expects a directory"),
            },
            "--slow-log" => match it.next() {
                Some(v) if !v.starts_with("--") => config.slow_log = Some(PathBuf::from(v)),
                Some(flag) => {
                    usage_error(&format!("--slow-log expects a file, found flag `{flag}`"))
                }
                None => usage_error("--slow-log expects a file"),
            },
            "--slow-ms" => config.slow_threshold_ms = numeric("--slow-ms") as u64,
            "--profile-hz" => config.profile_hz = Some(numeric("--profile-hz") as u32),
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }
    // Probe the cache directory up front: an unusable path is a typed
    // usage error before the daemon accepts a single frame, exactly like
    // `reproduce --cache-dir`.
    if let Some(dir) = &config.cache_dir {
        if let Err(e) = AnalysisCache::open(dir, &CFinderOptions::default(), &Limits::from_env()) {
            usage_error(&e.to_string());
        }
    }

    let stdin = std::io::stdin();
    match cfinder::serve::serve(config, stdin.lock(), std::io::stdout()) {
        Ok(summary) => {
            eprintln!(
                "serve: drained after {} request(s), {} error frame(s), {} overload rejection(s)",
                summary.requests, summary.errors, summary.rejected
            );
            Outcome { missing: 0, incidents: 0, strict: false }
        }
        Err(e) => {
            eprintln!("serve: input failed: {e}");
            // An unreadable stdin is an I/O failure, not misuse; exit 0
            // is wrong and 2 is reserved for usage — the daemon drained
            // what it could, so report it as an incident under strict
            // semantics (exit 3 is not used by serve; plain exit 1).
            Outcome { missing: 1, incidents: 0, strict: false }
        }
    }
}

/// `cfinder cache stats|clear <dir>`: inspect or reset a cache directory.
fn run_cache(args: &[String]) -> Result<Outcome, String> {
    let (action, dir) = match args {
        [action, dir] => (action.as_str(), Path::new(dir)),
        _ => return Err("cache requires an action (stats|clear) and a directory".to_string()),
    };
    match action {
        "stats" => {
            let stats = AnalysisCache::stats(dir).map_err(|e| e.to_string())?;
            println!("{}: {stats}", dir.display());
        }
        "clear" => {
            let removed = AnalysisCache::clear(dir).map_err(|e| e.to_string())?;
            println!("{}: removed {removed} entr{}", dir.display(), plural_y(removed));
        }
        other => return Err(format!("unknown cache action `{other}` (expected stats or clear)")),
    }
    Ok(Outcome { missing: 0, incidents: 0, strict: false })
}

fn plural_y(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

fn print_chains(chains: &[cfinder::core::Provenance]) {
    for p in chains {
        println!("  {}: {}", p.pattern, p.rule);
        // An interprocedural detection carries an extra hop: the rule fired
        // inside a helper, and the constraint is credited to the call site.
        if let Some(via) = &p.via {
            println!("    via helper `{}` defined at {}:{}", via.helper, via.file, via.line);
            let first_line = p.snippet.lines().next().unwrap_or("").trim();
            println!("    call site at {}:{}: {first_line}", p.file, p.line);
        } else {
            let first_line = p.snippet.lines().next().unwrap_or("").trim();
            println!("    at {}:{}: {first_line}", p.file, p.line);
        }
    }
}

/// Reads and parses a `schema.sql` dump, merging its tables and
/// constraints into `declared`. A missing or unreadable file is a usage
/// error; malformed or unsupported statements inside the dump degrade to
/// per-statement warnings on stderr (the dump's remaining statements are
/// still ingested). When a table exists in both sources the JSON `--schema`
/// definition wins and the SQL one is skipped with a warning.
fn merge_sql_schema(declared: &mut Schema, path: &Path) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let parsed = cfinder::sql::parse_sql(&text);
    for err in &parsed.errors {
        eprintln!("warning: {}: {err}", path.display());
    }
    for table in parsed.tables {
        if declared.table(&table.name).is_some() {
            eprintln!(
                "warning: {}: table `{}` already declared via --schema; keeping the JSON definition",
                path.display(),
                table.name
            );
            continue;
        }
        declared.add_table(table);
    }
    for pc in parsed.constraints {
        if declared.constraints().contains(&pc.constraint) {
            continue;
        }
        if let Err(msg) = declared.add_constraint(pc.constraint.clone()) {
            eprintln!(
                "warning: {}:{}: dropped constraint ({msg}): {}",
                path.display(),
                pc.line,
                pc.constraint
            );
        }
    }
    Ok(())
}

/// Collects the app's `.py` files (deterministic order) and loads the
/// declared schema.
fn load_app(dir: &Path, schema_path: Option<&Path>) -> Result<(AppSource, Schema), String> {
    let mut files = Vec::new();
    collect_py_files(dir, dir, &mut files)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?;
    if files.is_empty() {
        return Err(format!("no .py files under {}", dir.display()));
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));

    let declared = match schema_path {
        Some(p) => {
            let text =
                fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            Schema::from_json(&text).map_err(|e| format!("parsing {}: {e}", p.display()))?
        }
        None => Schema::new(),
    };
    let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("app").to_string();
    Ok((AppSource::new(name, files), declared))
}

fn collect_py_files(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_py_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "py") {
            let text = fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).display().to_string();
            out.push(SourceFile::new(rel, text));
        }
    }
    Ok(())
}
