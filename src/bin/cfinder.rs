//! The `cfinder` command-line tool: analyze a directory of Python source
//! files against a declared schema and report missing database constraints.
//!
//! ```console
//! $ cfinder path/to/app [--schema schema.json] [--json] [--timings] [--strict] [--max-file-bytes N] [--ablate FLAG…]
//! ```
//!
//! * `--schema FILE` — declared schema as JSON (see
//!   `cfinder::schema::Schema::to_json`); without it, every inferred
//!   constraint is reported as missing.
//! * `--json` — machine-readable output (one JSON document).
//! * `--timings` — per-stage timing breakdown (parse, model extraction,
//!   detection, diff) and the worker-thread count. Printed to stderr in
//!   the human-readable mode, embedded as a `timings` object in `--json`
//!   mode. The thread count defaults to the available parallelism and can
//!   be overridden with the `CFINDER_THREADS` environment variable.
//! * `--strict` — treat any incident (recovered syntax error, dropped
//!   file, worker panic) as a failure: exit 3 instead of 0/1.
//! * `--max-file-bytes N` — skip files larger than N bytes (`0` disables
//!   the cap; defaults to 8 MiB or `CFINDER_MAX_FILE_BYTES`).
//! * `--ablate null-guard|data-dep|composite|partial` — disable an
//!   analysis feature (repeatable; for experimentation).
//!
//! A per-file parse deadline can be enabled with the `CFINDER_DEADLINE_MS`
//! environment variable; files that blow it are skipped with a `deadline`
//! incident.
//!
//! Exit code: 0 when no missing constraints were found, 1 when some were,
//! 2 on usage or I/O errors, 3 under `--strict` when the analysis
//! recorded incidents (this takes precedence over 0/1). Without
//! `--strict`, incidents are reported — as warnings plus a coverage
//! summary on stderr, or in the `incidents`/`coverage` JSON fields — and
//! do **not** affect the exit code: the analysis proceeds over everything
//! that could be analyzed, as in the paper's tool.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cfinder::core::{AppSource, CFinder, CFinderOptions, Limits, SourceFile};
use cfinder::schema::Schema;

struct Outcome {
    missing: usize,
    incidents: usize,
    strict: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(outcome) => {
            if outcome.strict && outcome.incidents > 0 {
                ExitCode::from(3)
            } else if outcome.missing == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("cfinder: {msg}");
            eprintln!(
                "usage: cfinder <dir> [--schema schema.json] [--json] [--timings] [--strict] [--max-file-bytes N] [--ablate null-guard|data-dep|composite|partial]…"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<Outcome, String> {
    let mut dir: Option<PathBuf> = None;
    let mut schema_path: Option<PathBuf> = None;
    let mut json = false;
    let mut timings = false;
    let mut strict = false;
    let mut options = CFinderOptions::default();
    let mut limits = Limits::from_env();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--schema" => {
                let v = it.next().ok_or("--schema requires a file argument")?;
                schema_path = Some(PathBuf::from(v));
            }
            "--json" => json = true,
            "--timings" => timings = true,
            "--strict" => strict = true,
            "--max-file-bytes" => {
                let v = it.next().ok_or("--max-file-bytes requires a byte-count argument")?;
                limits.max_file_bytes = v
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --max-file-bytes value `{v}`"))?;
            }
            "--ablate" => {
                let v = it.next().ok_or("--ablate requires a flag argument")?;
                match v.as_str() {
                    "null-guard" => options.null_guard_analysis = false,
                    "data-dep" => options.data_dependency_checks = false,
                    "composite" => options.composite_unique = false,
                    "partial" => options.partial_unique = false,
                    other => return Err(format!("unknown ablation flag `{other}`")),
                }
            }
            "--help" | "-h" => return Err("help requested".to_string()),
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let dir = dir.ok_or("missing source directory argument")?;

    // Collect .py files recursively, deterministic order.
    let mut files = Vec::new();
    collect_py_files(&dir, &dir, &mut files)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?;
    if files.is_empty() {
        return Err(format!("no .py files under {}", dir.display()));
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));

    let declared = match schema_path {
        Some(p) => {
            let text =
                fs::read_to_string(&p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            Schema::from_json(&text).map_err(|e| format!("parsing {}: {e}", p.display()))?
        }
        None => Schema::new(),
    };

    let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("app").to_string();
    let app = AppSource::new(name, files);
    let report = CFinder::with_options(options).with_limits(limits).analyze(&app, &declared);
    let coverage = report.coverage();

    if json {
        // A stable machine-readable shape: missing constraints with their
        // supporting detections, plus incident and coverage diagnostics.
        #[derive(serde::Serialize)]
        struct JsonTimings {
            parse_seconds: f64,
            model_extraction_seconds: f64,
            detection_seconds: f64,
            diff_seconds: f64,
            threads: usize,
        }
        #[derive(serde::Serialize)]
        struct JsonOut<'a> {
            app: &'a str,
            loc: usize,
            analysis_seconds: f64,
            timings: Option<JsonTimings>,
            missing: &'a [cfinder::core::MissingConstraint],
            existing_covered: Vec<String>,
            incidents: &'a [cfinder::core::Incident],
            coverage: cfinder::core::Coverage,
        }
        let out = JsonOut {
            app: &report.app,
            loc: report.loc,
            analysis_seconds: report.analysis_time.as_secs_f64(),
            timings: timings.then_some(JsonTimings {
                parse_seconds: report.timings.parse.as_secs_f64(),
                model_extraction_seconds: report.timings.model_extraction.as_secs_f64(),
                detection_seconds: report.timings.detection.as_secs_f64(),
                diff_seconds: report.timings.diff.as_secs_f64(),
                threads: report.timings.threads,
            }),
            missing: &report.missing,
            existing_covered: report.existing_covered.iter().map(|c| c.describe()).collect(),
            incidents: &report.incidents,
            coverage,
        };
        println!("{}", serde_json::to_string_pretty(&out).expect("serializable"));
    } else {
        println!(
            "analyzed {} files, {} LoC in {:.2}s",
            app.files.len(),
            report.loc,
            report.analysis_time.as_secs_f64()
        );
        if timings {
            let t = &report.timings;
            eprintln!(
                "timings: parse {:.3}s, models {:.3}s, detect {:.3}s, diff {:.3}s ({} threads)",
                t.parse.as_secs_f64(),
                t.model_extraction.as_secs_f64(),
                t.detection.as_secs_f64(),
                t.diff.as_secs_f64(),
                t.threads
            );
        }
        // Without --strict, incidents are warnings only: they never change
        // the exit code, but degraded coverage is always said out loud.
        for incident in &report.incidents {
            eprintln!("warning: {incident}");
        }
        if !report.incidents.is_empty() {
            eprintln!("coverage: {coverage} ({})", report.incident_summary());
        }
        if report.missing.is_empty() {
            println!("no missing database constraints found");
        } else {
            println!("missing database constraints ({}):", report.missing.len());
            for m in &report.missing {
                println!("\n  {}", m.constraint);
                for d in &m.detections {
                    println!("    {} at {}:{}", d.pattern, d.file, d.span.start.line);
                }
                println!("    fix: {}", m.constraint.ddl());
            }
        }
        if strict && !report.incidents.is_empty() {
            eprintln!(
                "error: --strict: {} incident(s) degraded the analysis",
                report.incidents.len()
            );
        }
    }
    Ok(Outcome { missing: report.missing.len(), incidents: report.incidents.len(), strict })
}

fn collect_py_files(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_py_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "py") {
            let text = fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).display().to_string();
            out.push(SourceFile::new(rel, text));
        }
    }
    Ok(())
}
