#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, and the test suite.
#
# Usage: scripts/ci.sh [--workspace]
#
# The default run mirrors the tier-1 check (`cargo test -q` on the root
# package); `--workspace` extends the test step to every crate, including
# the vendored shims.
set -euo pipefail
cd "$(dirname "$0")/.."

test_scope=()
if [[ "${1:-}" == "--workspace" ]]; then
    test_scope=(--workspace)
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q ${test_scope[*]:-}"
cargo test -q "${test_scope[@]}"

echo "==> cold/warm cache equivalence and invalidation matrix"
# The differential oracle: cached and uncached runs must be
# byte-identical at 1/2/4 threads, and every cache-key ingredient must
# invalidate exactly the entries it covers.
cargo test -q --test cache_equivalence --test cache_invalidation

echo "==> multi-dialect SQL backend: unit, round-trip proptest, and fault suites"
# The round-trip oracle (emit → parse is the identity in every dialect)
# plus the SQL parser's totality under mutated/truncated dumps.
cargo test -q -p cfinder-sql
cargo test -q --test sql_roundtrip

echo "==> SQL test-count floor"
# The cfinder-sql suite only grows: unit + integration tests must stay at
# or above the floor so coverage cannot be silently deleted.
sql_tests=$(cargo test -q -p cfinder-sql 2>/dev/null \
    | sed -n 's/^test result: ok\. \([0-9]*\) passed.*/\1/p' \
    | awk '{s+=$1} END {print s}')
floor=48
if [[ "${sql_tests:-0}" -lt "$floor" ]]; then
    echo "FAIL: cfinder-sql ran ${sql_tests:-0} tests, below the floor of $floor" >&2
    exit 1
fi
echo "cfinder-sql: $sql_tests tests (floor $floor)"

echo "==> CHECK/DEFAULT inference: corpus calibration and metric goldens"
# The extension pattern families (PA_c1/PA_c2/PA_d1) must keep the
# planted per-app counts and the thread-count determinism goldens exact.
cargo test -q -p cfinder-corpus --test calibration --test metric_goldens

echo "==> explain provenance golden (incl. PA_c1/PA_c2/PA_d1)"
cargo test -q --test explain_golden

echo "==> cache fingerprint covers the inference option set"
# Flipping any analysis option (including check/default inference) must
# change the tool fingerprint, or stale cache entries would survive.
cargo test -q -p cfinder-core fingerprint

echo "==> inter-procedural summaries: flow crate + differential oracle"
# Call-graph extraction/composition proptests, then the off/on oracle:
# the paper configuration must be byte-identical across thread counts
# and hop-free; summaries-on must recover every planted helper-wrapped
# site with hop provenance and zero trap false positives.
flow_unit=$(cargo test -q -p cfinder-flow 2>&1) || { echo "$flow_unit"; exit 1; }
interproc_oracle=$(cargo test -q --test interproc_oracle 2>&1) \
    || { echo "$interproc_oracle"; exit 1; }

echo "==> inter-procedural test-count floor"
# The summary-propagation surface only grows: flow unit/proptest suites
# plus the oracle must stay at or above the floor so coverage cannot be
# silently deleted.
interproc_tests=$(printf '%s\n%s\n' "$flow_unit" "$interproc_oracle" \
    | sed -n 's/^test result: ok\. \([0-9]*\) passed.*/\1/p' \
    | awk '{s+=$1} END {print s}')
interproc_floor=90
if [[ "${interproc_tests:-0}" -lt "$interproc_floor" ]]; then
    echo "FAIL: interproc suites ran ${interproc_tests:-0} tests, below the floor of $interproc_floor" >&2
    exit 1
fi
echo "interproc suites: $interproc_tests tests (floor $interproc_floor)"

echo "==> fault-injection suite"
cargo test -q --test fault_injection

echo "==> fault-injection suite with live tracing and metrics"
# Same seeded corruption, but every analysis records spans and metrics:
# the observability layer must be as panic-free as the analyzer it
# instruments.
CFINDER_OBS_TEST=1 cargo test -q --test fault_injection

echo "==> daemon soak oracle (4 clients x 8 apps x 2 rounds) + fault-frame suite"
# The serve daemon: concurrent clients over the whole corpus must be
# byte-identical (stable_json) to one-shot in-process runs, with hostile
# frames and a mid-round source mutation interleaved; the fault suite
# proves every typed error code reachable and request-scoped, and the
# concurrency suite covers racing cache writers + ENOSPC-style
# degradation.
serve_unit=$(cargo test -q -p cfinder-serve 2>&1) || { echo "$serve_unit"; exit 1; }
serve_integration=$(CFINDER_SOAK_ROUNDS=2 cargo test -q \
    --test serve_soak --test serve_faults --test cache_concurrency 2>&1) \
    || { echo "$serve_integration"; exit 1; }

echo "==> daemon test-count floor"
# The serve surface only grows: unit + soak + fault + cache-concurrency
# tests must stay at or above the floor so coverage cannot be silently
# deleted.
serve_tests=$(printf '%s\n%s\n' "$serve_unit" "$serve_integration" \
    | sed -n 's/^test result: ok\. \([0-9]*\) passed.*/\1/p' \
    | awk '{s+=$1} END {print s}')
serve_floor=20
if [[ "${serve_tests:-0}" -lt "$serve_floor" ]]; then
    echo "FAIL: daemon suites ran ${serve_tests:-0} tests, below the floor of $serve_floor" >&2
    exit 1
fi
echo "daemon suites: $serve_tests tests (floor $serve_floor)"

echo "==> query layer: differential oracle, 3VL pins, and plan goldens"
# The constraint-driven rewriter's soundness gate: every generated query
# must produce byte-identical results through the naive and rewritten
# plans at 1/2/4 threads, over conforming and NULL-heavy adversarial
# data; plan goldens pin each rewrite firing (and not firing without its
# enabling constraint).
minidb_unit=$(cargo test -q -p cfinder-minidb 2>&1) || { echo "$minidb_unit"; exit 1; }
minidb_integration=$(cargo test -q -p cfinder-minidb \
    --test query_oracle --test three_valued_logic --test plan_golden 2>&1) \
    || { echo "$minidb_integration"; exit 1; }

echo "==> query-layer test-count floor"
# Oracle + 3VL + golden coverage only grows: the combined minidb suites
# must stay at or above the floor so coverage cannot be silently deleted.
minidb_tests=$(printf '%s\n%s\n' "$minidb_unit" "$minidb_integration" \
    | sed -n 's/^test result: ok\. \([0-9]*\) passed.*/\1/p' \
    | awk '{s+=$1} END {print s}')
minidb_floor=95
if [[ "${minidb_tests:-0}" -lt "$minidb_floor" ]]; then
    echo "FAIL: minidb suites ran ${minidb_tests:-0} tests, below the floor of $minidb_floor" >&2
    exit 1
fi
echo "minidb suites: $minidb_tests tests (floor $minidb_floor)"

echo "==> query-rewrite speedup gate (rewritten never slower; headline classes >= 1.5x)"
# The bench itself asserts the oracle (identical results) off the clock,
# that no class regresses, and that DISTINCT-drop and join elimination
# each clear 1.5x.
cargo bench -p cfinder-bench --bench query_rewrite

echo "==> observability overhead check (no-op vs traced vs profiled)"
# Includes the sampling-profiler configuration: the bench fails if
# tracing or tracing+sampling blows past its ceiling.
cargo bench -p cfinder-bench --bench obs_overhead

echo "==> perf smoke + BENCH schema validation + throughput gate"
# `perf --smoke` runs the cold+warm benchmark at quick scale, validates
# the emitted BENCH document against the schema, and gates throughput
# against the newest committed data point under bench/. The tolerance is
# deliberately loose (75%) because shared CI boxes are noisy; the
# committed series is where real trajectories are read from.
cargo build -q --release
perf_baseline=$(ls bench/BENCH_*.json 2>/dev/null | sort | tail -1 || true)
perf_out=$(mktemp -d)
if [[ -n "$perf_baseline" ]]; then
    ./target/release/cfinder perf --smoke --out "$perf_out" \
        --baseline "$perf_baseline" --tolerance 75
else
    ./target/release/cfinder perf --smoke --out "$perf_out"
fi
rm -rf "$perf_out"

echo "==> warm-cache speedup smoke (warm must be >= 5x faster than cold)"
# The bench itself asserts the speedup floor and byte-identical reports;
# a regression in either fails this step.
cargo bench -p cfinder-bench --bench cache_warm

echo "==> depth-limit guard under a reduced stack"
# 1.5 MiB is below the 2 MiB Rust default: the test only passes because
# the parser's recursion-depth guard fires before the stack runs out.
RUST_MIN_STACK=1572864 cargo test -q -p cfinder-pyast depth_limit

echo "CI green."
