//! The full SQL pipeline, end to end: ingest a `schema.sql` dump the way
//! `cfinder --schema-sql` does, diff it against the constraints inferred
//! from application code, emit dialect-correct remediation DDL for all
//! three supported databases, and prove the loop closes — re-parsing the
//! dump plus the fixes yields a schema the analyzer calls clean and that
//! minidb enforces live.
//!
//! Run with: `cargo run --example sql_schema_audit`

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::minidb::Database;
use cfinder::sql::{fix_script, parse_sql, schema_to_sql, Dialect};

fn main() {
    // A schema dump as a DBA would hand it over: MySQL quoting, inline
    // and table-level constraints, and a table (`Order`) whose name is a
    // reserved word — ORDER is a keyword in all three dialects, so every
    // statement touching it must quote.
    let dump = r#"
CREATE TABLE `User` (
    `id` BIGINT NOT NULL AUTO_INCREMENT,
    `email` VARCHAR(254),
    `name` VARCHAR(100) NOT NULL,
    PRIMARY KEY (`id`)
) ENGINE=InnoDB;

CREATE TABLE `Order` (
    `id` BIGINT NOT NULL,
    `number` VARCHAR(32),
    `user_id` BIGINT,
    PRIMARY KEY (`id`)
);
"#;

    // Application code carrying implicit constraint assumptions: a
    // check-then-act uniqueness guard and a `get()` lookup.
    let models = "\
class User(models.Model):
    email = models.CharField(max_length=254)
    name = models.CharField(max_length=100)


class Order(models.Model):
    number = models.CharField(max_length=32)
    user = models.ForeignKey(User, on_delete=models.CASCADE)
";
    let views = "\
def register(email):
    if User.objects.filter(email=email).exists():
        raise ValueError('email taken')
    User.objects.create(email=email)


def order_detail(number):
    return Order.objects.get(number=number)
";

    println!("== 1. ingest schema.sql ==");
    let parsed = parse_sql(dump);
    for e in &parsed.errors {
        println!("  warning: {e}");
    }
    let (declared, warnings) = parsed.into_schema();
    for w in &warnings {
        println!("  warning: {w}");
    }
    println!(
        "  {} tables, {} declared constraints",
        declared.table_count(),
        declared.constraints().len()
    );

    println!("\n== 2. analyze application code against it ==");
    let app = AppSource::new(
        "shop",
        vec![SourceFile::new("models.py", models), SourceFile::new("views.py", views)],
    );
    let report = CFinder::new().analyze(&app, &declared);
    for m in &report.missing {
        println!("  missing: {}", m.constraint);
    }

    println!("\n== 3. remediation DDL, per dialect ==");
    for dialect in Dialect::ALL {
        println!("--- fixes.{dialect}.sql ---");
        print!(
            "{}",
            fix_script(
                report.missing.iter().map(|m| &m.constraint),
                dialect,
                Some(&declared),
                "shop"
            )
        );
    }

    println!("== 4. fixed point: dump + fixes re-parses clean ==");
    let mut patched_dump = schema_to_sql(&declared, Dialect::Postgres);
    patched_dump.push_str(&fix_script(
        report.missing.iter().map(|m| &m.constraint),
        Dialect::Postgres,
        Some(&declared),
        "shop",
    ));
    let (patched, _) = parse_sql(&patched_dump).into_schema();
    let after = CFinder::new().analyze(&app, &patched);
    let appliable =
        after.missing.iter().filter(|m| declared.table(m.constraint.table()).is_some()).count();
    println!("  appliable constraints still missing: {appliable}");

    println!("\n== 5. enforce in minidb ==");
    let db = Database::from_schema(&patched).expect("patched schema loads");
    println!(
        "  {} tables live with {} constraints enforced",
        db.table_names().len(),
        patched.constraints().len()
    );
}
