//! Code-based vs. data-driven constraint inference (§3.1 / §5).
//!
//! The paper's key design decision is to infer constraints from *code*,
//! not *data*. This example makes the trade-off concrete: it populates a
//! live database for the Oscar-like corpus app, runs a classical
//! data-profiling miner (unique column combinations + inclusion
//! dependencies), and compares its output against CFinder's on the same
//! application.
//!
//! Run with: `cargo run --release --example data_vs_code`

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::corpus::{generate, profile, GenOptions, Verdict};
use cfinder::minidb::{discover_constraints, ProfileOptions};
use cfinder::report::{evaluate_baseline, populate};

fn main() {
    let app = generate(&profile("oscar").expect("profile exists"), GenOptions::quick());
    println!(
        "corpus app '{}': {} tables, {} semantically-real constraints ({} declared, {} missing)\n",
        app.name,
        app.declared.table_count(),
        app.declared.constraints().len() + app.truth.all_missing().len(),
        app.declared.constraints().len(),
        app.truth.all_missing().len(),
    );

    // --- the data-driven way -------------------------------------------------
    println!("populating a live database (60 rows/table) and mining it…");
    let db = populate(&app, 60);
    let mined = discover_constraints(&db, ProfileOptions::default());
    let outcome = evaluate_baseline(&app, &db);
    println!("  miner proposals:      {:>6} statistically valid on the data", mined.len());
    println!("  semantically real:    {:>6}", outcome.real);
    println!(
        "  spurious:             {:>6}  → {:.0}% false-positive rate (paper: \">95%\")",
        outcome.spurious,
        outcome.false_positive_rate() * 100.0
    );
    println!(
        "  true missing found:   {:>6} of {} (data can't tell you which ones matter)\n",
        outcome.missing_recovered, outcome.missing_total
    );

    // --- the code-based way ---------------------------------------------------
    println!("running CFinder over the application source…");
    let source = AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    );
    let report = CFinder::new().analyze(&source, &app.declared);
    let tp = report
        .missing
        .iter()
        .filter(|m| matches!(app.truth.classify(&m.constraint), Verdict::TruePositive))
        .count();
    println!("  CFinder proposals:    {:>6} missing constraints", report.missing.len());
    println!("  semantically real:    {:>6}", tp);
    println!(
        "  spurious:             {:>6}  → {:.0}% false-positive rate",
        report.missing.len() - tp,
        100.0 * (report.missing.len() - tp) as f64 / report.missing.len() as f64
    );
    println!(
        "\na reviewer can inspect {} code-backed reports; nobody can inspect {} data artifacts.",
        report.missing.len(),
        outcome.real + outcome.spurious
    );
}
