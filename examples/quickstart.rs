//! Quickstart: point CFinder at a small application and print the missing
//! constraints it infers, with the code evidence for each.
//!
//! Run with: `cargo run --example quickstart`

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::schema::{Column, ColumnType, Constraint, Schema, Table};

const MODELS: &str = r#"
from django.db import models


class Customer(models.Model):
    email = models.EmailField(max_length=254)
    name = models.CharField(max_length=100)


class Voucher(models.Model):
    code = models.CharField(max_length=32)
    active = models.BooleanField(default=True, null=True)


class Order(models.Model):
    number = models.CharField(max_length=32)
    total = models.DecimalField(max_digits=12, decimal_places=2)
    customer = models.ForeignKey(Customer, related_name='orders', on_delete=models.CASCADE)
    voucher_id = models.IntegerField(null=True)
"#;

const VIEWS: &str = r#"
from .models import Customer, Voucher, Order


def signup(email, name):
    # PA_u1: check existence before error handling -> Customer.email unique.
    if Customer.objects.filter(email=email).exists():
        raise ValueError('a user with that email already exists')
    Customer.objects.create(email=email, name=name)


def order_detail(request):
    # PA_u2: get() uses the column as a unique identifier.
    return Order.objects.get(number=request.GET['order_number'])


def format_total(pk):
    # PA_n1: invoking a method on the column assumes it is never NULL.
    order = Order.objects.get(pk=pk)
    return order.total.quantize(2)


def redeem(order_pk, voucher_pk):
    # PA_f1: assigning a primary key into an integer column implies a FK.
    order = Order.objects.get(pk=order_pk)
    voucher = Voucher.objects.get(pk=voucher_pk)
    order.voucher_id = voucher.id
    order.save()
"#;

fn main() {
    // The declared schema — what `information_schema` would report. The
    // tables exist, but none of the constraints the code assumes do.
    let mut declared = Schema::new();
    declared.add_table(
        Table::new("Customer")
            .with_column(Column::new("email", ColumnType::VarChar(254)))
            .with_column(Column::new("name", ColumnType::VarChar(100))),
    );
    declared.add_table(
        Table::new("Voucher")
            .with_column(Column::new("code", ColumnType::VarChar(32)))
            .with_column(Column::new("active", ColumnType::Boolean)),
    );
    declared.add_table(
        Table::new("Order")
            .with_column(Column::new("number", ColumnType::VarChar(32)))
            .with_column(Column::new("total", ColumnType::Decimal(12, 2)))
            .with_column(Column::new("customer_id", ColumnType::BigInt))
            .with_column(Column::new("voucher_id", ColumnType::Integer)),
    );
    // One constraint IS declared, so CFinder must not re-report it.
    declared
        .add_constraint(Constraint::foreign_key("Order", "customer_id", "Customer", "id"))
        .expect("valid constraint");

    let app = AppSource::new(
        "quickstart-shop",
        vec![SourceFile::new("models.py", MODELS), SourceFile::new("views.py", VIEWS)],
    );

    let report = CFinder::new().analyze(&app, &declared);
    println!("analyzed {} lines in {:?}\n", report.loc, report.analysis_time);
    println!("missing database constraints ({}):", report.missing.len());
    for missing in &report.missing {
        println!("\n  {}", missing.constraint);
        for d in &missing.detections {
            println!("    ↳ {} at {}:{}", d.pattern, d.file, d.span.start.line);
            for line in d.snippet.lines().take(3) {
                println!("        {line}");
            }
        }
    }
    println!(
        "\ncovered existing constraints (already declared): {}",
        report.existing_covered.len()
    );
    for c in report.existing_covered.iter() {
        println!("  = {c}");
    }
}
