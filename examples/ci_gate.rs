//! A CI integrity gate: fail the build when new code implies constraints
//! the schema doesn't declare, and print the migration DDL that fixes it.
//!
//! This is the deployment model §6 of the paper suggests ("CFinder is
//! designed to run in the testing environment"): developers land code, the
//! gate compares inferred constraints against the schema, and the fix is a
//! copy-pasteable migration.
//!
//! Run with: `cargo run --example ci_gate`

use std::process::ExitCode;

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::minidb::Database;
use cfinder::schema::{Column, ColumnType, Schema, Table};

const MODELS: &str = r#"
class Coupon(models.Model):
    code = models.CharField(max_length=32)
    active = models.BooleanField(default=True, null=True)
    uses = models.IntegerField(default=0)
"#;

/// The pull request under review: a new redemption endpoint.
const NEW_CODE: &str = r#"
def redeem(code):
    # Only one *active* coupon per code may exist.
    if Coupon.objects.filter(code=code, active=True).exists():
        raise ValueError('code already active')
    Coupon.objects.create(code=code)


def total_uses(pk):
    coupon = Coupon.objects.get(pk=pk)
    return coupon.uses.bit_length()
"#;

fn declared() -> Schema {
    let mut s = Schema::new();
    s.add_table(
        Table::new("Coupon")
            .with_column(Column::new("code", ColumnType::VarChar(32)))
            .with_column(Column::new("active", ColumnType::Boolean))
            .with_column(Column::new("uses", ColumnType::Integer)),
    );
    s
}

fn main() -> ExitCode {
    let app = AppSource::new(
        "coupons-service",
        vec![SourceFile::new("models.py", MODELS), SourceFile::new("api.py", NEW_CODE)],
    );
    let schema = declared();
    let report = CFinder::new().analyze(&app, &schema);

    if report.missing.is_empty() {
        println!("✓ schema covers every constraint the code assumes");
        return ExitCode::SUCCESS;
    }

    println!(
        "✗ integrity gate: {} constraint(s) assumed by the code but missing from the schema\n",
        report.missing.len()
    );
    println!("-- suggested migration ------------------------------------------");
    for m in &report.missing {
        let evidence = &m.detections[0];
        println!(
            "-- {} (evidence: {} at {}:{})",
            m.constraint, evidence.pattern, evidence.file, evidence.span.start.line
        );
        println!("{}\n", m.constraint.ddl());
    }

    // Dry-run the migration against an empty staging database to prove the
    // DDL is well-formed and self-consistent.
    let mut staging = Database::new();
    for table in schema.tables() {
        staging.create_table(table.clone()).expect("staging mirrors the schema");
    }
    for m in &report.missing {
        staging
            .add_constraint(m.constraint.clone())
            .expect("suggested constraints apply cleanly to a clean database");
    }
    println!("-- dry run on staging: all {} constraints applied cleanly", report.missing.len());
    ExitCode::from(1) // fail the build until the migration lands
}
