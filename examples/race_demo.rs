//! Why database constraints beat application-level validation (§1.3,
//! Figures 1–3): replay the paper's three production incidents on the
//! bundled in-memory database, then race concurrent check-then-act signups
//! with and without a DB unique constraint.
//!
//! Run with: `cargo run --example race_demo`

use cfinder::minidb::scenarios::run_all;
use cfinder::minidb::{run_threaded_race, simulate_interleavings, transactional_race, RaceConfig};

fn main() {
    println!("=== Figure 1: three real-world incidents, replayed ===\n");
    for (name, without, with) in run_all() {
        println!("incident: {name}");
        match &without.consequence {
            Some(c) => println!("  without constraint: {c}"),
            None => println!("  without constraint: (no visible failure yet)"),
        }
        match &with.blocked_by {
            Some(e) => println!("  with constraint:    bad write rejected — {e}"),
            None => println!("  with constraint:    ok"),
        }
        assert!(with.integrity_preserved());
        println!();
    }

    println!("=== Figure 2: exhaustive interleavings of two signups ===\n");
    for (label, app_validation, db_constraint) in [
        ("application validation only (Figure 2a)", true, false),
        ("no guard at all", false, false),
        ("database unique constraint (Figure 2b)", true, true),
    ] {
        let r = simulate_interleavings(RaceConfig { requests: 2, app_validation, db_constraint });
        println!(
            "{label}:\n  {}/{} interleavings persist duplicate rows (worst case: {} duplicates)\n",
            r.corrupted_schedules, r.schedules, r.worst.violations
        );
    }

    println!("=== real threads: 8 concurrent signups, same email ===\n");
    let feral =
        run_threaded_race(RaceConfig { requests: 8, app_validation: true, db_constraint: false });
    println!(
        "feral validation only: {} inserted, {} rejected by checks → {} duplicate account(s)",
        feral.inserted, feral.rejected_by_app, feral.violations
    );
    let guarded =
        run_threaded_race(RaceConfig { requests: 8, app_validation: true, db_constraint: true });
    println!(
        "with DB constraint:   {} inserted, {} rejected by checks, {} rejected by the database → {} duplicates",
        guarded.inserted, guarded.rejected_by_app, guarded.rejected_by_db, guarded.violations
    );
    assert_eq!(guarded.violations, 0, "the database is the final guard");

    println!("\n=== §1.3: transactions alone do not save you ===\n");
    // Each request wraps its check-then-insert in an atomic transaction —
    // but isolation is read-committed, so concurrent checks all pass.
    let dups = transactional_race(3, false).expect("fixture is valid");
    println!("3 concurrent read-committed transactions, no constraint: {dups} duplicates persist");
    let dups = transactional_race(3, true).expect("fixture is valid");
    println!("3 concurrent read-committed transactions, with constraint: {dups} duplicates (late commits abort)");
    assert_eq!(dups, 0);
}
