//! The §2 empirical study, end to end: replay the five study applications'
//! migration histories, compute which constraints were "missed first and
//! added later" (Tables 2 and 3), then run CFinder over the *old* versions
//! of the code to show the issues could have been prevented (Table 9).
//!
//! Run with: `cargo run --example migration_history`

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::corpus::{dataset, study_corpus};
use cfinder::schema::{AddReason, ConstraintType, StudyReport};

fn main() {
    let apps = study_corpus();

    println!("=== Observation 1: constraints added as afterthoughts ===\n");
    let reports: Vec<StudyReport> = apps.iter().map(|a| a.history.study()).collect();
    for report in &reports {
        println!(
            "  {:<8} {:>3} afterthought constraints ({} unique, {} not-null, {} FK), mean window {:.0} months",
            report.app,
            report.total(),
            report.count_by_type(ConstraintType::Unique),
            report.count_by_type(ConstraintType::NotNull),
            report.count_by_type(ConstraintType::ForeignKey),
            report.mean_months_missing(),
        );
    }
    let merged = StudyReport::merged(reports.iter());
    println!(
        "\n  total: {} constraints; {:.0}% were added because of data-integrity issues; mean vulnerable window {:.0} months",
        merged.total(),
        merged.issue_related_fraction() * 100.0,
        merged.mean_months_missing()
    );

    println!("\n=== Observation 2: why they were added ===\n");
    for (label, reason) in [
        ("from a reported issue ticket", AddReason::FromReportedIssue),
        ("generalized from a similar issue", AddReason::LearnedFromSimilarIssue),
        ("developer fixing proactively", AddReason::FixedByDev),
        ("feature work / refactoring", AddReason::FeatureOrRefactor),
        ("unknown", AddReason::Unknown),
    ] {
        println!("  {:<36} {}", label, merged.count_by_reason(reason));
    }

    println!("\n=== Table 9: would CFinder have caught them in time? ===\n");
    let finder = CFinder::new();
    let mut per_type = [(0usize, 0usize); 5];
    for app in &apps {
        let source = AppSource::new(
            app.name.clone(),
            app.old_code.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
        );
        let report = finder.analyze(&source, &app.old_schema);
        for entry in app.entries.iter().filter(|e| e.in_dataset()) {
            let idx = match entry.constraint.constraint_type() {
                ConstraintType::Unique => 0,
                ConstraintType::NotNull => 1,
                ConstraintType::ForeignKey => 2,
                ConstraintType::Check => 3,
                ConstraintType::Default => 4,
            };
            per_type[idx].0 += 1;
            if report.missing.iter().any(|m| m.constraint == entry.constraint) {
                per_type[idx].1 += 1;
            }
        }
    }
    let labels = ["unique", "not-null", "foreign key", "check", "default"];
    for (label, (total, hit)) in labels.iter().zip(per_type) {
        if total == 0 {
            // The historical dataset predates CHECK/DEFAULT tracking.
            continue;
        }
        println!(
            "  {:<12} {}/{} historical missing constraints detectable from the old code ({:.0}%)",
            label,
            hit,
            total,
            100.0 * hit as f64 / total as f64
        );
    }
    let dataset_len = dataset(&apps).len();
    let detected: usize = per_type.iter().map(|(_, h)| h).sum();
    println!(
        "\n  overall: {detected}/{dataset_len} ({:.1}%) — these issues would have been caught before shipping",
        100.0 * detected as f64 / dataset_len as f64
    );
}
