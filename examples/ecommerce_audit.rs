//! Audit a full-scale e-commerce application: generate the Oscar-like
//! corpus app (77 tables, 773 columns, 74K LoC), run the complete CFinder
//! pipeline against its declared schema, and print a triage report — the
//! workflow a team would run in CI.
//!
//! Run with: `cargo run --release --example ecommerce_audit`

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::corpus::{generate, profile, GenOptions, Verdict};
use cfinder::schema::ConstraintType;

fn main() {
    let profile = profile("oscar").expect("oscar profile exists");
    println!(
        "generating '{}' ({} tables, {} columns, ~{}K LoC)…",
        profile.name,
        profile.tables,
        profile.columns,
        profile.loc / 1000
    );
    let app = generate(&profile, GenOptions::paper());

    let source = AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    );
    println!("running CFinder over {} files…", source.files.len());
    let report = CFinder::new().analyze(&source, &app.declared);
    println!(
        "analyzed {} LoC in {:.2}s — {} detections, {} distinct missing constraints\n",
        report.loc,
        report.analysis_time.as_secs_f64(),
        report.detections.len(),
        report.missing.len()
    );

    for ty in ConstraintType::ALL {
        let of_type: Vec<_> = report.missing_of(ty).collect();
        println!("{} — {} missing:", ty, of_type.len());
        for m in of_type.iter().take(4) {
            // In the paper, two human inspectors labeled each detection;
            // the corpus manifest plays that role here.
            let verdict = match app.truth.classify(&m.constraint) {
                Verdict::TruePositive => "confirmed by inspection",
                Verdict::FalsePositive(_) => "rejected by inspection (false positive)",
                Verdict::Unplanned => "needs triage",
            };
            let via: Vec<&str> = m.patterns().iter().map(|p| p.label()).collect();
            println!("  {:<60} via {:<12} [{verdict}]", m.constraint.describe(), via.join("+"));
        }
        if of_type.len() > 4 {
            println!("  … and {} more", of_type.len() - 4);
        }
        println!();
    }

    // Precision summary, like Table 7's Oscar row.
    let mut tp = 0;
    for m in &report.missing {
        if matches!(app.truth.classify(&m.constraint), Verdict::TruePositive) {
            tp += 1;
        }
    }
    println!(
        "precision after inspection: {}/{} ({:.0}%)",
        tp,
        report.missing.len(),
        100.0 * tp as f64 / report.missing.len() as f64
    );
    println!(
        "existing constraints whose code patterns CFinder re-derived: {}",
        report.existing_covered.len()
    );
}
