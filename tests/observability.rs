//! Integration tests for the observability layer: Chrome-trace
//! well-formedness, span nesting, thread-count determinism of the span
//! structure across the full corpus, and metric/report consistency.

use std::collections::BTreeMap;

use cfinder::core::{AnalysisReport, AppSource, CFinder, SourceFile};
use cfinder::corpus::{self, GenOptions};
use cfinder::obs::{Obs, TraceEvent};

/// Tiny corpus scale: pattern sites are generated in full, only the noise
/// LoC shrinks, so the span *structure* is the real thing.
const SCALE: GenOptions = GenOptions { loc_scale: 0.01 };

fn analyze_with_obs(app: &corpus::GeneratedApp, threads: usize) -> (AnalysisReport, Obs) {
    let obs = Obs::enabled();
    let source = AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    );
    let report =
        CFinder::new().with_threads(threads).with_obs(obs.clone()).analyze(&source, &app.declared);
    (report, obs)
}

/// Spans on one thread must nest like a call stack: for any two, either
/// disjoint in time or one fully contains the other. `SpanGuard::drop`
/// floors both endpoints to whole microseconds, so containment is exact.
fn assert_spans_nest(events: &[TraceEvent]) {
    let mut by_tid: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        by_tid.entry(e.tid).or_default().push(e);
    }
    for (tid, spans) in &by_tid {
        for (i, a) in spans.iter().enumerate() {
            for b in &spans[i + 1..] {
                let disjoint = a.end_us() <= b.ts_us || b.end_us() <= a.ts_us;
                let a_in_b = b.ts_us <= a.ts_us && a.end_us() <= b.end_us();
                let b_in_a = a.ts_us <= b.ts_us && b.end_us() <= a.end_us();
                assert!(
                    disjoint || a_in_b || b_in_a,
                    "partial overlap on tid {tid}: {} [{}..{}] vs {} [{}..{}]",
                    a.name,
                    a.ts_us,
                    a.end_us(),
                    b.name,
                    b.ts_us,
                    b.end_us(),
                );
            }
        }
    }
}

/// The deterministic part of the span structure: every `(cat, name)` pair
/// except the `worker` chunk spans, whose count tracks the thread count by
/// definition.
fn span_multiset(obs: &Obs) -> BTreeMap<(String, String), usize> {
    let mut multiset = BTreeMap::new();
    for e in obs.tracer.events() {
        if e.cat != "worker" {
            *multiset.entry((e.cat.to_string(), e.name.clone())).or_insert(0) += 1;
        }
    }
    multiset
}

#[test]
fn trace_is_well_formed_and_deterministic_across_thread_counts() {
    for profile in corpus::all_profiles() {
        let app = corpus::generate(&profile, SCALE);
        let mut structures = Vec::new();
        for threads in [1, 2, 4] {
            let (report, obs) = analyze_with_obs(&app, threads);
            let events = obs.tracer.events();
            assert!(!events.is_empty(), "{}: no spans at {threads} threads", app.name);

            // The export is real JSON with the Chrome trace-event shape.
            let json: serde_json::Value =
                serde_json::from_str(&obs.tracer.to_chrome_trace()).expect("trace parses as JSON");
            let exported = json["traceEvents"].as_array().expect("traceEvents array");
            assert_eq!(exported.len(), events.len());
            for e in exported {
                assert_eq!(e["ph"].as_str(), Some("X"), "complete events only: {e:?}");
                assert_eq!(e["pid"].as_u64(), Some(1));
                assert!(e["ts"].as_u64().is_some() && e["dur"].as_u64().is_some(), "{e:?}");
                assert!(e["name"].as_str().is_some_and(|n| !n.is_empty()), "{e:?}");
            }

            // Every span category the tentpole promises is present.
            for cat in ["analyze", "pass", "file", "family", "worker", "registry"] {
                assert!(
                    events.iter().any(|e| e.cat == cat),
                    "{}: no `{cat}` span at {threads} threads",
                    app.name
                );
            }
            // One worker-chunk span per parallel stage chunk, never more
            // chunks than threads.
            for stage in ["parse", "detect"] {
                let chunks = events
                    .iter()
                    .filter(|e| e.cat == "worker" && e.name.starts_with(stage))
                    .count();
                assert!(
                    (1..=threads).contains(&chunks),
                    "{}: {chunks} `{stage}` chunks at {threads} threads",
                    app.name
                );
            }

            assert_spans_nest(&events);

            // Child spans stay inside the analyze root.
            let root = events
                .iter()
                .find(|e| e.cat == "analyze")
                .unwrap_or_else(|| panic!("{}: missing root span", app.name));
            for e in &events {
                assert!(
                    root.ts_us <= e.ts_us && e.end_us() <= root.end_us(),
                    "{}: span {} escapes the analyze root",
                    app.name,
                    e.name
                );
            }

            structures.push((threads, report.missing.len(), span_multiset(&obs)));
        }
        let (_, baseline_missing, baseline) = &structures[0];
        for (threads, missing, multiset) in &structures[1..] {
            assert_eq!(missing, baseline_missing, "{}: results differ", app.name);
            assert_eq!(
                multiset, baseline,
                "{}: span structure differs between 1 and {threads} threads",
                app.name
            );
        }
    }
}

#[test]
fn metrics_match_the_report_and_expose_enough_families() {
    let app = corpus::generate(&corpus::profile("oscar").expect("profile"), SCALE);
    let (report, obs) = analyze_with_obs(&app, 2);

    let text = obs.metrics.to_prometheus_text();
    let families = text.lines().filter(|l| l.starts_with("# TYPE")).count();
    assert!(families >= 12, "only {families} metric families:\n{text}");
    assert!(text.contains("cfinder_file_parse_seconds_bucket{le="), "{text}");
    assert!(text.lines().any(|l| l.starts_with("cfinder_detections_total{pattern=")), "{text}");

    let snapshot = obs.metrics.snapshot();
    assert_eq!(snapshot.family_total("cfinder_detections_total"), report.detections.len() as u64);
    assert_eq!(snapshot.counter("cfinder_files_total"), app.files.len() as u64);
    assert_eq!(snapshot.counter("cfinder_files_parsed_total"), report.files_total as u64);
    assert_eq!(snapshot.counter("cfinder_loc_total"), report.loc as u64);
    assert_eq!(
        snapshot.family_total("cfinder_missing_constraints_total"),
        report.missing.len() as u64
    );
    assert_eq!(snapshot.counter("cfinder_analyses_total"), 1);
}

#[test]
fn disabled_obs_records_nothing() {
    let app = corpus::generate(&corpus::profile("wagtail").expect("profile"), SCALE);
    let obs = Obs::disabled();
    let source = AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    );
    let _ = CFinder::new().with_obs(obs.clone()).analyze(&source, &app.declared);
    assert!(obs.tracer.events().is_empty());
    assert!(obs.metrics.snapshot().families.is_empty());
    assert!(!obs.is_enabled());
}
