//! The paper's own running examples (Figures 3, 6, and 9), fed through the
//! full pipeline via the facade crate. Each test reproduces one published
//! code snippet and checks the exact constraint the paper says it implies.

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::schema::Schema;

fn missing_for(models: &str, code: &str) -> Vec<String> {
    let app = AppSource::new(
        "paper-example",
        vec![SourceFile::new("models.py", models), SourceFile::new("views.py", code)],
    );
    let report = CFinder::new().analyze(&app, &Schema::new());
    assert!(report.incidents.is_empty(), "{:?}", report.incidents);
    report.missing.iter().map(|m| m.constraint.to_string()).collect()
}

const WISHLIST_MODELS: &str = r#"
from django.db import models


class WishList(models.Model):
    key = models.CharField(max_length=16)


class Product(models.Model):
    title = models.CharField(max_length=100)


class WishListLine(models.Model):
    wishlist = models.ForeignKey(WishList, related_name='lines', on_delete=models.CASCADE)
    product = models.ForeignKey(Product, null=True, on_delete=models.SET_NULL)
"#;

/// Figure 6(a) row 1 — Oscar wishlists/models.py: save only when no record
/// filtered by the columns exists ⇒ `WishlistLine Unique (product, wishlist)`.
#[test]
fn figure6_pa_u1_save_when_not_exists() {
    let code = r#"
def add_product(wishlist_key, product):
    wishlist = WishList.objects.get(key=wishlist_key)
    lines = wishlist.lines.filter(product=product)
    if len(lines) == 0:
        wishlist.lines.create(product=product)
"#;
    let missing = missing_for(WISHLIST_MODELS, code);
    assert!(
        missing.iter().any(|c| c == "WishListLine Unique (product_id, wishlist_id)"),
        "{missing:?}"
    );
}

/// Figure 6(a) row 2 / Figure 9 — Oscar wishlists/views.py: raise when a
/// record filtered by the columns already exists.
#[test]
fn figure6_pa_u1_error_when_exists() {
    let code = r#"
class MoveProductToAnotherWishList:
    def get(self, request, to_key, product):
        to_wishlist = WishList.objects.get(key=to_key)
        if to_wishlist.lines.filter(product=product).count() > 0:
            raise ValueError('WishList already containing product')
"#;
    let missing = missing_for(WISHLIST_MODELS, code);
    assert!(
        missing.iter().any(|c| c == "WishListLine Unique (product_id, wishlist_id)"),
        "{missing:?}"
    );
}

/// Figure 6(a) row 3 — Oscar dashboard/orders/views.py: `get` uses the
/// column as a unique identifier ⇒ `Order Unique (number)`.
#[test]
fn figure6_pa_u2_get_by_number() {
    let models = "class Order(models.Model):\n    number = models.CharField(max_length=32)\n";
    let code = r#"
def order_detail(request):
    order = Order.objects.get(number=request.GET['order_number'])
    return order
"#;
    let missing = missing_for(models, code);
    assert!(missing.iter().any(|c| c == "Order Unique (number)"), "{missing:?}");
}

/// Figure 6(b) row 1 — Saleor mutations/draft_orders.py: invocation on a
/// column without a NULL check ⇒ `OrderLine Not NULL (variant)`.
#[test]
fn figure6_pa_n1_fk_invocation() {
    let models = r#"
class ProductVariant(models.Model):
    track_inventory = models.BooleanField(default=True, null=True)


class Order(models.Model):
    number = models.CharField(max_length=32)


class OrderLine(models.Model):
    order = models.ForeignKey(Order, related_name='lines', on_delete=models.CASCADE)
    variant = models.ForeignKey(ProductVariant, null=True, on_delete=models.SET_NULL)
"#;
    let code = r#"
def validate_draft(order_pk):
    order = Order.objects.get(pk=order_pk)
    for line in order.lines.all():
        if line.variant.track_inventory:
            check_stock(line)
"#;
    let missing = missing_for(models, code);
    assert!(missing.iter().any(|c| c == "OrderLine Not NULL (variant_id)"), "{missing:?}");
}

/// Figure 6(b) row 2 — Shuup models/_orders.py: raise when the column is
/// NULL ⇒ `Order Not NULL (creator)`.
#[test]
fn figure6_pa_n2_anonymous_orders() {
    let models = r#"
class Order(models.Model):
    creator = models.CharField(max_length=64)

    def check_all_verified(self):
        if not self.creator:
            raise ValueError('Anonymous orders not allowed.')
"#;
    let missing = missing_for(models, "x = 1\n");
    assert!(missing.iter().any(|c| c == "Order Not NULL (creator)"), "{missing:?}");
}

/// Figure 6(b) row 3 — Oscar order/models.py: field with a default value ⇒
/// `OrderLine Not NULL (quantity)`.
#[test]
fn figure6_pa_n3_default_quantity() {
    let models = r#"
class OrderLine(models.Model):
    quantity = models.IntegerField(default=1)
"#;
    let missing = missing_for(models, "x = 1\n");
    assert!(missing.iter().any(|c| c == "OrderLine Not NULL (quantity)"), "{missing:?}");
}

/// Figure 6(c) row 1 — Oscar apps/order/utils.py: dependent column assigned
/// the referenced table's primary key ⇒ `Discount FK (voucher_id) ref
/// Voucher(id)`.
#[test]
fn figure6_pa_f1_discount_voucher() {
    let models = r#"
class Voucher(models.Model):
    code = models.CharField(max_length=32)


class OrderDiscount(models.Model):
    voucher_id = models.IntegerField(null=True)
"#;
    let code = r#"
def create_discount_model(order_pk, voucher_pk):
    order_discount = OrderDiscount.objects.get(pk=order_pk)
    voucher = Voucher.objects.get(pk=voucher_pk)
    order_discount.voucher_id = voucher.id
    order_discount.save()
"#;
    let missing = missing_for(models, code);
    assert!(
        missing.iter().any(|c| c == "OrderDiscount FK (voucher_id) ref Voucher(id)"),
        "{missing:?}"
    );
}

/// Figure 6(c) row 2 — Saleor mutations/products.py: referenced table's
/// primary key looked up by the dependent column ⇒ `Variant FK (product_id)
/// ref Product(id)`.
#[test]
fn figure6_pa_f2_variant_product() {
    let models = r#"
class Product(models.Model):
    title = models.CharField(max_length=100)


class ProductVariant(models.Model):
    product_id = models.IntegerField(null=True)
"#;
    let code = r#"
def variant_delete(instance_pk):
    instance = ProductVariant.objects.get(pk=instance_pk)
    product = Product.objects.get(id=instance.product_id)
    return product
"#;
    let missing = missing_for(models, code);
    assert!(
        missing.iter().any(|c| c == "ProductVariant FK (product_id) ref Product(id)"),
        "{missing:?}"
    );
}

/// Figure 3 — Oscar customer forms: one path validates, the other doesn't.
/// CFinder needs only the *validating* path to infer the constraint, so the
/// unguarded update path gets protected too once the constraint is added.
#[test]
fn figure3_partial_validation_still_detected() {
    let models = "class User(models.Model):\n    email = models.EmailField(max_length=254)\n";
    let code = r#"
def creation_form_save(email):
    # Code path 1: validates uniqueness before save.
    if User.objects.filter(email=email).exists():
        raise ValueError('A user with that email already exists.')
    User.objects.create(email=email)


def profile_form_save(user_pk, email):
    # Code path 2: forgot the check entirely (the production bug).
    user = User.objects.get(pk=user_pk)
    user.email = email
    user.save()
"#;
    let missing = missing_for(models, code);
    assert!(missing.iter().any(|c| c == "User Unique (email)"), "{missing:?}");
}
