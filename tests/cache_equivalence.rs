//! The differential cold/warm cache oracle: for every corpus app, an
//! uncached run, a cold cached run, and warm cached runs at several
//! thread counts must produce byte-identical stable reports — and the
//! cache counters must prove the warm runs actually skipped the work
//! (zero files parsed for an unchanged corpus).

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use cfinder::core::{
    AnalysisCache, AnalysisReport, AppSource, CFinder, CFinderOptions, Limits, SourceFile,
};
use cfinder::corpus::{all_profiles, generate, GenOptions};

const SCALE: GenOptions = GenOptions { loc_scale: 0.01 };

fn to_source(app: &cfinder::corpus::GeneratedApp) -> AppSource {
    AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfinder-cache-eq-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &PathBuf) -> Arc<AnalysisCache> {
    Arc::new(
        AnalysisCache::open(dir, &CFinderOptions::default(), &Limits::default())
            .expect("open cache"),
    )
}

fn analyze_cached(
    app: &cfinder::corpus::GeneratedApp,
    source: &AppSource,
    cache: &Arc<AnalysisCache>,
    threads: usize,
) -> AnalysisReport {
    CFinder::new().with_threads(threads).with_cache(cache.clone()).analyze(source, &app.declared)
}

#[test]
fn cold_and_warm_runs_match_the_uncached_reference_at_all_thread_counts() {
    for profile in all_profiles() {
        let app = generate(&profile, SCALE);
        let source = to_source(&app);
        let files = app.files.len();
        let reference = CFinder::new().analyze(&source, &app.declared).stable_json();

        let dir = temp_dir(&format!("coldwarm-{}", app.name));
        let cache = open(&dir);

        // Cold: every file misses, is parsed, and is written back.
        let cold = analyze_cached(&app, &source, &cache, 2);
        assert_eq!(cold.stable_json(), reference, "{}: cold run diverged", app.name);
        assert_eq!(cold.timings.cache_hits, 0, "{}", app.name);
        assert_eq!(cold.timings.cache_misses, files, "{}", app.name);
        assert_eq!(cold.timings.files_parsed, files, "{}", app.name);

        // Warm: every file hits and nothing is parsed — at any thread
        // count, with the same bytes out.
        for threads in [1, 2, 4] {
            let warm = analyze_cached(&app, &source, &cache, threads);
            assert_eq!(
                warm.stable_json(),
                reference,
                "{}: warm run at {threads} threads diverged",
                app.name
            );
            assert_eq!(warm.timings.cache_hits, files, "{} @ {threads}", app.name);
            assert_eq!(warm.timings.cache_misses, 0, "{} @ {threads}", app.name);
            assert_eq!(
                warm.timings.files_parsed, 0,
                "{} @ {threads}: a warm run re-parsed files",
                app.name
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn editing_one_file_invalidates_exactly_that_file() {
    let profile = &all_profiles()[0];
    let app = generate(profile, SCALE);
    let source = to_source(&app);
    let files = app.files.len();
    assert!(files > 1, "need a multi-file app");

    // Append a trailing comment to one file: its content hash changes, but
    // its class facts do not, so the model registry — and with it every
    // *other* file's detect facts — stays valid.
    let mut edited = app.files.clone();
    edited[files / 2].text.push_str("\n# trailing comment\n");
    let edited_source = AppSource::new(
        app.name.clone(),
        edited.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    );
    let reference = CFinder::new().analyze(&edited_source, &app.declared).stable_json();

    // A fresh populated directory per thread count: the first edited run
    // writes the edited file's entries back, so reusing one directory
    // would make the later runs fully warm.
    for threads in [1, 2, 4] {
        let dir = temp_dir(&format!("partial-{threads}"));
        let cache = open(&dir);
        analyze_cached(&app, &source, &cache, 2); // populate with the original
        let warm = CFinder::new()
            .with_threads(threads)
            .with_cache(cache.clone())
            .analyze(&edited_source, &app.declared);
        assert_eq!(warm.stable_json(), reference, "partially-warm run diverged @ {threads}");
        assert_eq!(warm.timings.cache_misses, 1, "@ {threads}");
        assert_eq!(warm.timings.cache_hits, files - 1, "@ {threads}");
        assert_eq!(
            warm.timings.files_parsed, 1,
            "@ {threads}: only the edited file should be re-parsed"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn apps_sharing_one_cache_directory_never_evict_each_other() {
    // The corpus apps share some byte-identical files; each app analyzes
    // them under its own model registry. With all eight apps in one cache
    // directory, every app's warm run must still be fully warm — the
    // per-registry detect entries coexist instead of overwriting.
    let apps: Vec<_> = all_profiles().iter().map(|p| generate(p, SCALE)).collect();
    let sources: Vec<_> = apps.iter().map(to_source).collect();
    let references: Vec<String> = apps
        .iter()
        .zip(&sources)
        .map(|(app, source)| CFinder::new().analyze(source, &app.declared).stable_json())
        .collect();

    let dir = temp_dir("shared");
    let cache = open(&dir);
    for (app, source) in apps.iter().zip(&sources) {
        analyze_cached(app, source, &cache, 2); // populate
    }
    for ((app, source), reference) in apps.iter().zip(&sources).zip(&references) {
        let warm = analyze_cached(app, source, &cache, 2);
        assert_eq!(&warm.stable_json(), reference, "{}: shared-dir warm run diverged", app.name);
        assert_eq!(warm.timings.cache_misses, 0, "{}", app.name);
        assert_eq!(
            warm.timings.files_parsed, 0,
            "{}: another app evicted this app's cached facts",
            app.name
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
