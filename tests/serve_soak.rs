//! The daemon soak oracle.
//!
//! N concurrent clients hammer one `cfinder serve` process with the
//! whole 8-app corpus for several rounds, interleaving hostile frames
//! and a mid-round source mutation, and every analyze answer must be
//! **byte-identical** (`stable_json`) to a one-shot in-process run over
//! the same sources. The daemon must never exit, never panic, and
//! answer every frame exactly once — the harness router counts.
//!
//! The round count honors `CFINDER_SOAK_ROUNDS` (default 3) so CI can
//! run the same oracle at reduced scale.

mod support;

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::corpus::{all_profiles, generate, GenOptions, GeneratedApp};
use cfinder::schema::Schema;
use serde_json::Value;
use support::{err_code, ok_result, Daemon};

const SCALE: GenOptions = GenOptions { loc_scale: 0.01 };

/// A source file the analyzer finds a new unique constraint in — the
/// mid-soak mutation payload.
const MUTATION_SRC: &str = "class SoakVoucher(models.Model):\n    code = models.CharField(max_length=32)\n\n\ndef redeem(code):\n    if SoakVoucher.objects.filter(code=code).exists():\n        raise ValueError('duplicate voucher')\n    SoakVoucher.objects.create(code=code)\n";

/// The timed warm re-analyze payload. Deliberately *registry-neutral*
/// (no model class): detect entries are keyed by the whole-app model
/// registry hash, so a new class would invalidate every file's detect
/// entry — a correct but whole-project recompute. A helper-only file
/// leaves the registry untouched and the mutation costs exactly one
/// parse.
const TIMED_SRC: &str = "def zz_timed_helper(value):\n    return value\n";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfinder-serve-soak-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The one-shot oracle: analyze `files` (sorted like the daemon's
/// loader) in-process and return the canonical `stable_json`.
fn oracle(name: &str, files: Vec<SourceFile>, declared: &Schema) -> String {
    let mut files = files;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    CFinder::new().analyze(&AppSource::new(name.to_string(), files), declared).stable_json()
}

fn app_files(app: &GeneratedApp) -> Vec<SourceFile> {
    app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect()
}

/// Atomically publishes a new source file into a project's tree: write
/// a non-`.py` sibling, then rename. A concurrently loading daemon sees
/// the old tree or the new tree, never a torn one.
fn publish(src_dir: &Path, file_name: &str, text: &str) {
    let tmp = src_dir.join(format!(".{file_name}.tmp"));
    fs::write(&tmp, text).unwrap();
    fs::rename(&tmp, src_dir.join(file_name)).unwrap();
}

#[test]
fn soak_concurrent_clients_match_the_one_shot_oracle_byte_for_byte() {
    const CLIENTS: usize = 4;
    let rounds: usize =
        std::env::var("CFINDER_SOAK_ROUNDS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);

    let apps: Vec<GeneratedApp> = all_profiles().iter().map(|p| generate(p, SCALE)).collect();
    assert_eq!(apps.len(), 8, "the soak covers the whole corpus");
    let root = temp_dir("apps");
    for app in &apps {
        app.write_to(&root.join(&app.name)).unwrap();
    }

    // Every `stable_json` a daemon answer may legitimately equal, per
    // project. The mutator appends the post-mutation oracle *before*
    // publishing the new file, so the set is complete at every instant.
    let acceptable: Arc<Mutex<HashMap<String, Vec<String>>>> = Arc::new(Mutex::new(
        apps.iter()
            .map(|app| (app.name.clone(), vec![oracle(&app.name, app_files(app), &app.declared)]))
            .collect(),
    ));

    // The daemon runs with the sampling profiler attached and a
    // 1 ms slow-request log: the oracle equality below doubles as the
    // proof that profiling and slow-logging never perturb analysis
    // output (stable_json stays byte-identical to the unprofiled
    // one-shot runs).
    let cache_dir = root.join("cache");
    let slow_log = root.join("slow.jsonl");
    let mut daemon = Daemon::spawn(
        &[
            "--workers",
            "4",
            "--queue",
            "64",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
            "--profile-hz",
            "97",
            "--slow-log",
            slow_log.to_str().unwrap(),
            "--slow-ms",
            "1",
        ],
        CLIENTS,
        false,
    );
    let main = daemon.main_client();

    for app in &apps {
        let resp = main.call(
            &format!("reg-{}", app.name),
            &format!(
                r#""cmd":"register","project":"{}","dir":"{}","schema":"{}""#,
                app.name,
                root.join(&app.name).join("src").display(),
                root.join(&app.name).join("schema.json").display()
            ),
        );
        let result = ok_result(&resp);
        assert_eq!(
            result.get("files").and_then(Value::as_u64),
            Some(app.files.len() as u64),
            "register saw a different tree for {}",
            app.name
        );
    }

    let names: Vec<String> = apps.iter().map(|a| a.name.clone()).collect();
    let clients: Vec<support::Client> = (0..CLIENTS).map(|i| daemon.client(i)).collect();
    std::thread::scope(|s| {
        for client in clients {
            let names = names.clone();
            let acceptable = acceptable.clone();
            s.spawn(move || {
                for round in 0..rounds {
                    for (i, name) in names.iter().enumerate() {
                        let resp = client.call(
                            &format!("r{round}-{i}"),
                            &format!(r#""cmd":"analyze","project":"{name}""#),
                        );
                        let result = ok_result(&resp);
                        let got = result
                            .get("stable_json")
                            .and_then(Value::as_str)
                            .expect("analyze result carries stable_json");
                        let oracles = acceptable.lock().unwrap().get(name).unwrap().clone();
                        assert!(
                            oracles.iter().any(|o| o == got),
                            "client {} round {round}: daemon answer for `{name}` matches no oracle",
                            client.idx
                        );
                    }
                    // Hostile frames interleaved with real traffic —
                    // each must cost exactly one typed error.
                    let resp = client
                        .call(&format!("h{round}"), r#""cmd":"analyze","project":"no-such-app""#);
                    assert_eq!(err_code(&resp), "unknown-project");
                    let resp = client.call(&format!("u{round}"), r#""cmd":"frobnicate""#);
                    assert_eq!(err_code(&resp), "unknown-command");
                    let resp = client.call(&format!("b{round}"), r#""cmd":42"#);
                    assert_eq!(err_code(&resp), "malformed-frame");
                }
            });
        }

        // Mid-round mutation: while the clients run, grow project 0 by a
        // file carrying a new detectable pattern. Oracle first, then the
        // atomic publish.
        let mutated = &apps[0];
        let mut files = app_files(mutated);
        files.push(SourceFile::new("zz_soak.py".to_string(), MUTATION_SRC.to_string()));
        let after = oracle(&mutated.name, files, &mutated.declared);
        let before = acceptable.lock().unwrap().get(&mutated.name).unwrap()[0].clone();
        assert_ne!(after, before, "the mutation payload must change the analysis");
        acceptable.lock().unwrap().get_mut(&mutated.name).unwrap().push(after.clone());
        publish(&root.join(&mutated.name).join("src"), "zz_soak.py", MUTATION_SRC);

        // Hostile null-id traffic from the main client, mid-soak.
        main.send_raw("this is not a frame");
        let resp = main.recv();
        assert!(resp.get("id").unwrap().is_null(), "{resp:?}");
        assert_eq!(err_code(&resp), "malformed-frame");
    });

    // The mutation has settled: the daemon must now answer project 0
    // with exactly the post-mutation oracle.
    let mutated = &apps[0];
    let settled = main.call("settled", &format!(r#""cmd":"analyze","project":"{}""#, mutated.name));
    let expected = acceptable.lock().unwrap().get(&mutated.name).unwrap()[1].clone();
    assert_eq!(
        ok_result(&settled).get("stable_json").and_then(Value::as_str),
        Some(expected.as_str())
    );

    // Warm-cache single-file re-analyze: publish one new file into an
    // already fully cached project and time the round-trip. Exactly one
    // file parses; the budget is sub-second (EXPERIMENTS.md records the
    // measured value).
    let timed = &apps[1];
    let mut files = app_files(timed);
    files.push(SourceFile::new("zz_timed.py".to_string(), TIMED_SRC.to_string()));
    let expected = oracle(&timed.name, files, &timed.declared);
    publish(&root.join(&timed.name).join("src"), "zz_timed.py", TIMED_SRC);
    let started = Instant::now();
    let resp = main.call("timed", &format!(r#""cmd":"analyze","project":"{}""#, timed.name));
    let elapsed = started.elapsed();
    let result = ok_result(&resp);
    assert_eq!(result.get("stable_json").and_then(Value::as_str), Some(expected.as_str()));
    assert_eq!(
        result.get("files_parsed").and_then(Value::as_u64),
        Some(1),
        "a warm cache re-parses only the new file: {result:?}"
    );
    assert!(
        elapsed.as_millis() < 1000,
        "warm single-file re-analyze took {}ms (budget: 1000ms)",
        elapsed.as_millis()
    );
    println!("warm single-file re-analyze round-trip: {:.1}ms", elapsed.as_secs_f64() * 1000.0);

    // Observability after the storm: stats sees all 8 tenants and the
    // metrics exposition carries the daemon families.
    let stats = main.call("stats", r#""cmd":"stats""#);
    let result = ok_result(&stats);
    assert_eq!(result.get("projects").and_then(Value::as_array).map(Vec::len), Some(8));
    assert!(result.get("requests_total").and_then(Value::as_u64).unwrap() > 0);

    // Latency quantiles: present for both histograms, monotone in q,
    // and the handle times of real analyses are strictly positive.
    for family in ["queue_wait", "handle"] {
        let q = result
            .get("latency_seconds")
            .and_then(|l| l.get(family))
            .unwrap_or_else(|| panic!("stats lacks latency_seconds.{family}: {result:?}"));
        let quantile = |key: &str| q.get(key).and_then(Value::as_f64).unwrap();
        let (p50, p95, p99) = (quantile("p50"), quantile("p95"), quantile("p99"));
        assert!(p50 <= p95 && p95 <= p99, "{family} quantiles not monotone: {p50} / {p95} / {p99}");
        if family == "handle" {
            assert!(p99 > 0.0, "handle p99 must be positive after {rounds} analyze rounds");
        }
    }
    assert!(result.get("slow_requests_total").and_then(Value::as_u64).is_some());
    let samples = result.get("profile_samples_total").and_then(Value::as_u64).unwrap();
    println!("profiler samples accumulated during the soak: {samples}");

    let metrics = main.call("metrics", r#""cmd":"metrics""#);
    let text = ok_result(&metrics).get("prometheus").and_then(Value::as_str).unwrap().to_string();
    for family in [
        "cfinder_serve_requests_total",
        "cfinder_serve_errors_total",
        "cfinder_serve_handle_seconds",
    ] {
        assert!(text.contains(family), "metrics exposition lacks {family}");
    }

    // Non-saturation: the serve histograms use the request-scaled ladder
    // (5µs..120s), so observations must land *inside* it — not piled
    // beneath the smallest bound, none overflowing into +Inf.
    let bucket = |le: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with("cfinder_serve_handle_seconds_bucket") && l.contains(le))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no handle_seconds bucket {le} in exposition"))
    };
    let (smallest, top, inf) = (bucket("le=\"0.000005\""), bucket("le=\"120\""), bucket("+Inf"));
    assert!(smallest < inf, "every handle time fell under 5µs — the ladder is saturated low");
    assert_eq!(top, inf, "handle times overflowed the 120s ladder top");
    // The exposition also surfaces the summary-style quantile lines.
    assert!(
        text.contains("cfinder_serve_handle_seconds{quantile=\"0.5\"}"),
        "exposition lacks quantile lines for handle_seconds"
    );

    // Per-request tracing: the trace command returns the most recent
    // analyzing request's Chrome trace, well-formed and tagged with the
    // request id and tenant.
    let traced = main.call("trace", &format!(r#""cmd":"trace","project":"{}""#, apps[1].name));
    let result = ok_result(&traced);
    assert_eq!(result.get("available"), Some(&Value::Bool(true)));
    let trace_json = result.get("trace").and_then(Value::as_str).expect("trace payload");
    let parsed: Value = serde_json::from_str(trace_json).expect("trace is valid JSON");
    let events = parsed.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
    assert!(!events.is_empty(), "per-request trace has no events");
    let request_span = events
        .iter()
        .find(|e| e.get("cat").and_then(Value::as_str) == Some("request"))
        .expect("trace lacks the request span");
    let args = request_span.get("args").expect("request span carries args");
    assert_eq!(args.get("tenant").and_then(Value::as_str), Some(apps[1].name.as_str()));
    assert!(
        args.get("request_id").and_then(Value::as_str).is_some_and(|id| id.contains("timed")),
        "request span must carry the id of the last analyzing request: {args:?}"
    );
    let resp = main.call("trace-x", r#""cmd":"trace","project":"no-such-app""#);
    assert_eq!(err_code(&resp), "unknown-project");

    // Graceful drain: shutdown answers, later frames get the typed
    // refusal, EOF ends the process with exit 0 — and the router proved
    // every frame was answered.
    let resp = main.call("bye", r#""cmd":"shutdown""#);
    assert_eq!(ok_result(&resp).get("draining"), Some(&Value::Bool(true)));
    let resp = main.call("late", &format!(r#""cmd":"analyze","project":"{}""#, apps[2].name));
    assert_eq!(err_code(&resp), "shutting-down");
    let status = daemon.finish();
    assert!(status.success(), "daemon exited with {status:?}");

    // The slow-request log (threshold 1 ms): cold first-round analyses
    // are slower than that, so the soak must have left structured
    // records, each a self-contained JSONL line.
    let log_text = fs::read_to_string(&slow_log).expect("slow log exists");
    let lines: Vec<&str> = log_text.lines().collect();
    assert!(!lines.is_empty(), "no slow requests recorded at a 1ms threshold");
    for line in &lines {
        let record: Value = serde_json::from_str(line).expect("slow-log line is valid JSON");
        for key in ["ts_ms", "id", "cmd", "queue_wait_ms", "handle_ms", "total_ms", "outcome"] {
            assert!(record.get(key).is_some(), "slow-log record lacks `{key}`: {line}");
        }
    }
    println!("slow-request log: {} record(s)", lines.len());
    let _ = fs::remove_dir_all(&root);
}
