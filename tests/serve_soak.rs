//! The daemon soak oracle.
//!
//! N concurrent clients hammer one `cfinder serve` process with the
//! whole 8-app corpus for several rounds, interleaving hostile frames
//! and a mid-round source mutation, and every analyze answer must be
//! **byte-identical** (`stable_json`) to a one-shot in-process run over
//! the same sources. The daemon must never exit, never panic, and
//! answer every frame exactly once — the harness router counts.
//!
//! The round count honors `CFINDER_SOAK_ROUNDS` (default 3) so CI can
//! run the same oracle at reduced scale.

mod support;

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::corpus::{all_profiles, generate, GenOptions, GeneratedApp};
use cfinder::schema::Schema;
use serde_json::Value;
use support::{err_code, ok_result, Daemon};

const SCALE: GenOptions = GenOptions { loc_scale: 0.01 };

/// A source file the analyzer finds a new unique constraint in — the
/// mid-soak mutation payload.
const MUTATION_SRC: &str = "class SoakVoucher(models.Model):\n    code = models.CharField(max_length=32)\n\n\ndef redeem(code):\n    if SoakVoucher.objects.filter(code=code).exists():\n        raise ValueError('duplicate voucher')\n    SoakVoucher.objects.create(code=code)\n";

/// The timed warm re-analyze payload. Deliberately *registry-neutral*
/// (no model class): detect entries are keyed by the whole-app model
/// registry hash, so a new class would invalidate every file's detect
/// entry — a correct but whole-project recompute. A helper-only file
/// leaves the registry untouched and the mutation costs exactly one
/// parse.
const TIMED_SRC: &str = "def zz_timed_helper(value):\n    return value\n";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfinder-serve-soak-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The one-shot oracle: analyze `files` (sorted like the daemon's
/// loader) in-process and return the canonical `stable_json`.
fn oracle(name: &str, files: Vec<SourceFile>, declared: &Schema) -> String {
    let mut files = files;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    CFinder::new().analyze(&AppSource::new(name.to_string(), files), declared).stable_json()
}

fn app_files(app: &GeneratedApp) -> Vec<SourceFile> {
    app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect()
}

/// Atomically publishes a new source file into a project's tree: write
/// a non-`.py` sibling, then rename. A concurrently loading daemon sees
/// the old tree or the new tree, never a torn one.
fn publish(src_dir: &Path, file_name: &str, text: &str) {
    let tmp = src_dir.join(format!(".{file_name}.tmp"));
    fs::write(&tmp, text).unwrap();
    fs::rename(&tmp, src_dir.join(file_name)).unwrap();
}

#[test]
fn soak_concurrent_clients_match_the_one_shot_oracle_byte_for_byte() {
    const CLIENTS: usize = 4;
    let rounds: usize =
        std::env::var("CFINDER_SOAK_ROUNDS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);

    let apps: Vec<GeneratedApp> = all_profiles().iter().map(|p| generate(p, SCALE)).collect();
    assert_eq!(apps.len(), 8, "the soak covers the whole corpus");
    let root = temp_dir("apps");
    for app in &apps {
        app.write_to(&root.join(&app.name)).unwrap();
    }

    // Every `stable_json` a daemon answer may legitimately equal, per
    // project. The mutator appends the post-mutation oracle *before*
    // publishing the new file, so the set is complete at every instant.
    let acceptable: Arc<Mutex<HashMap<String, Vec<String>>>> = Arc::new(Mutex::new(
        apps.iter()
            .map(|app| (app.name.clone(), vec![oracle(&app.name, app_files(app), &app.declared)]))
            .collect(),
    ));

    let cache_dir = root.join("cache");
    let mut daemon = Daemon::spawn(
        &["--workers", "4", "--queue", "64", "--cache-dir", cache_dir.to_str().unwrap()],
        CLIENTS,
        false,
    );
    let main = daemon.main_client();

    for app in &apps {
        let resp = main.call(
            &format!("reg-{}", app.name),
            &format!(
                r#""cmd":"register","project":"{}","dir":"{}","schema":"{}""#,
                app.name,
                root.join(&app.name).join("src").display(),
                root.join(&app.name).join("schema.json").display()
            ),
        );
        let result = ok_result(&resp);
        assert_eq!(
            result.get("files").and_then(Value::as_u64),
            Some(app.files.len() as u64),
            "register saw a different tree for {}",
            app.name
        );
    }

    let names: Vec<String> = apps.iter().map(|a| a.name.clone()).collect();
    let clients: Vec<support::Client> = (0..CLIENTS).map(|i| daemon.client(i)).collect();
    std::thread::scope(|s| {
        for client in clients {
            let names = names.clone();
            let acceptable = acceptable.clone();
            s.spawn(move || {
                for round in 0..rounds {
                    for (i, name) in names.iter().enumerate() {
                        let resp = client.call(
                            &format!("r{round}-{i}"),
                            &format!(r#""cmd":"analyze","project":"{name}""#),
                        );
                        let result = ok_result(&resp);
                        let got = result
                            .get("stable_json")
                            .and_then(Value::as_str)
                            .expect("analyze result carries stable_json");
                        let oracles = acceptable.lock().unwrap().get(name).unwrap().clone();
                        assert!(
                            oracles.iter().any(|o| o == got),
                            "client {} round {round}: daemon answer for `{name}` matches no oracle",
                            client.idx
                        );
                    }
                    // Hostile frames interleaved with real traffic —
                    // each must cost exactly one typed error.
                    let resp = client
                        .call(&format!("h{round}"), r#""cmd":"analyze","project":"no-such-app""#);
                    assert_eq!(err_code(&resp), "unknown-project");
                    let resp = client.call(&format!("u{round}"), r#""cmd":"frobnicate""#);
                    assert_eq!(err_code(&resp), "unknown-command");
                    let resp = client.call(&format!("b{round}"), r#""cmd":42"#);
                    assert_eq!(err_code(&resp), "malformed-frame");
                }
            });
        }

        // Mid-round mutation: while the clients run, grow project 0 by a
        // file carrying a new detectable pattern. Oracle first, then the
        // atomic publish.
        let mutated = &apps[0];
        let mut files = app_files(mutated);
        files.push(SourceFile::new("zz_soak.py".to_string(), MUTATION_SRC.to_string()));
        let after = oracle(&mutated.name, files, &mutated.declared);
        let before = acceptable.lock().unwrap().get(&mutated.name).unwrap()[0].clone();
        assert_ne!(after, before, "the mutation payload must change the analysis");
        acceptable.lock().unwrap().get_mut(&mutated.name).unwrap().push(after.clone());
        publish(&root.join(&mutated.name).join("src"), "zz_soak.py", MUTATION_SRC);

        // Hostile null-id traffic from the main client, mid-soak.
        main.send_raw("this is not a frame");
        let resp = main.recv();
        assert!(resp.get("id").unwrap().is_null(), "{resp:?}");
        assert_eq!(err_code(&resp), "malformed-frame");
    });

    // The mutation has settled: the daemon must now answer project 0
    // with exactly the post-mutation oracle.
    let mutated = &apps[0];
    let settled = main.call("settled", &format!(r#""cmd":"analyze","project":"{}""#, mutated.name));
    let expected = acceptable.lock().unwrap().get(&mutated.name).unwrap()[1].clone();
    assert_eq!(
        ok_result(&settled).get("stable_json").and_then(Value::as_str),
        Some(expected.as_str())
    );

    // Warm-cache single-file re-analyze: publish one new file into an
    // already fully cached project and time the round-trip. Exactly one
    // file parses; the budget is sub-second (EXPERIMENTS.md records the
    // measured value).
    let timed = &apps[1];
    let mut files = app_files(timed);
    files.push(SourceFile::new("zz_timed.py".to_string(), TIMED_SRC.to_string()));
    let expected = oracle(&timed.name, files, &timed.declared);
    publish(&root.join(&timed.name).join("src"), "zz_timed.py", TIMED_SRC);
    let started = Instant::now();
    let resp = main.call("timed", &format!(r#""cmd":"analyze","project":"{}""#, timed.name));
    let elapsed = started.elapsed();
    let result = ok_result(&resp);
    assert_eq!(result.get("stable_json").and_then(Value::as_str), Some(expected.as_str()));
    assert_eq!(
        result.get("files_parsed").and_then(Value::as_u64),
        Some(1),
        "a warm cache re-parses only the new file: {result:?}"
    );
    assert!(
        elapsed.as_millis() < 1000,
        "warm single-file re-analyze took {}ms (budget: 1000ms)",
        elapsed.as_millis()
    );
    println!("warm single-file re-analyze round-trip: {:.1}ms", elapsed.as_secs_f64() * 1000.0);

    // Observability after the storm: stats sees all 8 tenants and the
    // metrics exposition carries the daemon families.
    let stats = main.call("stats", r#""cmd":"stats""#);
    let result = ok_result(&stats);
    assert_eq!(result.get("projects").and_then(Value::as_array).map(Vec::len), Some(8));
    assert!(result.get("requests_total").and_then(Value::as_u64).unwrap() > 0);
    let metrics = main.call("metrics", r#""cmd":"metrics""#);
    let text = ok_result(&metrics).get("prometheus").and_then(Value::as_str).unwrap().to_string();
    for family in [
        "cfinder_serve_requests_total",
        "cfinder_serve_errors_total",
        "cfinder_serve_handle_seconds",
    ] {
        assert!(text.contains(family), "metrics exposition lacks {family}");
    }

    // Graceful drain: shutdown answers, later frames get the typed
    // refusal, EOF ends the process with exit 0 — and the router proved
    // every frame was answered.
    let resp = main.call("bye", r#""cmd":"shutdown""#);
    assert_eq!(ok_result(&resp).get("draining"), Some(&Value::Bool(true)));
    let resp = main.call("late", &format!(r#""cmd":"analyze","project":"{}""#, apps[2].name));
    assert_eq!(err_code(&resp), "shutting-down");
    let status = daemon.finish();
    assert!(status.success(), "daemon exited with {status:?}");
    let _ = fs::remove_dir_all(&root);
}
