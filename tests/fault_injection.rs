//! The fault-tolerance envelope, validated end to end: seeded corruption
//! of the generated corpus must never panic the analyzer, must stay
//! byte-identical across worker-thread counts, must leave a typed
//! incident for every corrupted file, and must not disturb the
//! detections of untouched files (degradation monotonicity).

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cfinder::core::{
    AnalysisCache, AnalysisReport, AppSource, CFinder, CFinderOptions, Detection, IncidentKind,
    Limits, SourceFile,
};
use cfinder::corpus::{
    all_profiles, generate, inject_fault_at, inject_faults, inject_panic_marker, FaultKind,
    GenOptions,
};
use cfinder::schema::Constraint;

fn to_source(app: &cfinder::corpus::GeneratedApp) -> AppSource {
    AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    )
}

/// With `CFINDER_OBS_TEST=1` in the environment, every analysis runs with
/// the observability layer live — CI uses this to prove that spans and
/// metrics stay panic-free under the same seeded corruption as the
/// analyzer itself (recording happens inside the per-file panic
/// isolation, so a tracing bug would surface as an incident or a hang
/// here, not in production).
fn test_obs() -> cfinder::obs::Obs {
    if std::env::var_os("CFINDER_OBS_TEST").is_some() {
        cfinder::obs::Obs::enabled()
    } else {
        cfinder::obs::Obs::disabled()
    }
}

fn analyze(app: &cfinder::corpus::GeneratedApp, threads: usize, limits: Limits) -> AnalysisReport {
    CFinder::new()
        .with_threads(threads)
        .with_limits(limits)
        .with_obs(test_obs())
        .analyze(&to_source(app), &app.declared)
}

fn analyze_cached(
    app: &cfinder::corpus::GeneratedApp,
    threads: usize,
    limits: Limits,
    cache: Arc<AnalysisCache>,
) -> AnalysisReport {
    CFinder::new()
        .with_threads(threads)
        .with_limits(limits)
        .with_obs(test_obs())
        .with_cache(cache)
        .analyze(&to_source(app), &app.declared)
}

fn cache_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cfinder-fault-cache-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every non-timing field of the report, rendered for byte comparison.
fn fingerprint(report: &AnalysisReport) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        report.detections,
        report.inferred,
        report.missing,
        report.existing_covered,
        report.incidents
    )
}

/// Detections that do not depend on any excluded file: neither located
/// in one, nor (for inter-procedural detections) carrying a helper hop
/// whose definition lives in one. Corrupting a helper-definition file
/// legitimately degrades its call sites' hop detections in *other*
/// files, so degradation monotonicity is stated over this set.
fn detections_for_files<'a>(
    report: &'a AnalysisReport,
    exclude: &BTreeSet<&str>,
) -> Vec<&'a Detection> {
    report
        .detections
        .iter()
        .filter(|d| !exclude.contains(d.file.as_str()))
        .filter(|d| !d.via.as_ref().is_some_and(|h| exclude.contains(h.file.as_str())))
        .collect()
}

/// The headline acceptance run: 8 corpus apps × 13 seeds = 104 corrupted
/// variants, each analyzed at 1, 2, and 4 worker threads.
///
/// The corpus is generated at minimum noise scale: fault injection and
/// pattern sites are unaffected by filler LoC, and the smaller files keep
/// the 312 debug-mode analyzer runs inside a sane test budget.
#[test]
fn corrupted_corpus_never_panics_and_degrades_monotonically() {
    let scale = GenOptions { loc_scale: 0.01 };
    let mut variants = 0;
    for profile in all_profiles() {
        let clean_app = generate(&profile, scale);
        let clean = analyze(&clean_app, 1, Limits::default());
        assert!(clean.incidents.is_empty(), "{}: clean corpus must be pristine", profile.name);

        for seed in 0..13u64 {
            variants += 1;
            let mut app = clean_app.clone();
            let faults = inject_faults(&mut app, seed * 31 + 7, 3);
            assert!(!faults.is_empty(), "{} seed {seed}: no faults injected", profile.name);
            let touched: BTreeSet<&str> = faults.iter().map(|f| f.file.as_str()).collect();

            // Never-panic + byte-determinism: the serial run is the
            // reference; 2 and 4 threads must reproduce it exactly.
            let serial = analyze(&app, 1, Limits::default());
            let reference = fingerprint(&serial);
            for threads in [2, 4] {
                let parallel = analyze(&app, threads, Limits::default());
                assert_eq!(
                    fingerprint(&parallel),
                    reference,
                    "{} seed {seed} @ {threads} threads",
                    profile.name
                );
            }

            // Every corrupted file left a typed incident.
            for fault in &faults {
                assert!(
                    serial.incidents.iter().any(|i| i.file == fault.file),
                    "{} seed {seed}: fault {fault:?} produced no incident: {:?}",
                    profile.name,
                    serial.incidents
                );
            }
            // And no incident points at a file that was not corrupted.
            for incident in &serial.incidents {
                assert!(
                    touched.contains(incident.file.as_str()),
                    "{} seed {seed}: incident on untouched file: {incident}",
                    profile.name
                );
            }

            // Degradation monotonicity: untouched files' detections are
            // exactly the clean run's.
            assert_eq!(
                detections_for_files(&serial, &touched),
                detections_for_files(&clean, &touched),
                "{} seed {seed}: untouched files' detections drifted",
                profile.name
            );
        }
    }
    assert!(variants >= 100, "acceptance requires >= 100 corrupted variants, got {variants}");
}

/// Corrupting the helper-definition file (`validators.py`) with each of
/// the five corruption kinds never panics, stays thread-invariant, and
/// degrades *only* the inter-procedural recoveries: the result is
/// sandwiched between the paper (intra-procedural) run and the clean
/// summaries-on run, every constraint lost relative to the clean run is a
/// planted helper-wrapped site, every hop-free detection outside the
/// corrupted file is byte-identical to the clean run, and coverage is
/// monotone. The append-at-end kinds leave every helper definition parse-
/// able, so they must lose nothing at all — the incident is the only
/// difference.
#[test]
fn corrupted_helper_file_degrades_to_intraprocedural_only() {
    let scale = GenOptions { loc_scale: 0.01 };
    const HELPERS: &str = "validators.py";
    let missing_set = |r: &AnalysisReport| -> BTreeSet<String> {
        r.missing.iter().map(|m| m.constraint.to_string()).collect()
    };
    for profile in all_profiles() {
        let clean_app = generate(&profile, scale);
        let clean = analyze(&clean_app, 1, Limits::default());
        let intra = CFinder::with_options(CFinderOptions::paper())
            .with_threads(1)
            .with_obs(test_obs())
            .analyze(&to_source(&clean_app), &clean_app.declared);
        let clean_set = missing_set(&clean);
        let intra_set = missing_set(&intra);
        assert!(
            clean_set.len() > intra_set.len(),
            "{}: summaries-on run recovers nothing; the degradation test is vacuous",
            profile.name
        );
        // Hop-free detections outside the helper file: the invariant part
        // of the report that no helper-file corruption may disturb.
        fn hop_free(r: &AnalysisReport) -> Vec<&Detection> {
            r.detections.iter().filter(|d| d.via.is_none() && d.file != "validators.py").collect()
        }

        for kind in FaultKind::ALL {
            let mut app = clean_app.clone();
            let fault = inject_fault_at(&mut app, HELPERS, kind, 11);
            assert_eq!(fault.file, HELPERS);

            let report = analyze(&app, 1, Limits::default());
            let reference = fingerprint(&report);
            for threads in [2, 4] {
                assert_eq!(
                    fingerprint(&analyze(&app, threads, Limits::default())),
                    reference,
                    "{} {kind:?} @ {threads} threads",
                    profile.name
                );
            }

            // The corruption is visible as a typed incident, and only the
            // corrupted file is implicated.
            assert!(
                !report.incidents.is_empty(),
                "{} {kind:?}: corrupted helper file left no incident",
                profile.name
            );
            for incident in &report.incidents {
                assert_eq!(
                    incident.file, HELPERS,
                    "{} {kind:?}: incident on untouched file: {incident}",
                    profile.name
                );
            }

            // Sandwich: corruption can only lose helper summaries, so the
            // result sits between the intra-procedural floor and the clean
            // summaries-on ceiling.
            let set = missing_set(&report);
            assert!(
                intra_set.is_subset(&set),
                "{} {kind:?}: lost intra-procedural detections: {:?}",
                profile.name,
                intra_set.difference(&set).collect::<Vec<_>>()
            );
            assert!(
                set.is_subset(&clean_set),
                "{} {kind:?}: corruption *added* detections: {:?}",
                profile.name,
                set.difference(&clean_set).collect::<Vec<_>>()
            );

            // Affected call sites only: everything lost relative to the
            // clean run is a planted helper-wrapped site…
            for lost in clean_set.difference(&set) {
                assert!(
                    clean_app.truth.interproc_missing.iter().any(|c| &c.to_string() == lost),
                    "{} {kind:?}: lost a non-helper-wrapped constraint: {lost}",
                    profile.name
                );
            }
            // …and every hop-free detection outside the helper file is
            // byte-identical to the clean run.
            assert_eq!(
                hop_free(&report),
                hop_free(&clean),
                "{} {kind:?}: hop-free detections outside {HELPERS} drifted",
                profile.name
            );

            // Coverage monotone: a corrupted file can only lower it.
            assert!(
                report.coverage().percent_clean() <= clean.coverage().percent_clean(),
                "{} {kind:?}: coverage rose under corruption",
                profile.name
            );

            // Append-at-end kinds leave every helper definition intact:
            // the analysis result is exactly the clean run's.
            if !kind.is_destructive() {
                assert_eq!(
                    set, clean_set,
                    "{} {kind:?}: append-only corruption lost a summary",
                    profile.name
                );
            }
        }
    }
}

/// A file with one broken function must still contribute its intact model
/// declarations and the detections of its intact functions.
#[test]
fn broken_function_still_contributes_models_and_detections() {
    let models = "class Coupon(models.Model):\n    code = models.CharField(max_length=32)\n";
    let views = "def broken 123:\n    pass\n\n\ndef redeem(code):\n    if Coupon.objects.filter(code=code).exists():\n        raise ValueError('dup')\n    Coupon.objects.create(code=code)\n";
    let app = AppSource::new(
        "t",
        vec![SourceFile::new("models.py", models), SourceFile::new("views.py", views)],
    );
    let finder = CFinder::new().with_threads(1);
    let report = finder.analyze(&app, &cfinder::schema::Schema::new());
    assert!(
        report.missing.iter().any(|m| m.constraint == Constraint::unique("Coupon", ["code"])),
        "intact function's detection survived: {:?}",
        report.missing
    );
    assert!(report.incidents.iter().all(|i| i.kind == IncidentKind::RecoveredSyntax));
    assert!(!report.incidents.is_empty());
    assert!(finder.extract_models(&app).is_model("Coupon"));
}

/// An injected worker panic is isolated to its file: one worker-panic
/// incident, every other file analyzed as in the clean run, identical at
/// any thread count.
#[test]
fn worker_panic_is_isolated_and_deterministic() {
    let profile = cfinder::corpus::profile("zulip").expect("profile");
    let clean_app = generate(&profile, GenOptions::quick());
    let clean = analyze(&clean_app, 1, Limits::default());

    let mut app = clean_app.clone();
    let victim = app
        .files
        .iter()
        .find(|f| f.path.contains("services"))
        .expect("corpus has service files")
        .path
        .clone();
    inject_panic_marker(&mut app, &victim);
    let limits = Limits { inject_panic_marker: true, ..Limits::default() };

    let serial = analyze(&app, 1, limits);
    let panics: Vec<_> = serial.incidents_of(IncidentKind::WorkerPanic).collect();
    assert_eq!(panics.len(), 1, "{:?}", serial.incidents);
    assert_eq!(panics[0].file, victim);
    assert_eq!(serial.incidents.len(), 1);

    let excluded: BTreeSet<&str> = [victim.as_str()].into_iter().collect();
    assert_eq!(
        detections_for_files(&serial, &excluded),
        detections_for_files(&clean, &excluded),
        "other files' detections survived the panic"
    );

    let reference = fingerprint(&serial);
    for threads in [2, 4] {
        assert_eq!(fingerprint(&analyze(&app, threads, limits)), reference, "{threads} threads");
    }
}

/// The acceptance matrix with the incremental cache in the loop: every
/// corrupted variant analyzed cold and warm must reproduce the uncached
/// run's fingerprint byte for byte — incidents and coverage included.
/// A cached replay of a recovered-syntax or resource-guard incident is
/// only correct if the entry round-trips the whole incident record.
#[test]
fn corrupted_corpus_with_cache_round_trips_incidents_and_coverage() {
    let scale = GenOptions { loc_scale: 0.01 };
    let limits = Limits::default();
    let mut variants = 0;
    for profile in all_profiles() {
        let clean_app = generate(&profile, scale);
        // One content-addressed directory per app: the 13 variants share
        // it, so unchanged files hit across variants while each variant's
        // corrupted files miss — the partial-invalidation path 104 times.
        let dir = cache_dir(&format!("matrix-{}", profile.name));
        let cache = Arc::new(
            AnalysisCache::open(&dir, &CFinderOptions::default(), &limits).expect("open cache"),
        );
        for seed in 0..13u64 {
            variants += 1;
            let mut app = clean_app.clone();
            let faults = inject_faults(&mut app, seed * 31 + 7, 3);
            assert!(!faults.is_empty());

            let uncached = analyze(&app, 1, limits);
            let reference = fingerprint(&uncached);
            let coverage = uncached.coverage();

            let cold = analyze_cached(&app, 1, limits, cache.clone());
            let warm = analyze_cached(&app, 4, limits, cache.clone());
            for (what, report) in [("cold", &cold), ("warm", &warm)] {
                assert_eq!(
                    fingerprint(report),
                    reference,
                    "{} seed {seed}: {what} cached run diverged",
                    profile.name
                );
                assert_eq!(
                    report.coverage(),
                    coverage,
                    "{} seed {seed}: {what} coverage drifted",
                    profile.name
                );
            }
            assert_eq!(
                warm.timings.files_parsed, 0,
                "{} seed {seed}: warm run re-parsed files",
                profile.name
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
    assert!(variants >= 100, "acceptance requires >= 100 corrupted variants, got {variants}");
}

/// Deadline drops are timing-dependent, so they must never be written
/// back: a degraded run would otherwise poison every later run with
/// "dropped" facts for files that parse fine when the machine is not
/// overloaded.
#[test]
fn deadline_degraded_files_are_never_cached() {
    let profile = cfinder::corpus::profile("oscar").expect("profile");
    let app = generate(&profile, GenOptions { loc_scale: 0.01 });
    let limits = Limits { deadline: Some(Duration::ZERO), ..Limits::default() };
    let dir = cache_dir("deadline");
    let cache = Arc::new(
        AnalysisCache::open(&dir, &CFinderOptions::default(), &limits).expect("open cache"),
    );

    let degraded = analyze_cached(&app, 2, limits, cache.clone());
    assert_eq!(degraded.incidents.len(), app.files.len());
    assert!(degraded.incidents.iter().all(|i| i.kind == IncidentKind::Deadline));
    assert_eq!(
        AnalysisCache::stats(&dir).expect("stats").entries,
        0,
        "a deadline-degraded run must write nothing back"
    );

    // A second degraded run recomputes (and re-reports) every drop
    // instead of replaying a cached "dropped" verdict as if it were a
    // stable fact about the file.
    let again = analyze_cached(&app, 2, limits, cache);
    assert_eq!(again.timings.cache_hits, 0);
    assert_eq!(again.incidents.len(), app.files.len());
    let _ = fs::remove_dir_all(&dir);
}

/// A zero-millisecond deadline drops every file with a `deadline`
/// incident instead of wedging or panicking.
#[test]
fn zero_deadline_drops_files_with_typed_incidents() {
    let profile = cfinder::corpus::profile("oscar").expect("profile");
    let app = generate(&profile, GenOptions::quick());
    let limits = Limits { deadline: Some(Duration::ZERO), ..Limits::default() };
    let report = analyze(&app, 2, limits);
    assert_eq!(report.incidents.len(), app.files.len());
    assert!(report.incidents.iter().all(|i| i.kind == IncidentKind::Deadline));
    assert!(report.detections.is_empty());
    let cov = report.coverage();
    assert_eq!(cov.files_dropped, app.files.len());
    assert_eq!(cov.percent_clean(), 0.0);
}
