-- fixes.postgres.sql — remediation DDL emitted by cfinder
-- app: zulip
-- missing constraints: 26

-- constraint: BundleProfile Not NULL (title_t)
ALTER TABLE "BundleProfile" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: OrderLine Not NULL (title_d)
ALTER TABLE "OrderLine" ALTER COLUMN "title_d" SET NOT NULL;

-- constraint: PaymentLine Not NULL (slug_t)
ALTER TABLE "PaymentLine" ALTER COLUMN "slug_t" SET NOT NULL;

-- constraint: ProductLine Not NULL (slug_d)
ALTER TABLE "ProductLine" ALTER COLUMN "slug_d" SET NOT NULL;

-- constraint: SessionProfile Not NULL (title_t)
ALTER TABLE "SessionProfile" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: StreamProfile Not NULL (title_d)
ALTER TABLE "StreamProfile" ALTER COLUMN "title_d" SET NOT NULL;

-- constraint: TeamProfile Not NULL (title_t)
ALTER TABLE "TeamProfile" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: UserLine Not NULL (slug_d)
ALTER TABLE "UserLine" ALTER COLUMN "slug_d" SET NOT NULL;

-- constraint: BlockProfile Unique (title_t)
ALTER TABLE "BlockProfile" ADD CONSTRAINT "uq_BlockProfile_title_t" UNIQUE ("title_t");

-- constraint: CatalogProfile Unique (title_t)
ALTER TABLE "CatalogProfile" ADD CONSTRAINT "uq_CatalogProfile_title_t" UNIQUE ("title_t");

-- constraint: ChannelProfile Unique (title_t)
ALTER TABLE "ChannelProfile" ADD CONSTRAINT "uq_ChannelProfile_title_t" UNIQUE ("title_t");

-- constraint: LessonProfile Unique (title_t) where slug_flag = TRUE
CREATE UNIQUE INDEX "uq_LessonProfile_title_t" ON "LessonProfile" ("title_t") WHERE "slug_flag" = TRUE;

-- constraint: MessageProfile Unique (title_t) where slug_flag = TRUE
CREATE UNIQUE INDEX "uq_MessageProfile_title_t" ON "MessageProfile" ("title_t") WHERE "slug_flag" = TRUE;

-- constraint: PageProfile Unique (title_t)
ALTER TABLE "PageProfile" ADD CONSTRAINT "uq_PageProfile_title_t" UNIQUE ("title_t");

-- constraint: RefundProfile Unique (title_t)
ALTER TABLE "RefundProfile" ADD CONSTRAINT "uq_RefundProfile_title_t" UNIQUE ("title_t");

-- constraint: StockProfile Unique (title_t)
ALTER TABLE "StockProfile" ADD CONSTRAINT "uq_StockProfile_title_t" UNIQUE ("title_t");

-- constraint: VendorProfile Unique (title_t)
ALTER TABLE "VendorProfile" ADD CONSTRAINT "uq_VendorProfile_title_t" UNIQUE ("title_t");

-- constraint: WalletProfile Unique (title_t)
ALTER TABLE "WalletProfile" ADD CONSTRAINT "uq_WalletProfile_title_t" UNIQUE ("title_t");

-- constraint: GradeProfile FK (quiz_profile_id) ref QuizProfile(id)
ALTER TABLE "GradeProfile" ADD CONSTRAINT "fk_GradeProfile_quiz_profile_id" FOREIGN KEY ("quiz_profile_id") REFERENCES "QuizProfile"("id");

-- constraint: ModuleProfile FK (topic_profile_id) ref TopicProfile(id)
ALTER TABLE "ModuleProfile" ADD CONSTRAINT "fk_ModuleProfile_topic_profile_id" FOREIGN KEY ("topic_profile_id") REFERENCES "TopicProfile"("id");

-- constraint: OrderEntry FK (badge_profile_id) ref BadgeProfile(id)
ALTER TABLE "OrderEntry" ADD CONSTRAINT "fk_OrderEntry_badge_profile_id" FOREIGN KEY ("badge_profile_id") REFERENCES "BadgeProfile"("id");

-- constraint: UserEntry FK (product_entry_id) ref ProductEntry(id)
ALTER TABLE "UserEntry" ADD CONSTRAINT "fk_UserEntry_product_entry_id" FOREIGN KEY ("product_entry_id") REFERENCES "ProductEntry"("id");

-- constraint: CartLine Check (slug_i > 0)
ALTER TABLE "CartLine" ADD CONSTRAINT "ck_CartLine_slug_i" CHECK ("slug_i" > 0);

-- constraint: CouponLine Check (slug_i > 0)
ALTER TABLE "CouponLine" ADD CONSTRAINT "ck_CouponLine_slug_i" CHECK ("slug_i" > 0);

-- constraint: InvoiceLine Check (slug_t IN ('closed', 'open'))
ALTER TABLE "InvoiceLine" ADD CONSTRAINT "ck_InvoiceLine_slug_t" CHECK ("slug_t" IN ('closed', 'open'));

-- constraint: ShipmentLine Default (email_i = -1)
ALTER TABLE "ShipmentLine" ALTER COLUMN "email_i" SET DEFAULT -1;

