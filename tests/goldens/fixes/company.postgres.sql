-- fixes.postgres.sql — remediation DDL emitted by cfinder
-- app: company
-- missing constraints: 61

-- constraint: BadgeItem Not NULL (amount_t)
ALTER TABLE "BadgeItem" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: BundleItem Not NULL (amount_t)
ALTER TABLE "BundleItem" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: CartProfile Not NULL (amount_t)
ALTER TABLE "CartProfile" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: ChannelProfile Not NULL (amount_t)
ALTER TABLE "ChannelProfile" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: CouponProfile Not NULL (amount_d)
ALTER TABLE "CouponProfile" ALTER COLUMN "amount_d" SET NOT NULL;

-- constraint: GradeItem Not NULL (amount_t)
ALTER TABLE "GradeItem" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: InvoiceProfile Not NULL (amount_d)
ALTER TABLE "InvoiceProfile" ALTER COLUMN "amount_d" SET NOT NULL;

-- constraint: ModuleItem Not NULL (amount_t)
ALTER TABLE "ModuleItem" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: OrderProfile Not NULL (amount_t)
ALTER TABLE "OrderProfile" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: PageProfile Not NULL (amount_t)
ALTER TABLE "PageProfile" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: PaymentProfile Not NULL (amount_d)
ALTER TABLE "PaymentProfile" ALTER COLUMN "amount_d" SET NOT NULL;

-- constraint: ProductProfile Not NULL (amount_t)
ALTER TABLE "ProductProfile" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: QuizItem Not NULL (amount_t)
ALTER TABLE "QuizItem" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: SessionItem Not NULL (amount_t)
ALTER TABLE "SessionItem" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: ShipmentProfile Not NULL (amount_d)
ALTER TABLE "ShipmentProfile" ALTER COLUMN "amount_d" SET NOT NULL;

-- constraint: StreamItem Not NULL (amount_t)
ALTER TABLE "StreamItem" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: TeamItem Not NULL (amount_t)
ALTER TABLE "TeamItem" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: TopicItem Not NULL (amount_t)
ALTER TABLE "TopicItem" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: UserProfile Not NULL (amount_t)
ALTER TABLE "UserProfile" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: BadgeLine Unique (amount_t)
ALTER TABLE "BadgeLine" ADD CONSTRAINT "uq_BadgeLine_amount_t" UNIQUE ("amount_t");

-- constraint: BlockItem Unique (amount_t)
ALTER TABLE "BlockItem" ADD CONSTRAINT "uq_BlockItem_amount_t" UNIQUE ("amount_t");

-- constraint: CartItem Unique (amount_t)
ALTER TABLE "CartItem" ADD CONSTRAINT "uq_CartItem_amount_t" UNIQUE ("amount_t");

-- constraint: CatalogItem Unique (amount_t)
ALTER TABLE "CatalogItem" ADD CONSTRAINT "uq_CatalogItem_amount_t" UNIQUE ("amount_t");

-- constraint: ChannelItem Unique (amount_t)
ALTER TABLE "ChannelItem" ADD CONSTRAINT "uq_ChannelItem_amount_t" UNIQUE ("amount_t");

-- constraint: CouponItem Unique (amount_t)
ALTER TABLE "CouponItem" ADD CONSTRAINT "uq_CouponItem_amount_t" UNIQUE ("amount_t");

-- constraint: CourseItem Unique (title_t)
ALTER TABLE "CourseItem" ADD CONSTRAINT "uq_CourseItem_title_t" UNIQUE ("title_t");

-- constraint: GradeLine Unique (amount_t, quiz_line_id)
ALTER TABLE "GradeLine" ADD CONSTRAINT "uq_GradeLine_amount_t_quiz_line_id" UNIQUE ("amount_t", "quiz_line_id");

-- constraint: InvoiceItem Unique (amount_t)
ALTER TABLE "InvoiceItem" ADD CONSTRAINT "uq_InvoiceItem_amount_t" UNIQUE ("amount_t");

-- constraint: LessonItem Unique (amount_t)
ALTER TABLE "LessonItem" ADD CONSTRAINT "uq_LessonItem_amount_t" UNIQUE ("amount_t");

-- constraint: MessageItem Unique (amount_t)
ALTER TABLE "MessageItem" ADD CONSTRAINT "uq_MessageItem_amount_t" UNIQUE ("amount_t");

-- constraint: ModuleLine Unique (amount_t, topic_line_id)
ALTER TABLE "ModuleLine" ADD CONSTRAINT "uq_ModuleLine_amount_t_topic_line_id" UNIQUE ("amount_t", "topic_line_id");

-- constraint: OrderItem Unique (badge_line_id, title_t)
ALTER TABLE "OrderItem" ADD CONSTRAINT "uq_OrderItem_badge_line_id_title_t" UNIQUE ("badge_line_id", "title_t");

-- constraint: PageItem Unique (amount_t)
ALTER TABLE "PageItem" ADD CONSTRAINT "uq_PageItem_amount_t" UNIQUE ("amount_t");

-- constraint: PaymentItem Unique (amount_t)
ALTER TABLE "PaymentItem" ADD CONSTRAINT "uq_PaymentItem_amount_t" UNIQUE ("amount_t");

-- constraint: ProductItem Unique (amount_t)
ALTER TABLE "ProductItem" ADD CONSTRAINT "uq_ProductItem_amount_t" UNIQUE ("amount_t");

-- constraint: QuizLine Unique (amount_t)
ALTER TABLE "QuizLine" ADD CONSTRAINT "uq_QuizLine_amount_t" UNIQUE ("amount_t");

-- constraint: RefundItem Unique (amount_t)
ALTER TABLE "RefundItem" ADD CONSTRAINT "uq_RefundItem_amount_t" UNIQUE ("amount_t");

-- constraint: ReviewItem Unique (amount_t)
ALTER TABLE "ReviewItem" ADD CONSTRAINT "uq_ReviewItem_amount_t" UNIQUE ("amount_t");

-- constraint: ShipmentItem Unique (title_t)
ALTER TABLE "ShipmentItem" ADD CONSTRAINT "uq_ShipmentItem_title_t" UNIQUE ("title_t");

-- constraint: StockItem Unique (amount_t)
ALTER TABLE "StockItem" ADD CONSTRAINT "uq_StockItem_amount_t" UNIQUE ("amount_t");

-- constraint: TicketItem Unique (amount_t)
ALTER TABLE "TicketItem" ADD CONSTRAINT "uq_TicketItem_amount_t" UNIQUE ("amount_t");

-- constraint: TopicLine Unique (title_t)
ALTER TABLE "TopicLine" ADD CONSTRAINT "uq_TopicLine_title_t" UNIQUE ("title_t");

-- constraint: UserItem Unique (amount_t, product_item_id)
ALTER TABLE "UserItem" ADD CONSTRAINT "uq_UserItem_amount_t_product_item_id" UNIQUE ("amount_t", "product_item_id");

-- constraint: VendorItem Unique (amount_t)
ALTER TABLE "VendorItem" ADD CONSTRAINT "uq_VendorItem_amount_t" UNIQUE ("amount_t");

-- constraint: WalletItem Unique (amount_t)
ALTER TABLE "WalletItem" ADD CONSTRAINT "uq_WalletItem_amount_t" UNIQUE ("amount_t");

-- constraint: BlockEntry FK (page_entry_id) ref PageEntry(id)
ALTER TABLE "BlockEntry" ADD CONSTRAINT "fk_BlockEntry_page_entry_id" FOREIGN KEY ("page_entry_id") REFERENCES "PageEntry"("id");

-- constraint: BundleEntry FK (catalog_entry_id) ref CatalogEntry(id)
ALTER TABLE "BundleEntry" ADD CONSTRAINT "fk_BundleEntry_catalog_entry_id" FOREIGN KEY ("catalog_entry_id") REFERENCES "CatalogEntry"("id");

-- constraint: ChannelEntry FK (message_entry_id) ref MessageEntry(id)
ALTER TABLE "ChannelEntry" ADD CONSTRAINT "fk_ChannelEntry_message_entry_id" FOREIGN KEY ("message_entry_id") REFERENCES "MessageEntry"("id");

-- constraint: LessonEntry FK (course_entry_id) ref CourseEntry(id)
ALTER TABLE "LessonEntry" ADD CONSTRAINT "fk_LessonEntry_course_entry_id" FOREIGN KEY ("course_entry_id") REFERENCES "CourseEntry"("id");

-- constraint: TeamEntry FK (session_entry_id) ref SessionEntry(id)
ALTER TABLE "TeamEntry" ADD CONSTRAINT "fk_TeamEntry_session_entry_id" FOREIGN KEY ("session_entry_id") REFERENCES "SessionEntry"("id");

-- constraint: TicketEntry FK (review_entry_id) ref ReviewEntry(id)
ALTER TABLE "TicketEntry" ADD CONSTRAINT "fk_TicketEntry_review_entry_id" FOREIGN KEY ("review_entry_id") REFERENCES "ReviewEntry"("id");

-- constraint: TopicEntry FK (stream_entry_id) ref StreamEntry(id)
ALTER TABLE "TopicEntry" ADD CONSTRAINT "fk_TopicEntry_stream_entry_id" FOREIGN KEY ("stream_entry_id") REFERENCES "StreamEntry"("id");

-- constraint: VendorEntry FK (stock_entry_id) ref StockEntry(id)
ALTER TABLE "VendorEntry" ADD CONSTRAINT "fk_VendorEntry_stock_entry_id" FOREIGN KEY ("stock_entry_id") REFERENCES "StockEntry"("id");

-- constraint: WalletEntry FK (refund_entry_id) ref RefundEntry(id)
ALTER TABLE "WalletEntry" ADD CONSTRAINT "fk_WalletEntry_refund_entry_id" FOREIGN KEY ("refund_entry_id") REFERENCES "RefundEntry"("id");

-- constraint: BlockProfile Check (amount_i > 0)
ALTER TABLE "BlockProfile" ADD CONSTRAINT "ck_BlockProfile_amount_i" CHECK ("amount_i" > 0);

-- constraint: CourseProfile Check (amount_t IN ('closed', 'open'))
ALTER TABLE "CourseProfile" ADD CONSTRAINT "ck_CourseProfile_amount_t" CHECK ("amount_t" IN ('closed', 'open'));

-- constraint: ReviewProfile Check (amount_i > 0)
ALTER TABLE "ReviewProfile" ADD CONSTRAINT "ck_ReviewProfile_amount_i" CHECK ("amount_i" > 0);

-- constraint: TicketProfile Check (amount_i > 0)
ALTER TABLE "TicketProfile" ADD CONSTRAINT "ck_TicketProfile_amount_i" CHECK ("amount_i" > 0);

-- constraint: LessonProfile Default (amount_i = 1)
ALTER TABLE "LessonProfile" ALTER COLUMN "amount_i" SET DEFAULT 1;

-- constraint: MessageProfile Default (amount_i = 1)
ALTER TABLE "MessageProfile" ALTER COLUMN "amount_i" SET DEFAULT 1;

-- constraint: StockProfile Default (amount_i = 1)
ALTER TABLE "StockProfile" ALTER COLUMN "amount_i" SET DEFAULT 1;

