-- fixes.sqlite.sql — remediation DDL emitted by cfinder
-- app: edxcomm
-- missing constraints: 17

-- constraint: CartProfile Not NULL (status_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "CartProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: CouponProfile Not NULL (status_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "CouponProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: InvoiceProfile Not NULL (status_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "InvoiceProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: MessageProfile Not NULL (status_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "MessageProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: PaymentProfile Not NULL (status_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "PaymentProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: ReviewProfile Not NULL (status_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "ReviewProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: ShipmentProfile Not NULL (status_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "ShipmentProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: TicketProfile Not NULL (status_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "TicketProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: BadgeItem Unique (status_t)
CREATE UNIQUE INDEX "uq_BadgeItem_status_t" ON "BadgeItem" ("status_t");

-- constraint: GradeItem Unique (status_t)
CREATE UNIQUE INDEX "uq_GradeItem_status_t" ON "GradeItem" ("status_t");

-- constraint: OrderProfile Unique (status_t)
CREATE UNIQUE INDEX "uq_OrderProfile_status_t" ON "OrderProfile" ("status_t");

-- constraint: ProductProfile Unique (status_t)
CREATE UNIQUE INDEX "uq_ProductProfile_status_t" ON "ProductProfile" ("status_t");

-- constraint: QuizItem Unique (status_t) where amount_flag = TRUE
CREATE UNIQUE INDEX "uq_QuizItem_status_t" ON "QuizItem" ("status_t") WHERE "amount_flag" = TRUE;

-- constraint: UserProfile Unique (status_t)
CREATE UNIQUE INDEX "uq_UserProfile_status_t" ON "UserProfile" ("status_t");

-- constraint: TopicProfile FK (stream_profile_id) ref StreamProfile(id)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "TopicProfile" ADD CONSTRAINT "fk_TopicProfile_stream_profile_id" FOREIGN KEY ("stream_profile_id") REFERENCES "StreamProfile"("id");

-- constraint: CourseProfile Check (status_t IN ('closed', 'open'))
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "CourseProfile" ADD CONSTRAINT "ck_CourseProfile_status_t" CHECK ("status_t" IN ('closed', 'open'));

-- constraint: LessonProfile Default (status_i = 1)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "LessonProfile" ALTER COLUMN "status_i" SET DEFAULT 1;

