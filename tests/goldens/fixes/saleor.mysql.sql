-- fixes.mysql.sql — remediation DDL emitted by cfinder
-- app: saleor
-- missing constraints: 20

-- constraint: BundleLine Not NULL (title_t)
ALTER TABLE `BundleLine` MODIFY COLUMN `title_t` VARCHAR(64) NOT NULL;

-- constraint: CatalogLine Not NULL (slug_t)
ALTER TABLE `CatalogLine` MODIFY COLUMN `slug_t` VARCHAR(64) NOT NULL;

-- constraint: QuizLine Not NULL (title_t)
ALTER TABLE `QuizLine` MODIFY COLUMN `title_t` VARCHAR(64) NOT NULL;

-- constraint: RefundLine Not NULL (title_t)
ALTER TABLE `RefundLine` MODIFY COLUMN `title_t` VARCHAR(64) NOT NULL;

-- constraint: SessionLine Not NULL (title_d)
ALTER TABLE `SessionLine` MODIFY COLUMN `title_d` INT NOT NULL;

-- constraint: StockLine Not NULL (title_t)
ALTER TABLE `StockLine` MODIFY COLUMN `title_t` VARCHAR(64) NOT NULL;

-- constraint: TeamLine Not NULL (title_t)
ALTER TABLE `TeamLine` MODIFY COLUMN `title_t` VARCHAR(64) NOT NULL;

-- constraint: VendorLine Not NULL (title_t)
ALTER TABLE `VendorLine` MODIFY COLUMN `title_t` VARCHAR(64) NOT NULL;

-- constraint: WalletLine Not NULL (title_t)
ALTER TABLE `WalletLine` MODIFY COLUMN `title_t` VARCHAR(64) NOT NULL;

-- constraint: BlockLine Unique (slug_t)
ALTER TABLE `BlockLine` ADD CONSTRAINT `uq_BlockLine_slug_t` UNIQUE (`slug_t`);

-- constraint: ChannelLine Unique (title_t)
ALTER TABLE `ChannelLine` ADD CONSTRAINT `uq_ChannelLine_title_t` UNIQUE (`title_t`);

-- constraint: LessonLine Unique (title_t) where slug_flag = TRUE
-- mysql: partial indexes are not supported; emulate with a generated column before applying
CREATE UNIQUE INDEX `uq_LessonLine_title_t` ON `LessonLine` (`title_t`) WHERE `slug_flag` = TRUE;

-- constraint: MessageLine Unique (title_t)
ALTER TABLE `MessageLine` ADD CONSTRAINT `uq_MessageLine_title_t` UNIQUE (`title_t`);

-- constraint: PageLine Unique (title_t)
ALTER TABLE `PageLine` ADD CONSTRAINT `uq_PageLine_title_t` UNIQUE (`title_t`);

-- constraint: CartEntry FK (user_entry_id) ref UserEntry(id)
ALTER TABLE `CartEntry` ADD CONSTRAINT `fk_CartEntry_user_entry_id` FOREIGN KEY (`user_entry_id`) REFERENCES `UserEntry`(`id`);

-- constraint: ProductEntry FK (order_entry_id) ref OrderEntry(id)
ALTER TABLE `ProductEntry` ADD CONSTRAINT `fk_ProductEntry_order_entry_id` FOREIGN KEY (`order_entry_id`) REFERENCES `OrderEntry`(`id`);

-- constraint: GradeLine Check (title_t IN ('closed', 'open'))
ALTER TABLE `GradeLine` ADD CONSTRAINT `ck_GradeLine_title_t` CHECK (`title_t` IN ('closed', 'open'));

-- constraint: StreamLine Check (title_i > 0)
ALTER TABLE `StreamLine` ADD CONSTRAINT `ck_StreamLine_title_i` CHECK (`title_i` > 0);

-- constraint: ModuleLine Default (title_i = -1)
ALTER TABLE `ModuleLine` ALTER COLUMN `title_i` SET DEFAULT -1;

-- constraint: TopicLine Default (slug_i = 1)
ALTER TABLE `TopicLine` ALTER COLUMN `slug_i` SET DEFAULT 1;

