-- fixes.mysql.sql — remediation DDL emitted by cfinder
-- app: wagtail
-- missing constraints: 14

-- constraint: BundleItem Not NULL (status_d)
ALTER TABLE `BundleItem` MODIFY COLUMN `status_d` INT NOT NULL;

-- constraint: CatalogItem Not NULL (status_t)
ALTER TABLE `CatalogItem` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: RefundItem Not NULL (status_d)
ALTER TABLE `RefundItem` MODIFY COLUMN `status_d` INT NOT NULL;

-- constraint: StockItem Not NULL (status_t)
ALTER TABLE `StockItem` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: StreamItem Not NULL (status_t)
ALTER TABLE `StreamItem` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: VendorItem Not NULL (status_d)
ALTER TABLE `VendorItem` MODIFY COLUMN `status_d` INT NOT NULL;

-- constraint: WalletItem Not NULL (status_d)
ALTER TABLE `WalletItem` MODIFY COLUMN `status_d` INT NOT NULL;

-- constraint: BlockItem Unique (status_t)
ALTER TABLE `BlockItem` ADD CONSTRAINT `uq_BlockItem_status_t` UNIQUE (`status_t`);

-- constraint: ChannelItem Unique (status_t)
ALTER TABLE `ChannelItem` ADD CONSTRAINT `uq_ChannelItem_status_t` UNIQUE (`status_t`);

-- constraint: MessageItem Unique (status_t) where amount_flag = TRUE
-- mysql: partial indexes are not supported; emulate with a generated column before applying
CREATE UNIQUE INDEX `uq_MessageItem_status_t` ON `MessageItem` (`status_t`) WHERE `amount_flag` = TRUE;

-- constraint: PageItem Unique (status_t)
ALTER TABLE `PageItem` ADD CONSTRAINT `uq_PageItem_status_t` UNIQUE (`status_t`);

-- constraint: SessionItem Check (status_i > 0)
ALTER TABLE `SessionItem` ADD CONSTRAINT `ck_SessionItem_status_i` CHECK (`status_i` > 0);

-- constraint: TeamItem Default (status_i = 1)
ALTER TABLE `TeamItem` ALTER COLUMN `status_i` SET DEFAULT 1;

-- constraint: TopicItem Default (status_i = 1)
ALTER TABLE `TopicItem` ALTER COLUMN `status_i` SET DEFAULT 1;

