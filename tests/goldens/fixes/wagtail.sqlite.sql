-- fixes.sqlite.sql — remediation DDL emitted by cfinder
-- app: wagtail
-- missing constraints: 14

-- constraint: BundleItem Not NULL (status_d)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "BundleItem" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: CatalogItem Not NULL (status_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "CatalogItem" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: RefundItem Not NULL (status_d)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "RefundItem" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: StockItem Not NULL (status_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "StockItem" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: StreamItem Not NULL (status_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "StreamItem" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: VendorItem Not NULL (status_d)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "VendorItem" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: WalletItem Not NULL (status_d)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "WalletItem" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: BlockItem Unique (status_t)
CREATE UNIQUE INDEX "uq_BlockItem_status_t" ON "BlockItem" ("status_t");

-- constraint: ChannelItem Unique (status_t)
CREATE UNIQUE INDEX "uq_ChannelItem_status_t" ON "ChannelItem" ("status_t");

-- constraint: MessageItem Unique (status_t) where amount_flag = TRUE
CREATE UNIQUE INDEX "uq_MessageItem_status_t" ON "MessageItem" ("status_t") WHERE "amount_flag" = TRUE;

-- constraint: PageItem Unique (status_t)
CREATE UNIQUE INDEX "uq_PageItem_status_t" ON "PageItem" ("status_t");

-- constraint: SessionItem Check (status_i > 0)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "SessionItem" ADD CONSTRAINT "ck_SessionItem_status_i" CHECK ("status_i" > 0);

-- constraint: TeamItem Default (status_i = 1)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "TeamItem" ALTER COLUMN "status_i" SET DEFAULT 1;

-- constraint: TopicItem Default (status_i = 1)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "TopicItem" ALTER COLUMN "status_i" SET DEFAULT 1;

