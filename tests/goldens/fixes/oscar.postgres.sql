-- fixes.postgres.sql — remediation DDL emitted by cfinder
-- app: oscar
-- missing constraints: 32

-- constraint: AbstractShared0Model Not NULL (inherited_0)
ALTER TABLE "AbstractShared0Model" ALTER COLUMN "inherited_0" SET NOT NULL;

-- constraint: BlockLine Not NULL (slug_t)
ALTER TABLE "BlockLine" ALTER COLUMN "slug_t" SET NOT NULL;

-- constraint: ChannelLine Not NULL (title_t)
ALTER TABLE "ChannelLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: LessonLine Not NULL (title_t)
ALTER TABLE "LessonLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: MessageLine Not NULL (title_t)
ALTER TABLE "MessageLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: PageLine Not NULL (title_t)
ALTER TABLE "PageLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: RefundLine Not NULL (title_t)
ALTER TABLE "RefundLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: StockLine Not NULL (title_t)
ALTER TABLE "StockLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: StreamLine Not NULL (title_t)
ALTER TABLE "StreamLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: TopicLine Not NULL (slug_t)
ALTER TABLE "TopicLine" ALTER COLUMN "slug_t" SET NOT NULL;

-- constraint: VendorLine Not NULL (title_t)
ALTER TABLE "VendorLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: WalletLine Not NULL (title_t)
ALTER TABLE "WalletLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: CartLine Unique (title_t)
ALTER TABLE "CartLine" ADD CONSTRAINT "uq_CartLine_title_t" UNIQUE ("title_t");

-- constraint: CouponLine Unique (title_t)
ALTER TABLE "CouponLine" ADD CONSTRAINT "uq_CouponLine_title_t" UNIQUE ("title_t");

-- constraint: CourseLine Unique (slug_t)
ALTER TABLE "CourseLine" ADD CONSTRAINT "uq_CourseLine_slug_t" UNIQUE ("slug_t");

-- constraint: InvoiceLine Unique (title_t)
ALTER TABLE "InvoiceLine" ADD CONSTRAINT "uq_InvoiceLine_title_t" UNIQUE ("title_t");

-- constraint: OrderLine Unique (amount_t) where title_flag = TRUE
CREATE UNIQUE INDEX "uq_OrderLine_amount_t" ON "OrderLine" ("amount_t") WHERE "title_flag" = TRUE;

-- constraint: PaymentLine Unique (title_t)
ALTER TABLE "PaymentLine" ADD CONSTRAINT "uq_PaymentLine_title_t" UNIQUE ("title_t");

-- constraint: ProductLine Unique (title_t)
ALTER TABLE "ProductLine" ADD CONSTRAINT "uq_ProductLine_title_t" UNIQUE ("title_t");

-- constraint: ReviewLine Unique (title_t)
ALTER TABLE "ReviewLine" ADD CONSTRAINT "uq_ReviewLine_title_t" UNIQUE ("title_t");

-- constraint: ReviewProfile Unique (amount_t) where title_flag = TRUE
CREATE UNIQUE INDEX "uq_ReviewProfile_amount_t" ON "ReviewProfile" ("amount_t") WHERE "title_flag" = TRUE;

-- constraint: ShipmentLine Unique (slug_t)
ALTER TABLE "ShipmentLine" ADD CONSTRAINT "uq_ShipmentLine_slug_t" UNIQUE ("slug_t");

-- constraint: TicketLine Unique (title_t)
ALTER TABLE "TicketLine" ADD CONSTRAINT "uq_TicketLine_title_t" UNIQUE ("title_t");

-- constraint: UserLine Unique (title_t)
ALTER TABLE "UserLine" ADD CONSTRAINT "uq_UserLine_title_t" UNIQUE ("title_t");

-- constraint: CourseProfile FK (ticket_profile_id) ref TicketProfile(id)
ALTER TABLE "CourseProfile" ADD CONSTRAINT "fk_CourseProfile_ticket_profile_id" FOREIGN KEY ("ticket_profile_id") REFERENCES "TicketProfile"("id");

-- constraint: MessageProfile FK (lesson_profile_id) ref LessonProfile(id)
ALTER TABLE "MessageProfile" ADD CONSTRAINT "fk_MessageProfile_lesson_profile_id" FOREIGN KEY ("lesson_profile_id") REFERENCES "LessonProfile"("id");

-- constraint: BundleLine Check (title_t IN ('closed', 'open'))
ALTER TABLE "BundleLine" ADD CONSTRAINT "ck_BundleLine_title_t" CHECK ("title_t" IN ('closed', 'open'));

-- constraint: CatalogLine Check (slug_i > 0)
ALTER TABLE "CatalogLine" ADD CONSTRAINT "ck_CatalogLine_slug_i" CHECK ("slug_i" > 0);

-- constraint: ModuleLine Check (title_i > 0)
ALTER TABLE "ModuleLine" ADD CONSTRAINT "ck_ModuleLine_title_i" CHECK ("title_i" > 0);

-- constraint: SessionLine Check (title_i <= 9000)
ALTER TABLE "SessionLine" ADD CONSTRAINT "ck_SessionLine_title_i" CHECK ("title_i" <= 9000);

-- constraint: QuizLine Default (title_i = 1)
ALTER TABLE "QuizLine" ALTER COLUMN "title_i" SET DEFAULT 1;

-- constraint: TeamLine Default (title_i = 1)
ALTER TABLE "TeamLine" ALTER COLUMN "title_i" SET DEFAULT 1;

