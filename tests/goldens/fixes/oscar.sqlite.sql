-- fixes.sqlite.sql — remediation DDL emitted by cfinder
-- app: oscar
-- missing constraints: 32

-- constraint: AbstractShared0Model Not NULL (inherited_0)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "AbstractShared0Model" ALTER COLUMN "inherited_0" SET NOT NULL;

-- constraint: BlockLine Not NULL (slug_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "BlockLine" ALTER COLUMN "slug_t" SET NOT NULL;

-- constraint: ChannelLine Not NULL (title_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "ChannelLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: LessonLine Not NULL (title_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "LessonLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: MessageLine Not NULL (title_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "MessageLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: PageLine Not NULL (title_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "PageLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: RefundLine Not NULL (title_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "RefundLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: StockLine Not NULL (title_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "StockLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: StreamLine Not NULL (title_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "StreamLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: TopicLine Not NULL (slug_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "TopicLine" ALTER COLUMN "slug_t" SET NOT NULL;

-- constraint: VendorLine Not NULL (title_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "VendorLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: WalletLine Not NULL (title_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "WalletLine" ALTER COLUMN "title_t" SET NOT NULL;

-- constraint: CartLine Unique (title_t)
CREATE UNIQUE INDEX "uq_CartLine_title_t" ON "CartLine" ("title_t");

-- constraint: CouponLine Unique (title_t)
CREATE UNIQUE INDEX "uq_CouponLine_title_t" ON "CouponLine" ("title_t");

-- constraint: CourseLine Unique (slug_t)
CREATE UNIQUE INDEX "uq_CourseLine_slug_t" ON "CourseLine" ("slug_t");

-- constraint: InvoiceLine Unique (title_t)
CREATE UNIQUE INDEX "uq_InvoiceLine_title_t" ON "InvoiceLine" ("title_t");

-- constraint: OrderLine Unique (amount_t) where title_flag = TRUE
CREATE UNIQUE INDEX "uq_OrderLine_amount_t" ON "OrderLine" ("amount_t") WHERE "title_flag" = TRUE;

-- constraint: PaymentLine Unique (title_t)
CREATE UNIQUE INDEX "uq_PaymentLine_title_t" ON "PaymentLine" ("title_t");

-- constraint: ProductLine Unique (title_t)
CREATE UNIQUE INDEX "uq_ProductLine_title_t" ON "ProductLine" ("title_t");

-- constraint: ReviewLine Unique (title_t)
CREATE UNIQUE INDEX "uq_ReviewLine_title_t" ON "ReviewLine" ("title_t");

-- constraint: ReviewProfile Unique (amount_t) where title_flag = TRUE
CREATE UNIQUE INDEX "uq_ReviewProfile_amount_t" ON "ReviewProfile" ("amount_t") WHERE "title_flag" = TRUE;

-- constraint: ShipmentLine Unique (slug_t)
CREATE UNIQUE INDEX "uq_ShipmentLine_slug_t" ON "ShipmentLine" ("slug_t");

-- constraint: TicketLine Unique (title_t)
CREATE UNIQUE INDEX "uq_TicketLine_title_t" ON "TicketLine" ("title_t");

-- constraint: UserLine Unique (title_t)
CREATE UNIQUE INDEX "uq_UserLine_title_t" ON "UserLine" ("title_t");

-- constraint: CourseProfile FK (ticket_profile_id) ref TicketProfile(id)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "CourseProfile" ADD CONSTRAINT "fk_CourseProfile_ticket_profile_id" FOREIGN KEY ("ticket_profile_id") REFERENCES "TicketProfile"("id");

-- constraint: MessageProfile FK (lesson_profile_id) ref LessonProfile(id)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "MessageProfile" ADD CONSTRAINT "fk_MessageProfile_lesson_profile_id" FOREIGN KEY ("lesson_profile_id") REFERENCES "LessonProfile"("id");

-- constraint: BundleLine Check (title_t IN ('closed', 'open'))
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "BundleLine" ADD CONSTRAINT "ck_BundleLine_title_t" CHECK ("title_t" IN ('closed', 'open'));

-- constraint: CatalogLine Check (slug_i > 0)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "CatalogLine" ADD CONSTRAINT "ck_CatalogLine_slug_i" CHECK ("slug_i" > 0);

-- constraint: ModuleLine Check (title_i > 0)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "ModuleLine" ADD CONSTRAINT "ck_ModuleLine_title_i" CHECK ("title_i" > 0);

-- constraint: SessionLine Check (title_i <= 9000)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "SessionLine" ADD CONSTRAINT "ck_SessionLine_title_i" CHECK ("title_i" <= 9000);

-- constraint: QuizLine Default (title_i = 1)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "QuizLine" ALTER COLUMN "title_i" SET DEFAULT 1;

-- constraint: TeamLine Default (title_i = 1)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "TeamLine" ALTER COLUMN "title_i" SET DEFAULT 1;

