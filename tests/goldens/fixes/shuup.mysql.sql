-- fixes.mysql.sql — remediation DDL emitted by cfinder
-- app: shuup
-- missing constraints: 40

-- constraint: AbstractShared0Model Not NULL (inherited_0)
-- mysql: column type unknown to the analyzer; verify TEXT before applying
ALTER TABLE `AbstractShared0Model` MODIFY COLUMN `inherited_0` TEXT NOT NULL;

-- constraint: AbstractShared2Model Not NULL (inherited_2)
-- mysql: column type unknown to the analyzer; verify TEXT before applying
ALTER TABLE `AbstractShared2Model` MODIFY COLUMN `inherited_2` TEXT NOT NULL;

-- constraint: AbstractShared4Model Not NULL (inherited_4)
-- mysql: column type unknown to the analyzer; verify TEXT before applying
ALTER TABLE `AbstractShared4Model` MODIFY COLUMN `inherited_4` TEXT NOT NULL;

-- constraint: BadgeLog Not NULL (status_t)
ALTER TABLE `BadgeLog` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: CartLink Not NULL (status_t)
ALTER TABLE `CartLink` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: CatalogLink Not NULL (status_t)
ALTER TABLE `CatalogLink` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: ChannelLink Not NULL (status_d)
ALTER TABLE `ChannelLink` MODIFY COLUMN `status_d` INT NOT NULL;

-- constraint: CouponLink Not NULL (status_d)
ALTER TABLE `CouponLink` MODIFY COLUMN `status_d` INT NOT NULL;

-- constraint: CourseLink Not NULL (status_t)
ALTER TABLE `CourseLink` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: GradeLog Not NULL (status_t)
ALTER TABLE `GradeLog` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: InvoiceLink Not NULL (status_t)
ALTER TABLE `InvoiceLink` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: LessonLink Not NULL (status_t)
ALTER TABLE `LessonLink` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: MessageLink Not NULL (status_d)
ALTER TABLE `MessageLink` MODIFY COLUMN `status_d` INT NOT NULL;

-- constraint: ModuleLog Not NULL (status_t)
ALTER TABLE `ModuleLog` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: OrderLink Not NULL (status_t)
ALTER TABLE `OrderLink` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: PaymentLink Not NULL (status_d)
ALTER TABLE `PaymentLink` MODIFY COLUMN `status_d` INT NOT NULL;

-- constraint: ProductLink Not NULL (status_t)
ALTER TABLE `ProductLink` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: QuizLog Not NULL (status_t)
ALTER TABLE `QuizLog` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: ReviewLink Not NULL (status_d)
ALTER TABLE `ReviewLink` MODIFY COLUMN `status_d` INT NOT NULL;

-- constraint: ShipmentLink Not NULL (status_d)
ALTER TABLE `ShipmentLink` MODIFY COLUMN `status_d` INT NOT NULL;

-- constraint: StreamLog Not NULL (status_t)
ALTER TABLE `StreamLog` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: TeamLog Not NULL (status_t)
ALTER TABLE `TeamLog` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: TicketLink Not NULL (status_d)
ALTER TABLE `TicketLink` MODIFY COLUMN `status_d` INT NOT NULL;

-- constraint: TopicLog Not NULL (status_t)
ALTER TABLE `TopicLog` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: UserLink Not NULL (status_t)
ALTER TABLE `UserLink` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: WalletLink Not NULL (status_t)
ALTER TABLE `WalletLink` MODIFY COLUMN `status_t` VARCHAR(64) NOT NULL;

-- constraint: BundleLog Unique (status_t)
ALTER TABLE `BundleLog` ADD CONSTRAINT `uq_BundleLog_status_t` UNIQUE (`status_t`);

-- constraint: CatalogLog Unique (status_t)
ALTER TABLE `CatalogLog` ADD CONSTRAINT `uq_CatalogLog_status_t` UNIQUE (`status_t`);

-- constraint: RefundLog Unique (status_t, vendor_log_id)
ALTER TABLE `RefundLog` ADD CONSTRAINT `uq_RefundLog_status_t_vendor_log_id` UNIQUE (`status_t`, `vendor_log_id`);

-- constraint: SessionLog Unique (status_t)
ALTER TABLE `SessionLog` ADD CONSTRAINT `uq_SessionLog_status_t` UNIQUE (`status_t`);

-- constraint: VendorLog Unique (status_t) where amount_flag = TRUE
-- mysql: partial indexes are not supported; emulate with a generated column before applying
CREATE UNIQUE INDEX `uq_VendorLog_status_t` ON `VendorLog` (`status_t`) WHERE `amount_flag` = TRUE;

-- constraint: WalletLog Unique (status_t)
ALTER TABLE `WalletLog` ADD CONSTRAINT `uq_WalletLog_status_t` UNIQUE (`status_t`);

-- constraint: MessageMeta FK (lesson_meta_id) ref LessonMeta(id)
ALTER TABLE `MessageMeta` ADD CONSTRAINT `fk_MessageMeta_lesson_meta_id` FOREIGN KEY (`lesson_meta_id`) REFERENCES `LessonMeta`(`id`);

-- constraint: BlockLink Check (status_i > 0)
ALTER TABLE `BlockLink` ADD CONSTRAINT `ck_BlockLink_status_i` CHECK (`status_i` > 0);

-- constraint: BundleLink Check (status_i > 0)
ALTER TABLE `BundleLink` ADD CONSTRAINT `ck_BundleLink_status_i` CHECK (`status_i` > 0);

-- constraint: PageLink Check (status_i > 0)
ALTER TABLE `PageLink` ADD CONSTRAINT `ck_PageLink_status_i` CHECK (`status_i` > 0);

-- constraint: StockLink Check (status_t IN ('closed', 'open'))
ALTER TABLE `StockLink` ADD CONSTRAINT `ck_StockLink_status_t` CHECK (`status_t` IN ('closed', 'open'));

-- constraint: VendorLink Check (status_i <= 9000)
ALTER TABLE `VendorLink` ADD CONSTRAINT `ck_VendorLink_status_i` CHECK (`status_i` <= 9000);

-- constraint: RefundLink Default (status_i = 1)
ALTER TABLE `RefundLink` ALTER COLUMN `status_i` SET DEFAULT 1;

-- constraint: SessionLink Default (status_i = 1)
ALTER TABLE `SessionLink` ALTER COLUMN `status_i` SET DEFAULT 1;

