-- fixes.sqlite.sql — remediation DDL emitted by cfinder
-- app: edx
-- missing constraints: 56

-- constraint: AbstractShared0Model Not NULL (inherited_0)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "AbstractShared0Model" ALTER COLUMN "inherited_0" SET NOT NULL;

-- constraint: AbstractShared2Model Not NULL (inherited_2)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "AbstractShared2Model" ALTER COLUMN "inherited_2" SET NOT NULL;

-- constraint: BlockLog Not NULL (amount_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "BlockLog" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: ChannelLog Not NULL (amount_d)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "ChannelLog" ALTER COLUMN "amount_d" SET NOT NULL;

-- constraint: CouponLog Not NULL (amount_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "CouponLog" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: CourseLog Not NULL (amount_d)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "CourseLog" ALTER COLUMN "amount_d" SET NOT NULL;

-- constraint: InvoiceLog Not NULL (amount_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "InvoiceLog" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: LessonLog Not NULL (amount_d)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "LessonLog" ALTER COLUMN "amount_d" SET NOT NULL;

-- constraint: MessageLog Not NULL (amount_d)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "MessageLog" ALTER COLUMN "amount_d" SET NOT NULL;

-- constraint: ModuleLog Not NULL (amount_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "ModuleLog" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: PageLog Not NULL (amount_d)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "PageLog" ALTER COLUMN "amount_d" SET NOT NULL;

-- constraint: PaymentLog Not NULL (amount_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "PaymentLog" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: ReviewLog Not NULL (amount_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "ReviewLog" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: ShipmentLog Not NULL (amount_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "ShipmentLog" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: StockLog Not NULL (amount_d)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "StockLog" ALTER COLUMN "amount_d" SET NOT NULL;

-- constraint: TicketLog Not NULL (amount_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "TicketLog" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: TopicLog Not NULL (amount_t)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "TopicLog" ALTER COLUMN "amount_t" SET NOT NULL;

-- constraint: BadgeRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_BadgeRecord_amount_t" ON "BadgeRecord" ("amount_t");

-- constraint: BlockRecord Unique (amount_t) where title_flag = TRUE
CREATE UNIQUE INDEX "uq_BlockRecord_amount_t" ON "BlockRecord" ("amount_t") WHERE "title_flag" = TRUE;

-- constraint: BundleRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_BundleRecord_amount_t" ON "BundleRecord" ("amount_t");

-- constraint: CartLog Unique (amount_t)
CREATE UNIQUE INDEX "uq_CartLog_amount_t" ON "CartLog" ("amount_t");

-- constraint: CatalogRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_CatalogRecord_amount_t" ON "CatalogRecord" ("amount_t");

-- constraint: ChannelRecord Unique (amount_t) where title_flag = TRUE
CREATE UNIQUE INDEX "uq_ChannelRecord_amount_t" ON "ChannelRecord" ("amount_t") WHERE "title_flag" = TRUE;

-- constraint: GradeRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_GradeRecord_amount_t" ON "GradeRecord" ("amount_t");

-- constraint: LessonRecord Unique (amount_t) where title_flag = TRUE
CREATE UNIQUE INDEX "uq_LessonRecord_amount_t" ON "LessonRecord" ("amount_t") WHERE "title_flag" = TRUE;

-- constraint: MessageRecord Unique (amount_t) where title_flag = TRUE
CREATE UNIQUE INDEX "uq_MessageRecord_amount_t" ON "MessageRecord" ("amount_t") WHERE "title_flag" = TRUE;

-- constraint: ModuleRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_ModuleRecord_amount_t" ON "ModuleRecord" ("amount_t");

-- constraint: OrderLog Unique (amount_t)
CREATE UNIQUE INDEX "uq_OrderLog_amount_t" ON "OrderLog" ("amount_t");

-- constraint: PageRecord Unique (amount_t) where title_flag = TRUE
CREATE UNIQUE INDEX "uq_PageRecord_amount_t" ON "PageRecord" ("amount_t") WHERE "title_flag" = TRUE;

-- constraint: ProductLog Unique (amount_t)
CREATE UNIQUE INDEX "uq_ProductLog_amount_t" ON "ProductLog" ("amount_t");

-- constraint: QuizRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_QuizRecord_amount_t" ON "QuizRecord" ("amount_t");

-- constraint: RefundRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_RefundRecord_amount_t" ON "RefundRecord" ("amount_t");

-- constraint: SessionRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_SessionRecord_amount_t" ON "SessionRecord" ("amount_t");

-- constraint: StockRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_StockRecord_amount_t" ON "StockRecord" ("amount_t");

-- constraint: StreamRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_StreamRecord_amount_t" ON "StreamRecord" ("amount_t");

-- constraint: TeamRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_TeamRecord_amount_t" ON "TeamRecord" ("amount_t");

-- constraint: TopicRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_TopicRecord_amount_t" ON "TopicRecord" ("amount_t");

-- constraint: UserLog Unique (amount_t)
CREATE UNIQUE INDEX "uq_UserLog_amount_t" ON "UserLog" ("amount_t");

-- constraint: VendorRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_VendorRecord_amount_t" ON "VendorRecord" ("amount_t");

-- constraint: WalletRecord Unique (amount_t)
CREATE UNIQUE INDEX "uq_WalletRecord_amount_t" ON "WalletRecord" ("amount_t");

-- constraint: BundleEvent FK (catalog_event_id) ref CatalogEvent(id)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "BundleEvent" ADD CONSTRAINT "fk_BundleEvent_catalog_event_id" FOREIGN KEY ("catalog_event_id") REFERENCES "CatalogEvent"("id");

-- constraint: TeamEvent FK (session_event_id) ref SessionEvent(id)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "TeamEvent" ADD CONSTRAINT "fk_TeamEvent_session_event_id" FOREIGN KEY ("session_event_id") REFERENCES "SessionEvent"("id");

-- constraint: TopicEvent FK (stream_event_id) ref StreamEvent(id)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "TopicEvent" ADD CONSTRAINT "fk_TopicEvent_stream_event_id" FOREIGN KEY ("stream_event_id") REFERENCES "StreamEvent"("id");

-- constraint: VendorEvent FK (stock_event_id) ref StockEvent(id)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "VendorEvent" ADD CONSTRAINT "fk_VendorEvent_stock_event_id" FOREIGN KEY ("stock_event_id") REFERENCES "StockEvent"("id");

-- constraint: WalletEvent FK (refund_event_id) ref RefundEvent(id)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "WalletEvent" ADD CONSTRAINT "fk_WalletEvent_refund_event_id" FOREIGN KEY ("refund_event_id") REFERENCES "RefundEvent"("id");

-- constraint: BundleLog Check (amount_i <= 9000)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "BundleLog" ADD CONSTRAINT "ck_BundleLog_amount_i" CHECK ("amount_i" <= 9000);

-- constraint: CatalogLog Check (amount_t IN ('closed', 'open'))
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "CatalogLog" ADD CONSTRAINT "ck_CatalogLog_amount_t" CHECK ("amount_t" IN ('closed', 'open'));

-- constraint: GradeLog Check (amount_t IN ('closed', 'open'))
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "GradeLog" ADD CONSTRAINT "ck_GradeLog_amount_t" CHECK ("amount_t" IN ('closed', 'open'));

-- constraint: QuizLog Check (amount_i > 0)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "QuizLog" ADD CONSTRAINT "ck_QuizLog_amount_i" CHECK ("amount_i" > 0);

-- constraint: RefundLog Check (amount_i > 0)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "RefundLog" ADD CONSTRAINT "ck_RefundLog_amount_i" CHECK ("amount_i" > 0);

-- constraint: VendorLog Check (amount_i > 0)
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "VendorLog" ADD CONSTRAINT "ck_VendorLog_amount_i" CHECK ("amount_i" > 0);

-- constraint: WalletLog Check (amount_t IN ('closed', 'open'))
-- sqlite: ADD CONSTRAINT is not supported in place; apply via a table rebuild
ALTER TABLE "WalletLog" ADD CONSTRAINT "ck_WalletLog_amount_t" CHECK ("amount_t" IN ('closed', 'open'));

-- constraint: BadgeLog Default (amount_i = 1)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "BadgeLog" ALTER COLUMN "amount_i" SET DEFAULT 1;

-- constraint: SessionLog Default (amount_i = 1)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "SessionLog" ALTER COLUMN "amount_i" SET DEFAULT 1;

-- constraint: StreamLog Default (amount_i = -1)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "StreamLog" ALTER COLUMN "amount_i" SET DEFAULT -1;

-- constraint: TeamLog Default (amount_i = 1)
-- sqlite: ALTER COLUMN is not supported in place; apply via a table rebuild
ALTER TABLE "TeamLog" ALTER COLUMN "amount_i" SET DEFAULT 1;

