-- fixes.postgres.sql — remediation DDL emitted by cfinder
-- app: wagtail
-- missing constraints: 14

-- constraint: BundleItem Not NULL (status_d)
ALTER TABLE "BundleItem" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: CatalogItem Not NULL (status_t)
ALTER TABLE "CatalogItem" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: RefundItem Not NULL (status_d)
ALTER TABLE "RefundItem" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: StockItem Not NULL (status_t)
ALTER TABLE "StockItem" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: StreamItem Not NULL (status_t)
ALTER TABLE "StreamItem" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: VendorItem Not NULL (status_d)
ALTER TABLE "VendorItem" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: WalletItem Not NULL (status_d)
ALTER TABLE "WalletItem" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: BlockItem Unique (status_t)
ALTER TABLE "BlockItem" ADD CONSTRAINT "uq_BlockItem_status_t" UNIQUE ("status_t");

-- constraint: ChannelItem Unique (status_t)
ALTER TABLE "ChannelItem" ADD CONSTRAINT "uq_ChannelItem_status_t" UNIQUE ("status_t");

-- constraint: MessageItem Unique (status_t) where amount_flag = TRUE
CREATE UNIQUE INDEX "uq_MessageItem_status_t" ON "MessageItem" ("status_t") WHERE "amount_flag" = TRUE;

-- constraint: PageItem Unique (status_t)
ALTER TABLE "PageItem" ADD CONSTRAINT "uq_PageItem_status_t" UNIQUE ("status_t");

-- constraint: SessionItem Check (status_i > 0)
ALTER TABLE "SessionItem" ADD CONSTRAINT "ck_SessionItem_status_i" CHECK ("status_i" > 0);

-- constraint: TeamItem Default (status_i = 1)
ALTER TABLE "TeamItem" ALTER COLUMN "status_i" SET DEFAULT 1;

-- constraint: TopicItem Default (status_i = 1)
ALTER TABLE "TopicItem" ALTER COLUMN "status_i" SET DEFAULT 1;

