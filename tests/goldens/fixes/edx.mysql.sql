-- fixes.mysql.sql — remediation DDL emitted by cfinder
-- app: edx
-- missing constraints: 56

-- constraint: AbstractShared0Model Not NULL (inherited_0)
-- mysql: column type unknown to the analyzer; verify TEXT before applying
ALTER TABLE `AbstractShared0Model` MODIFY COLUMN `inherited_0` TEXT NOT NULL;

-- constraint: AbstractShared2Model Not NULL (inherited_2)
-- mysql: column type unknown to the analyzer; verify TEXT before applying
ALTER TABLE `AbstractShared2Model` MODIFY COLUMN `inherited_2` TEXT NOT NULL;

-- constraint: BlockLog Not NULL (amount_t)
ALTER TABLE `BlockLog` MODIFY COLUMN `amount_t` VARCHAR(64) NOT NULL;

-- constraint: ChannelLog Not NULL (amount_d)
ALTER TABLE `ChannelLog` MODIFY COLUMN `amount_d` INT NOT NULL;

-- constraint: CouponLog Not NULL (amount_t)
ALTER TABLE `CouponLog` MODIFY COLUMN `amount_t` VARCHAR(64) NOT NULL;

-- constraint: CourseLog Not NULL (amount_d)
ALTER TABLE `CourseLog` MODIFY COLUMN `amount_d` INT NOT NULL;

-- constraint: InvoiceLog Not NULL (amount_t)
ALTER TABLE `InvoiceLog` MODIFY COLUMN `amount_t` VARCHAR(64) NOT NULL;

-- constraint: LessonLog Not NULL (amount_d)
ALTER TABLE `LessonLog` MODIFY COLUMN `amount_d` INT NOT NULL;

-- constraint: MessageLog Not NULL (amount_d)
ALTER TABLE `MessageLog` MODIFY COLUMN `amount_d` INT NOT NULL;

-- constraint: ModuleLog Not NULL (amount_t)
ALTER TABLE `ModuleLog` MODIFY COLUMN `amount_t` VARCHAR(64) NOT NULL;

-- constraint: PageLog Not NULL (amount_d)
ALTER TABLE `PageLog` MODIFY COLUMN `amount_d` INT NOT NULL;

-- constraint: PaymentLog Not NULL (amount_t)
ALTER TABLE `PaymentLog` MODIFY COLUMN `amount_t` VARCHAR(64) NOT NULL;

-- constraint: ReviewLog Not NULL (amount_t)
ALTER TABLE `ReviewLog` MODIFY COLUMN `amount_t` VARCHAR(64) NOT NULL;

-- constraint: ShipmentLog Not NULL (amount_t)
ALTER TABLE `ShipmentLog` MODIFY COLUMN `amount_t` VARCHAR(64) NOT NULL;

-- constraint: StockLog Not NULL (amount_d)
ALTER TABLE `StockLog` MODIFY COLUMN `amount_d` INT NOT NULL;

-- constraint: TicketLog Not NULL (amount_t)
ALTER TABLE `TicketLog` MODIFY COLUMN `amount_t` VARCHAR(64) NOT NULL;

-- constraint: TopicLog Not NULL (amount_t)
ALTER TABLE `TopicLog` MODIFY COLUMN `amount_t` VARCHAR(64) NOT NULL;

-- constraint: BadgeRecord Unique (amount_t)
ALTER TABLE `BadgeRecord` ADD CONSTRAINT `uq_BadgeRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: BlockRecord Unique (amount_t) where title_flag = TRUE
-- mysql: partial indexes are not supported; emulate with a generated column before applying
CREATE UNIQUE INDEX `uq_BlockRecord_amount_t` ON `BlockRecord` (`amount_t`) WHERE `title_flag` = TRUE;

-- constraint: BundleRecord Unique (amount_t)
ALTER TABLE `BundleRecord` ADD CONSTRAINT `uq_BundleRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: CartLog Unique (amount_t)
ALTER TABLE `CartLog` ADD CONSTRAINT `uq_CartLog_amount_t` UNIQUE (`amount_t`);

-- constraint: CatalogRecord Unique (amount_t)
ALTER TABLE `CatalogRecord` ADD CONSTRAINT `uq_CatalogRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: ChannelRecord Unique (amount_t) where title_flag = TRUE
-- mysql: partial indexes are not supported; emulate with a generated column before applying
CREATE UNIQUE INDEX `uq_ChannelRecord_amount_t` ON `ChannelRecord` (`amount_t`) WHERE `title_flag` = TRUE;

-- constraint: GradeRecord Unique (amount_t)
ALTER TABLE `GradeRecord` ADD CONSTRAINT `uq_GradeRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: LessonRecord Unique (amount_t) where title_flag = TRUE
-- mysql: partial indexes are not supported; emulate with a generated column before applying
CREATE UNIQUE INDEX `uq_LessonRecord_amount_t` ON `LessonRecord` (`amount_t`) WHERE `title_flag` = TRUE;

-- constraint: MessageRecord Unique (amount_t) where title_flag = TRUE
-- mysql: partial indexes are not supported; emulate with a generated column before applying
CREATE UNIQUE INDEX `uq_MessageRecord_amount_t` ON `MessageRecord` (`amount_t`) WHERE `title_flag` = TRUE;

-- constraint: ModuleRecord Unique (amount_t)
ALTER TABLE `ModuleRecord` ADD CONSTRAINT `uq_ModuleRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: OrderLog Unique (amount_t)
ALTER TABLE `OrderLog` ADD CONSTRAINT `uq_OrderLog_amount_t` UNIQUE (`amount_t`);

-- constraint: PageRecord Unique (amount_t) where title_flag = TRUE
-- mysql: partial indexes are not supported; emulate with a generated column before applying
CREATE UNIQUE INDEX `uq_PageRecord_amount_t` ON `PageRecord` (`amount_t`) WHERE `title_flag` = TRUE;

-- constraint: ProductLog Unique (amount_t)
ALTER TABLE `ProductLog` ADD CONSTRAINT `uq_ProductLog_amount_t` UNIQUE (`amount_t`);

-- constraint: QuizRecord Unique (amount_t)
ALTER TABLE `QuizRecord` ADD CONSTRAINT `uq_QuizRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: RefundRecord Unique (amount_t)
ALTER TABLE `RefundRecord` ADD CONSTRAINT `uq_RefundRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: SessionRecord Unique (amount_t)
ALTER TABLE `SessionRecord` ADD CONSTRAINT `uq_SessionRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: StockRecord Unique (amount_t)
ALTER TABLE `StockRecord` ADD CONSTRAINT `uq_StockRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: StreamRecord Unique (amount_t)
ALTER TABLE `StreamRecord` ADD CONSTRAINT `uq_StreamRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: TeamRecord Unique (amount_t)
ALTER TABLE `TeamRecord` ADD CONSTRAINT `uq_TeamRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: TopicRecord Unique (amount_t)
ALTER TABLE `TopicRecord` ADD CONSTRAINT `uq_TopicRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: UserLog Unique (amount_t)
ALTER TABLE `UserLog` ADD CONSTRAINT `uq_UserLog_amount_t` UNIQUE (`amount_t`);

-- constraint: VendorRecord Unique (amount_t)
ALTER TABLE `VendorRecord` ADD CONSTRAINT `uq_VendorRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: WalletRecord Unique (amount_t)
ALTER TABLE `WalletRecord` ADD CONSTRAINT `uq_WalletRecord_amount_t` UNIQUE (`amount_t`);

-- constraint: BundleEvent FK (catalog_event_id) ref CatalogEvent(id)
ALTER TABLE `BundleEvent` ADD CONSTRAINT `fk_BundleEvent_catalog_event_id` FOREIGN KEY (`catalog_event_id`) REFERENCES `CatalogEvent`(`id`);

-- constraint: TeamEvent FK (session_event_id) ref SessionEvent(id)
ALTER TABLE `TeamEvent` ADD CONSTRAINT `fk_TeamEvent_session_event_id` FOREIGN KEY (`session_event_id`) REFERENCES `SessionEvent`(`id`);

-- constraint: TopicEvent FK (stream_event_id) ref StreamEvent(id)
ALTER TABLE `TopicEvent` ADD CONSTRAINT `fk_TopicEvent_stream_event_id` FOREIGN KEY (`stream_event_id`) REFERENCES `StreamEvent`(`id`);

-- constraint: VendorEvent FK (stock_event_id) ref StockEvent(id)
ALTER TABLE `VendorEvent` ADD CONSTRAINT `fk_VendorEvent_stock_event_id` FOREIGN KEY (`stock_event_id`) REFERENCES `StockEvent`(`id`);

-- constraint: WalletEvent FK (refund_event_id) ref RefundEvent(id)
ALTER TABLE `WalletEvent` ADD CONSTRAINT `fk_WalletEvent_refund_event_id` FOREIGN KEY (`refund_event_id`) REFERENCES `RefundEvent`(`id`);

-- constraint: BundleLog Check (amount_i <= 9000)
ALTER TABLE `BundleLog` ADD CONSTRAINT `ck_BundleLog_amount_i` CHECK (`amount_i` <= 9000);

-- constraint: CatalogLog Check (amount_t IN ('closed', 'open'))
ALTER TABLE `CatalogLog` ADD CONSTRAINT `ck_CatalogLog_amount_t` CHECK (`amount_t` IN ('closed', 'open'));

-- constraint: GradeLog Check (amount_t IN ('closed', 'open'))
ALTER TABLE `GradeLog` ADD CONSTRAINT `ck_GradeLog_amount_t` CHECK (`amount_t` IN ('closed', 'open'));

-- constraint: QuizLog Check (amount_i > 0)
ALTER TABLE `QuizLog` ADD CONSTRAINT `ck_QuizLog_amount_i` CHECK (`amount_i` > 0);

-- constraint: RefundLog Check (amount_i > 0)
ALTER TABLE `RefundLog` ADD CONSTRAINT `ck_RefundLog_amount_i` CHECK (`amount_i` > 0);

-- constraint: VendorLog Check (amount_i > 0)
ALTER TABLE `VendorLog` ADD CONSTRAINT `ck_VendorLog_amount_i` CHECK (`amount_i` > 0);

-- constraint: WalletLog Check (amount_t IN ('closed', 'open'))
ALTER TABLE `WalletLog` ADD CONSTRAINT `ck_WalletLog_amount_t` CHECK (`amount_t` IN ('closed', 'open'));

-- constraint: BadgeLog Default (amount_i = 1)
ALTER TABLE `BadgeLog` ALTER COLUMN `amount_i` SET DEFAULT 1;

-- constraint: SessionLog Default (amount_i = 1)
ALTER TABLE `SessionLog` ALTER COLUMN `amount_i` SET DEFAULT 1;

-- constraint: StreamLog Default (amount_i = -1)
ALTER TABLE `StreamLog` ALTER COLUMN `amount_i` SET DEFAULT -1;

-- constraint: TeamLog Default (amount_i = 1)
ALTER TABLE `TeamLog` ALTER COLUMN `amount_i` SET DEFAULT 1;

