-- fixes.postgres.sql — remediation DDL emitted by cfinder
-- app: edxcomm
-- missing constraints: 17

-- constraint: CartProfile Not NULL (status_t)
ALTER TABLE "CartProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: CouponProfile Not NULL (status_t)
ALTER TABLE "CouponProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: InvoiceProfile Not NULL (status_t)
ALTER TABLE "InvoiceProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: MessageProfile Not NULL (status_t)
ALTER TABLE "MessageProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: PaymentProfile Not NULL (status_t)
ALTER TABLE "PaymentProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: ReviewProfile Not NULL (status_t)
ALTER TABLE "ReviewProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: ShipmentProfile Not NULL (status_t)
ALTER TABLE "ShipmentProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: TicketProfile Not NULL (status_t)
ALTER TABLE "TicketProfile" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: BadgeItem Unique (status_t)
ALTER TABLE "BadgeItem" ADD CONSTRAINT "uq_BadgeItem_status_t" UNIQUE ("status_t");

-- constraint: GradeItem Unique (status_t)
ALTER TABLE "GradeItem" ADD CONSTRAINT "uq_GradeItem_status_t" UNIQUE ("status_t");

-- constraint: OrderProfile Unique (status_t)
ALTER TABLE "OrderProfile" ADD CONSTRAINT "uq_OrderProfile_status_t" UNIQUE ("status_t");

-- constraint: ProductProfile Unique (status_t)
ALTER TABLE "ProductProfile" ADD CONSTRAINT "uq_ProductProfile_status_t" UNIQUE ("status_t");

-- constraint: QuizItem Unique (status_t) where amount_flag = TRUE
CREATE UNIQUE INDEX "uq_QuizItem_status_t" ON "QuizItem" ("status_t") WHERE "amount_flag" = TRUE;

-- constraint: UserProfile Unique (status_t)
ALTER TABLE "UserProfile" ADD CONSTRAINT "uq_UserProfile_status_t" UNIQUE ("status_t");

-- constraint: TopicProfile FK (stream_profile_id) ref StreamProfile(id)
ALTER TABLE "TopicProfile" ADD CONSTRAINT "fk_TopicProfile_stream_profile_id" FOREIGN KEY ("stream_profile_id") REFERENCES "StreamProfile"("id");

-- constraint: CourseProfile Check (status_t IN ('closed', 'open'))
ALTER TABLE "CourseProfile" ADD CONSTRAINT "ck_CourseProfile_status_t" CHECK ("status_t" IN ('closed', 'open'));

-- constraint: LessonProfile Default (status_i = 1)
ALTER TABLE "LessonProfile" ALTER COLUMN "status_i" SET DEFAULT 1;

