-- fixes.postgres.sql — remediation DDL emitted by cfinder
-- app: shuup
-- missing constraints: 40

-- constraint: AbstractShared0Model Not NULL (inherited_0)
ALTER TABLE "AbstractShared0Model" ALTER COLUMN "inherited_0" SET NOT NULL;

-- constraint: AbstractShared2Model Not NULL (inherited_2)
ALTER TABLE "AbstractShared2Model" ALTER COLUMN "inherited_2" SET NOT NULL;

-- constraint: AbstractShared4Model Not NULL (inherited_4)
ALTER TABLE "AbstractShared4Model" ALTER COLUMN "inherited_4" SET NOT NULL;

-- constraint: BadgeLog Not NULL (status_t)
ALTER TABLE "BadgeLog" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: CartLink Not NULL (status_t)
ALTER TABLE "CartLink" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: CatalogLink Not NULL (status_t)
ALTER TABLE "CatalogLink" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: ChannelLink Not NULL (status_d)
ALTER TABLE "ChannelLink" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: CouponLink Not NULL (status_d)
ALTER TABLE "CouponLink" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: CourseLink Not NULL (status_t)
ALTER TABLE "CourseLink" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: GradeLog Not NULL (status_t)
ALTER TABLE "GradeLog" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: InvoiceLink Not NULL (status_t)
ALTER TABLE "InvoiceLink" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: LessonLink Not NULL (status_t)
ALTER TABLE "LessonLink" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: MessageLink Not NULL (status_d)
ALTER TABLE "MessageLink" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: ModuleLog Not NULL (status_t)
ALTER TABLE "ModuleLog" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: OrderLink Not NULL (status_t)
ALTER TABLE "OrderLink" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: PaymentLink Not NULL (status_d)
ALTER TABLE "PaymentLink" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: ProductLink Not NULL (status_t)
ALTER TABLE "ProductLink" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: QuizLog Not NULL (status_t)
ALTER TABLE "QuizLog" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: ReviewLink Not NULL (status_d)
ALTER TABLE "ReviewLink" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: ShipmentLink Not NULL (status_d)
ALTER TABLE "ShipmentLink" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: StreamLog Not NULL (status_t)
ALTER TABLE "StreamLog" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: TeamLog Not NULL (status_t)
ALTER TABLE "TeamLog" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: TicketLink Not NULL (status_d)
ALTER TABLE "TicketLink" ALTER COLUMN "status_d" SET NOT NULL;

-- constraint: TopicLog Not NULL (status_t)
ALTER TABLE "TopicLog" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: UserLink Not NULL (status_t)
ALTER TABLE "UserLink" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: WalletLink Not NULL (status_t)
ALTER TABLE "WalletLink" ALTER COLUMN "status_t" SET NOT NULL;

-- constraint: BundleLog Unique (status_t)
ALTER TABLE "BundleLog" ADD CONSTRAINT "uq_BundleLog_status_t" UNIQUE ("status_t");

-- constraint: CatalogLog Unique (status_t)
ALTER TABLE "CatalogLog" ADD CONSTRAINT "uq_CatalogLog_status_t" UNIQUE ("status_t");

-- constraint: RefundLog Unique (status_t, vendor_log_id)
ALTER TABLE "RefundLog" ADD CONSTRAINT "uq_RefundLog_status_t_vendor_log_id" UNIQUE ("status_t", "vendor_log_id");

-- constraint: SessionLog Unique (status_t)
ALTER TABLE "SessionLog" ADD CONSTRAINT "uq_SessionLog_status_t" UNIQUE ("status_t");

-- constraint: VendorLog Unique (status_t) where amount_flag = TRUE
CREATE UNIQUE INDEX "uq_VendorLog_status_t" ON "VendorLog" ("status_t") WHERE "amount_flag" = TRUE;

-- constraint: WalletLog Unique (status_t)
ALTER TABLE "WalletLog" ADD CONSTRAINT "uq_WalletLog_status_t" UNIQUE ("status_t");

-- constraint: MessageMeta FK (lesson_meta_id) ref LessonMeta(id)
ALTER TABLE "MessageMeta" ADD CONSTRAINT "fk_MessageMeta_lesson_meta_id" FOREIGN KEY ("lesson_meta_id") REFERENCES "LessonMeta"("id");

-- constraint: BlockLink Check (status_i > 0)
ALTER TABLE "BlockLink" ADD CONSTRAINT "ck_BlockLink_status_i" CHECK ("status_i" > 0);

-- constraint: BundleLink Check (status_i > 0)
ALTER TABLE "BundleLink" ADD CONSTRAINT "ck_BundleLink_status_i" CHECK ("status_i" > 0);

-- constraint: PageLink Check (status_i > 0)
ALTER TABLE "PageLink" ADD CONSTRAINT "ck_PageLink_status_i" CHECK ("status_i" > 0);

-- constraint: StockLink Check (status_t IN ('closed', 'open'))
ALTER TABLE "StockLink" ADD CONSTRAINT "ck_StockLink_status_t" CHECK ("status_t" IN ('closed', 'open'));

-- constraint: VendorLink Check (status_i <= 9000)
ALTER TABLE "VendorLink" ADD CONSTRAINT "ck_VendorLink_status_i" CHECK ("status_i" <= 9000);

-- constraint: RefundLink Default (status_i = 1)
ALTER TABLE "RefundLink" ALTER COLUMN "status_i" SET DEFAULT 1;

-- constraint: SessionLink Default (status_i = 1)
ALTER TABLE "SessionLink" ALTER COLUMN "status_i" SET DEFAULT 1;

