//! Golden tests for `cfinder explain` on the paper's §3 running examples:
//! the provenance chain must name the correct pattern family and the exact
//! `file:line` the inference came from.

use std::fs;
use std::process::Command;

fn temp_app(tag: &str, models: &str, views: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cfinder-explain-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("app")).unwrap();
    fs::write(dir.join("app/models.py"), models).unwrap();
    fs::write(dir.join("app/views.py"), views).unwrap();
    dir.join("app")
}

fn explain(dir: &std::path::Path, target: &str) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg("explain")
        .arg(target)
        .arg(dir)
        .output()
        .expect("binary runs");
    (out.status.code(), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// Figure 6(a) row 1 — Oscar's wishlist example: the length-zero existence
/// check gating the `create` is PA_u1, anchored at the `if` on line 4.
#[test]
fn explain_wishlist_unique_names_pa_u1_and_line() {
    let models = "from django.db import models\n\n\nclass WishList(models.Model):\n    key = models.CharField(max_length=16)\n\n\nclass Product(models.Model):\n    title = models.CharField(max_length=100)\n\n\nclass WishListLine(models.Model):\n    wishlist = models.ForeignKey(WishList, related_name='lines', on_delete=models.CASCADE)\n    product = models.ForeignKey(Product, null=True, on_delete=models.SET_NULL)\n";
    let views = "def add_product(wishlist_key, product):\n    wishlist = WishList.objects.get(key=wishlist_key)\n    lines = wishlist.lines.filter(product=product)\n    if len(lines) == 0:\n        wishlist.lines.create(product=product)\n";
    let dir = temp_app("wishlist", models, views);

    let (code, stdout) = explain(&dir, "WishListLine.product_id");
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("WishListLine Unique (product_id, wishlist_id)"), "{stdout}");
    assert!(stdout.contains("[missing from declared schema]"), "{stdout}");
    assert!(stdout.contains("PA_u1:"), "{stdout}");
    assert!(stdout.contains("at views.py:4: if len(lines) == 0:"), "{stdout}");
    assert!(stdout.contains("fix: ALTER TABLE \"WishListLine\" ADD CONSTRAINT"), "{stdout}");

    // A bare table target resolves too (any column).
    let (code, stdout) = explain(&dir, "WishListLine");
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("PA_u1:"), "{stdout}");
}

/// Figure 6(a) row 3 — Oscar's order-number lookup: `get(number=…)` is the
/// PA_u2 uniqueness-assuming API, anchored at the `get` call on line 2.
#[test]
fn explain_order_number_names_pa_u2_and_line() {
    let models = "class Order(models.Model):\n    number = models.CharField(max_length=32)\n";
    let views = "def order_detail(request):\n    order = Order.objects.get(number=request.GET['order_number'])\n    return order\n";
    let dir = temp_app("order", models, views);

    let (code, stdout) = explain(&dir, "Order.number");
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("Order Unique (number)"), "{stdout}");
    assert!(stdout.contains("PA_u2:"), "{stdout}");
    assert!(
        stdout.contains(
            "at views.py:2: order = Order.objects.get(number=request.GET['order_number'])"
        ),
        "{stdout}"
    );
}

/// Extension patterns: a validator raise pins a CHECK (PA_c1/PA_c2) and a
/// None-guarded constant fallback pins a DEFAULT (PA_d1), each with the
/// `file:line` of the guard.
#[test]
fn explain_check_and_default_name_new_patterns() {
    let models = "class Invoice(models.Model):\n    total = models.IntegerField()\n    status = models.CharField(max_length=16)\n    creator = models.CharField(max_length=64)\n\n    def validate(self):\n        if self.total <= 0:\n            raise ValueError('total must be positive')\n        if self.status not in ('open', 'closed'):\n            raise ValueError('bad status')\n\n    def fix(self):\n        if self.creator is not None:\n            return self.creator\n        else:\n            self.creator = 'system'\n";
    let dir = temp_app("checkdefault", models, "x = 1\n");

    let (code, stdout) = explain(&dir, "Invoice.total");
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("Invoice Check (total > 0)"), "{stdout}");
    assert!(stdout.contains("PA_c1:"), "{stdout}");
    assert!(stdout.contains("at models.py:7: if self.total <= 0:"), "{stdout}");

    let (code, stdout) = explain(&dir, "Invoice.status");
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("Invoice Check (status IN ('closed', 'open'))"), "{stdout}");
    assert!(stdout.contains("PA_c2:"), "{stdout}");

    let (code, stdout) = explain(&dir, "Invoice.creator");
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("Invoice Default (creator = 'system')"), "{stdout}");
    assert!(stdout.contains("PA_d1:"), "{stdout}");
    assert!(stdout.contains("at models.py:13: if self.creator is not None:"), "{stdout}");
}

/// Inter-procedural provenance (§4.1.3 extension): a helper-wrapped
/// not-None check fires PA_n2 through the call graph, and the chain
/// shows every hop — rule, helper definition, call site — each with its
/// `file:line`.
#[test]
fn explain_helper_wrapped_site_shows_the_hop() {
    let dir = std::env::temp_dir().join(format!("cfinder-explain-hop-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("app")).unwrap();
    fs::write(
        dir.join("app/models.py"),
        "class Voucher(models.Model):\n    code = models.CharField(max_length=16, null=True)\n",
    )
    .unwrap();
    fs::write(
        dir.join("app/validators.py"),
        "def require_code(obj):\n    if obj.code is None:\n        raise ValueError('code required')\n",
    )
    .unwrap();
    fs::write(
        dir.join("app/views.py"),
        "def redeem(pk):\n    voucher = Voucher.objects.get(pk=pk)\n    require_code(voucher)\n",
    )
    .unwrap();
    let app = dir.join("app");

    let (code, stdout) = explain(&app, "Voucher.code");
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("Voucher Not NULL (code)"), "{stdout}");
    assert!(stdout.contains("PA_n2:"), "{stdout}");
    assert!(stdout.contains("via helper `require_code` defined at validators.py:2"), "{stdout}");
    assert!(stdout.contains("call site at views.py:3: require_code(voucher)"), "{stdout}");
    assert!(stdout.contains("fix: ALTER TABLE \"Voucher\""), "{stdout}");
}

/// Unknown targets exit 1 with a one-line explanation rather than a stack
/// of empty sections.
#[test]
fn explain_unknown_target_exits_one() {
    let models = "class Order(models.Model):\n    number = models.CharField(max_length=32)\n";
    let dir = temp_app("unknown", models, "x = 1\n");
    let (code, stdout) = explain(&dir, "Nope.col");
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("no inferred constraint on `Nope.col`"), "{stdout}");
}
