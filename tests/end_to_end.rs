//! Cross-crate integration: from code analysis to constraint enforcement.
//!
//! The full loop a deployment would run: CFinder finds a missing
//! constraint in the application code → the migration adds it to the
//! database → the database rejects the very write the application bug
//! would have produced — and also rejects the migration while corrupted
//! rows are still present (§4.2.1).

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::minidb::{Database, DbError, Value};
use cfinder::schema::{Column, ColumnType, Constraint, Schema, Table};

const MODELS: &str = r#"
class UserProfile(models.Model):
    email = models.EmailField(max_length=254)
    realm = models.CharField(max_length=64)
"#;

const VIEWS: &str = r#"
def signup(email):
    if UserProfile.objects.filter(email=email).exists():
        raise ValueError('taken')
    UserProfile.objects.create(email=email)
"#;

fn declared_schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(
        Table::new("UserProfile")
            .with_column(Column::new("email", ColumnType::VarChar(254)))
            .with_column(Column::new("realm", ColumnType::VarChar(64))),
    );
    s
}

#[test]
fn detect_then_enforce_then_block_bad_write() {
    // 1. Detect.
    let app = AppSource::new(
        "zulip-like",
        vec![SourceFile::new("models.py", MODELS), SourceFile::new("views.py", VIEWS)],
    );
    let report = CFinder::new().analyze(&app, &declared_schema());
    let missing = report
        .missing
        .iter()
        .find(|m| m.constraint == Constraint::unique("UserProfile", ["email"]))
        .expect("the unique constraint is inferred from the signup check");

    // 2. Enforce: apply the detected constraint to a live database.
    let mut db = Database::new();
    db.create_table(
        Table::new("UserProfile")
            .with_column(Column::new("email", ColumnType::VarChar(254)))
            .with_column(Column::new("realm", ColumnType::VarChar(64))),
    )
    .unwrap();
    db.add_constraint(missing.constraint.clone()).unwrap();

    // 3. The buggy code path (profile update without a check) now fails at
    //    the database instead of corrupting data.
    db.insert("UserProfile", [("email", Value::from("sam@example.com"))]).unwrap();
    let err = db.insert("UserProfile", [("email", Value::from("sam@example.com"))]).unwrap_err();
    assert!(matches!(err, DbError::ConstraintViolation { .. }));
}

#[test]
fn migration_rejected_until_data_cleaned() {
    let app = AppSource::new(
        "zulip-like",
        vec![SourceFile::new("models.py", MODELS), SourceFile::new("views.py", VIEWS)],
    );
    let report = CFinder::new().analyze(&app, &declared_schema());
    let constraint = report
        .missing
        .iter()
        .find(|m| m.constraint == Constraint::unique("UserProfile", ["email"]))
        .expect("inferred")
        .constraint
        .clone();

    // The database already contains corrupted rows (the 19-month window).
    let mut db = Database::new();
    db.create_table(
        Table::new("UserProfile")
            .with_column(Column::new("email", ColumnType::VarChar(254)))
            .with_column(Column::new("realm", ColumnType::VarChar(64))),
    )
    .unwrap();
    let first = db.insert("UserProfile", [("email", Value::from("dup@example.com"))]).unwrap();
    let second = db.insert("UserProfile", [("email", Value::from("dup@example.com"))]).unwrap();

    // Adding the detected constraint is rejected while duplicates exist…
    let err = db.add_constraint(constraint.clone()).unwrap_err();
    assert!(matches!(err, DbError::MigrationRejected { violations: 1, .. }));

    // …and succeeds after data cleaning.
    db.delete("UserProfile", second).unwrap();
    db.add_constraint(constraint).unwrap();
    assert!(db.get("UserProfile", first).is_ok());
}

#[test]
fn corpus_app_constraints_apply_to_live_database() {
    // Every TRUE missing constraint planted for the smallest corpus app can
    // actually be installed on an empty live database built from the
    // declared schema — i.e. the detections are well-formed DDL, except the
    // wrong-table FPs (which reference abstract classes without tables).
    use cfinder::corpus::{generate, profile, GenOptions};
    let app = generate(&profile("wagtail").unwrap(), GenOptions::quick());
    let mut db = Database::new();
    for table in app.declared.tables() {
        db.create_table(table.clone()).unwrap();
    }
    for c in app.declared.constraints().iter() {
        if !db.constraints().contains(c) {
            db.add_constraint(c.clone()).unwrap();
        }
    }
    for c in app.truth.true_missing.iter() {
        db.add_constraint(c.clone()).unwrap_or_else(|e| panic!("installing {c} failed: {e}"));
    }
}

#[test]
fn facade_reexports_are_usable() {
    // Each substrate is reachable through the facade.
    let module = cfinder::pyast::parse_module("x = 1\n").unwrap();
    assert_eq!(module.body.len(), 1);
    let chains = cfinder::flow::UseDefChains::compute(&module.body, &[]);
    assert_eq!(chains.defs().len(), 1);
    let report = cfinder::minidb::simulate_interleavings(cfinder::minidb::RaceConfig {
        requests: 2,
        app_validation: true,
        db_constraint: true,
    });
    assert_eq!(report.corrupted_schedules, 0);
    assert_eq!(cfinder::corpus::all_profiles().len(), 8);
}
