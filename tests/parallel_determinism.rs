//! The parallel analysis engine must be a pure performance optimization:
//! for every corpus app, an `analyze` run with N worker threads produces a
//! report identical to a forced single-thread run — same detections in the
//! same order, same inferred/missing/existing sets, same incidents.
//! Only the timing fields may differ.

use std::fs;
use std::path::PathBuf;

use cfinder::core::{AnalysisReport, AppSource, CFinder, SourceFile};
use cfinder::corpus::GenOptions;
use cfinder::sql::{fix_script, Dialect};

fn analyze_with_threads(app: &cfinder::corpus::GeneratedApp, threads: usize) -> AnalysisReport {
    let source = AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    );
    CFinder::new().with_threads(threads).analyze(&source, &app.declared)
}

/// Asserts every non-timing field of the two reports is identical.
fn assert_reports_identical(serial: &AnalysisReport, parallel: &AnalysisReport, ctx: &str) {
    assert_eq!(serial.app, parallel.app, "{ctx}: app name");
    assert_eq!(serial.loc, parallel.loc, "{ctx}: loc");
    assert_eq!(serial.detections, parallel.detections, "{ctx}: detections (incl. order)");
    assert_eq!(serial.inferred, parallel.inferred, "{ctx}: inferred set");
    assert_eq!(serial.missing, parallel.missing, "{ctx}: missing (incl. order)");
    assert_eq!(serial.existing_covered, parallel.existing_covered, "{ctx}: existing covered");
    assert_eq!(serial.incidents, parallel.incidents, "{ctx}: incidents");
    // Belt and braces: the rendered forms are byte-identical too.
    assert_eq!(
        format!("{:?} {:?} {:?}", serial.detections, serial.missing, serial.incidents),
        format!("{:?} {:?} {:?}", parallel.detections, parallel.missing, parallel.incidents),
        "{ctx}: debug rendering"
    );
}

#[test]
fn parallel_analysis_matches_serial_on_all_corpus_apps() {
    for profile in cfinder::corpus::all_profiles() {
        let app = cfinder::corpus::generate(&profile, GenOptions::quick());
        let serial = analyze_with_threads(&app, 1);
        // 4 threads exercises even chunking, 3 uneven chunks with a short
        // tail; both must merge back to the serial order exactly.
        for threads in [3, 4] {
            let parallel = analyze_with_threads(&app, threads);
            assert_eq!(parallel.timings.threads, threads);
            assert_reports_identical(
                &serial,
                &parallel,
                &format!("{} @ {threads} threads", app.name),
            );
        }
    }
}

/// The `reproduce` fix-script artifacts are part of the determinism
/// contract: for every corpus app and every dialect, the emitted
/// `fixes.<dialect>.sql` must be byte-identical to the checked-in golden,
/// at 1, 2, and 4 analysis threads alike. Regenerate the goldens with
/// `CFINDER_BLESS=1 cargo test --test parallel_determinism`.
#[test]
fn fix_script_artifacts_match_goldens_at_every_thread_count() {
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/fixes");
    let bless = std::env::var_os("CFINDER_BLESS").is_some();
    if bless {
        fs::create_dir_all(&golden_dir).unwrap();
    }
    for profile in cfinder::corpus::all_profiles() {
        let app = cfinder::corpus::generate(&profile, GenOptions::quick());
        for threads in [1, 2, 4] {
            let report = analyze_with_threads(&app, threads);
            for dialect in Dialect::ALL {
                let script = fix_script(
                    report.missing.iter().map(|m| &m.constraint),
                    dialect,
                    Some(&app.declared),
                    &app.name,
                );
                let path = golden_dir.join(format!("{}.{dialect}.sql", app.name));
                if bless && threads == 1 {
                    fs::write(&path, &script).unwrap();
                }
                let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
                    panic!(
                        "{}: missing golden {} ({e}); run with CFINDER_BLESS=1 to create it",
                        app.name,
                        path.display()
                    )
                });
                assert_eq!(
                    script, golden,
                    "{} @ {threads} threads / {dialect}: fix script drifted from golden",
                    app.name
                );
            }
        }
    }
}

#[test]
fn thread_count_env_override_is_respected() {
    // `with_threads` must win over the environment; the env var itself is
    // covered by unit tests in cfinder-core to avoid test-order races on
    // the process environment here.
    let profile = cfinder::corpus::profile("wagtail").unwrap();
    let app = cfinder::corpus::generate(&profile, GenOptions::quick());
    let report = analyze_with_threads(&app, 2);
    assert_eq!(report.timings.threads, 2);
    assert!(report.timings.total() >= report.timings.parse);
}
