//! Integration tests for the perf-observability CLI surface: atomic
//! output publication under crash injection, the sampling profiler's
//! `--profile-out` export, and the `cfinder perf` BENCH emitter.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use cfinder::core::ATOMIC_FAULT_ENV;
use cfinder::report::perf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfinder-perf-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_demo(dir: &Path) {
    fs::create_dir_all(dir.join("app")).unwrap();
    fs::write(
        dir.join("app/models.py"),
        "from django.db import models\n\n\nclass Voucher(models.Model):\n    code = models.CharField(max_length=32)\n",
    )
    .unwrap();
    fs::write(
        dir.join("app/views.py"),
        "def redeem(code):\n    if Voucher.objects.filter(code=code).exists():\n        raise ValueError('duplicate voucher')\n    Voucher.objects.create(code=code)\n",
    )
    .unwrap();
}

fn cfinder() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cfinder"))
}

/// All three analysis output flags go through the shared atomic writer:
/// a crash injected between the temp write and the rename must leave no
/// destination file at all on first publication, and the previous
/// contents untouched on re-publication.
#[test]
fn output_flags_survive_mid_write_crash_injection() {
    let dir = temp_dir("crash");
    write_demo(&dir);
    let fix = dir.join("fixes.sql");
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.prom");
    let run = |fault: bool| -> std::process::Output {
        let mut cmd = cfinder();
        cmd.arg(dir.join("app"))
            .arg("--fix-out")
            .arg(&fix)
            .arg("--trace-out")
            .arg(&trace)
            .arg("--metrics-out")
            .arg(&metrics);
        if fault {
            cmd.env(ATOMIC_FAULT_ENV, "crash");
        } else {
            cmd.env_remove(ATOMIC_FAULT_ENV);
        }
        cmd.output().expect("binary runs")
    };

    // Crash on first publication: the run fails and no destination
    // exists — a reader can never observe a torn file.
    let out = run(true);
    assert_ne!(out.status.code(), Some(0), "{out:?}");
    for path in [&fix, &trace, &metrics] {
        assert!(!path.exists(), "{} exists after an injected mid-write crash", path.display());
    }

    // Clean publication, then crash on overwrite: previous contents
    // survive byte-for-byte.
    let out = run(false);
    assert_eq!(out.status.code(), Some(1), "demo app has one missing constraint: {out:?}");
    let before: Vec<Vec<u8>> =
        [&fix, &trace, &metrics].iter().map(|p| fs::read(p).unwrap()).collect();
    assert!(!before[0].is_empty(), "fix script must not be empty");
    let out = run(true);
    assert_ne!(out.status.code(), Some(0), "{out:?}");
    for (path, expected) in [&fix, &trace, &metrics].iter().zip(&before) {
        assert_eq!(&fs::read(path).unwrap(), expected, "{} was torn", path.display());
    }
    let _ = fs::remove_dir_all(&dir);
}

/// `--profile-out` attaches the sampling profiler, writes the
/// flamegraph-collapsed export atomically, and summarizes on stderr.
#[test]
fn profile_out_writes_a_collapsed_export() {
    let dir = temp_dir("profile");
    write_demo(&dir);
    let out_path = dir.join("profile.folded");
    let out = cfinder()
        .arg(dir.join("app"))
        .arg("--profile-out")
        .arg(&out_path)
        .arg("--profile-hz")
        .arg("997")
        .env_remove(ATOMIC_FAULT_ENV)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("profile:"), "no profiler summary on stderr: {stderr}");
    // The demo app analyzes in microseconds, so the sampler may catch
    // zero ticks — but every line that *is* present must be
    // flamegraph-collapsed: "stack count".
    let text = fs::read_to_string(&out_path).expect("collapsed export written");
    for line in text.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("collapsed line has a count");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("collapsed count is numeric");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// `cfinder perf --smoke` emits one schema-valid `BENCH_<stamp>.json`
/// and exits 0; the emitted document gates cleanly against itself.
#[test]
fn perf_smoke_emits_a_schema_valid_bench_document() {
    let dir = temp_dir("bench");
    let out = cfinder()
        .arg("perf")
        .arg("--smoke")
        .arg("--out")
        .arg(&dir)
        .env_remove(ATOMIC_FAULT_ENV)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("BENCH_")))
        .collect();
    assert_eq!(entries.len(), 1, "exactly one BENCH document: {entries:?}");
    let text = fs::read_to_string(&entries[0]).unwrap();
    let doc: serde_json::Value = serde_json::from_str(&text).expect("BENCH is valid JSON");
    perf::validate_bench(&doc).expect("BENCH document is schema-valid");

    // Self-gate: a document can never regress against itself.
    let gated = cfinder()
        .arg("perf")
        .arg("--smoke")
        .arg("--out")
        .arg(&dir)
        .arg("--baseline")
        .arg(&entries[0])
        .arg("--tolerance")
        .arg("99")
        .env_remove(ATOMIC_FAULT_ENV)
        .output()
        .expect("binary runs");
    assert_eq!(gated.status.code(), Some(0), "{gated:?}");
    assert!(String::from_utf8_lossy(&gated.stderr).contains("gate passed"), "{:?}", gated.stderr);
    let _ = fs::remove_dir_all(&dir);
}
