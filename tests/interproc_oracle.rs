//! The inter-procedural differential oracle: for every corpus app, runs
//! with summaries off (the paper configuration) and on (the default) at
//! several thread counts.
//!
//! Off must be byte-identical (`stable_json`) across thread counts and
//! contain no helper-hop provenance at all; on must also be
//! thread-invariant, must be a strict superset of off, every *added*
//! missing constraint must carry a helper hop on each of its detections,
//! all planted helper-wrapped sites must be recovered, and the planted
//! traps (wrong-parameter helper, non-dominating raise) must contribute
//! zero new false positives.

use std::collections::BTreeSet;

use cfinder::core::{AnalysisReport, AppSource, CFinder, CFinderOptions, SourceFile};
use cfinder::corpus::{all_profiles, generate, FpMechanism, GenOptions, Verdict};

const SCALE: GenOptions = GenOptions { loc_scale: 0.01 };

fn to_source(app: &cfinder::corpus::GeneratedApp) -> AppSource {
    AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    )
}

fn analyze(
    source: &AppSource,
    app: &cfinder::corpus::GeneratedApp,
    on: bool,
    threads: usize,
) -> AnalysisReport {
    let options = if on { CFinderOptions::default() } else { CFinderOptions::paper() };
    CFinder::with_options(options).with_threads(threads).analyze(source, &app.declared)
}

fn constraint_set(report: &AnalysisReport) -> BTreeSet<String> {
    report.missing.iter().map(|m| m.constraint.to_string()).collect()
}

#[test]
fn off_is_thread_invariant_and_hop_free() {
    for profile in all_profiles() {
        let app = generate(&profile, SCALE);
        let source = to_source(&app);
        let reference = analyze(&source, &app, false, 1);
        let reference_json = reference.stable_json();
        // The paper configuration never produces a helper hop.
        for m in &reference.missing {
            for d in &m.detections {
                assert!(
                    d.via.is_none(),
                    "{}: {} carries a hop with interproc off",
                    app.name,
                    m.constraint
                );
            }
        }
        // …and never recovers a helper-wrapped site.
        for c in app.truth.interproc_missing.iter() {
            assert!(
                !reference.missing.iter().any(|m| &m.constraint == c),
                "{}: helper-wrapped site {c} visible intra-procedurally",
                app.name
            );
        }
        for threads in [2, 4] {
            let other = analyze(&source, &app, false, threads);
            assert_eq!(
                other.stable_json(),
                reference_json,
                "{}: interproc-off run diverged at {threads} threads",
                app.name
            );
        }
    }
}

#[test]
fn on_is_thread_invariant_and_recovers_planted_sites() {
    for profile in all_profiles() {
        let app = generate(&profile, SCALE);
        let source = to_source(&app);
        let off = analyze(&source, &app, false, 2);
        let on = analyze(&source, &app, true, 1);
        let on_json = on.stable_json();
        for threads in [2, 4] {
            let other = analyze(&source, &app, true, threads);
            assert_eq!(
                other.stable_json(),
                on_json,
                "{}: interproc-on run diverged at {threads} threads",
                app.name
            );
        }

        // Strict superset: everything the paper configuration finds is
        // still found, plus the helper-wrapped sites.
        let off_set = constraint_set(&off);
        let on_set = constraint_set(&on);
        assert!(
            off_set.is_subset(&on_set),
            "{}: interproc on lost detections: {:?}",
            app.name,
            off_set.difference(&on_set).collect::<Vec<_>>()
        );

        // Every planted helper-wrapped site is recovered, and every
        // addition over the off run carries a helper hop on each of its
        // supporting detections.
        for c in app.truth.interproc_missing.iter() {
            assert!(
                on.missing.iter().any(|m| &m.constraint == c),
                "{}: planted helper-wrapped site {c} not recovered",
                app.name
            );
        }
        for m in &on.missing {
            if off_set.contains(&m.constraint.to_string()) {
                continue;
            }
            assert!(
                m.detections.iter().all(|d| d.via.is_some()),
                "{}: added constraint {} has a hop-free detection",
                app.name,
                m.constraint
            );
        }

        // Zero trap hits and zero new false positives of any kind.
        for m in &on.missing {
            match app.truth.classify(&m.constraint) {
                Verdict::FalsePositive(
                    FpMechanism::InterprocWrongParam | FpMechanism::InterprocNonDominating,
                ) => panic!("{}: trap site detected: {}", app.name, m.constraint),
                Verdict::Unplanned => {
                    panic!("{}: unplanned interproc detection: {}", app.name, m.constraint)
                }
                _ => {}
            }
        }
        let fp_count = |r: &AnalysisReport| {
            r.missing
                .iter()
                .filter(|m| matches!(app.truth.classify(&m.constraint), Verdict::FalsePositive(_)))
                .count()
        };
        assert_eq!(fp_count(&on), fp_count(&off), "{}: interproc introduced new FPs", app.name);
    }
}
