//! False-positive resistance: realistic code shapes that superficially
//! resemble the seven patterns but must NOT produce detections under the
//! full analysis.

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::schema::Schema;

const MODELS: &str = r#"
from django.db import models


class Voucher(models.Model):
    code = models.CharField(max_length=32)


class Basket(models.Model):
    status = models.CharField(max_length=16)
    owner_name = models.CharField(max_length=64)
"#;

fn missing(code: &str) -> Vec<String> {
    let app = AppSource::new(
        "neg",
        vec![SourceFile::new("models.py", MODELS), SourceFile::new("views.py", code)],
    );
    let report = CFinder::new().analyze(&app, &Schema::new());
    assert!(report.incidents.is_empty(), "{:?}", report.incidents);
    report.missing.iter().map(|m| m.constraint.to_string()).collect()
}

fn assert_clean(code: &str) {
    let found = missing(code);
    assert!(found.is_empty(), "expected no detections, got {found:?}");
}

#[test]
fn dict_get_is_not_a_model_lookup() {
    assert_clean("def read(cfg):\n    return cfg.get('key')\n");
    assert_clean("def read(cfg):\n    return cfg.settings.get('key', 'default')\n");
}

#[test]
fn list_count_is_not_an_existence_check() {
    // `count()` on an unresolvable receiver has no table to constrain.
    assert_clean(
        "def tally(items, x):\n    if items.count(x) > 0:\n        raise ValueError('x present')\n",
    );
}

#[test]
fn save_on_unrelated_object_is_not_a_pattern() {
    assert_clean("def persist(form):\n    if form.is_valid():\n        form.save()\n");
}

#[test]
fn existence_check_with_unrelated_side_effect() {
    // Check on Voucher, but the branch only logs at info level — no save,
    // no raise, no error log: no uniqueness assumption.
    assert_clean(
        "def peek(code):\n    if Voucher.objects.filter(code=code).exists():\n        logger.info('seen before')\n",
    );
}

#[test]
fn filter_without_branch_context_is_not_u1() {
    assert_clean("def all_active(code):\n    return Voucher.objects.filter(code=code)\n");
}

#[test]
fn pk_lookups_never_imply_constraints() {
    assert_clean("def load(pk):\n    return Voucher.objects.get(pk=pk)\n");
    assert_clean("def load2(vid):\n    return Voucher.objects.get(id=vid)\n");
}

#[test]
fn guarded_invocations_are_clean() {
    assert_clean(
        "def fmt(pk):\n    b = Basket.objects.get(pk=pk)\n    if b.status:\n        return b.status.upper()\n    return ''\n",
    );
    assert_clean(
        "def fmt2(pk):\n    b = Basket.objects.get(pk=pk)\n    return b.status.upper() if b.status else ''\n",
    );
    assert_clean(
        "def fmt3(pk):\n    b = Basket.objects.get(pk=pk)\n    if b.status is None:\n        return ''\n    return b.status.upper()\n",
    );
}

#[test]
fn assigning_non_pk_values_is_not_f1() {
    assert_clean(
        "def rename(pk, name):\n    b = Basket.objects.get(pk=pk)\n    b.owner_name = name\n    b.save()\n",
    );
}

#[test]
fn null_check_on_local_is_not_n2() {
    assert_clean(
        "def f(x):\n    if x is None:\n        raise ValueError('need x')\n    return x\n",
    );
}

#[test]
fn parameters_never_resolve_to_tables() {
    // The analysis is intra-procedural: callers' types are unknown, so no
    // constraint may be invented for a parameter.
    assert_clean(
        "def helper(qs, v):\n    if qs.filter(code=v).exists():\n        raise ValueError('dup')\n",
    );
}

#[test]
fn ambiguous_variables_do_not_resolve() {
    assert_clean(
        "def pick(flag, code):\n    if flag:\n        target = Voucher.objects\n    else:\n        target = Basket.objects\n    if target.filter(code=code).exists():\n        raise ValueError('dup')\n",
    );
}

#[test]
fn str_method_chains_on_literals_are_clean() {
    assert_clean("def slugify(s):\n    return s.strip().lower().replace(' ', '-')\n");
}

#[test]
fn comprehension_uses_are_clean() {
    assert_clean("def codes():\n    return [v.code for v in Voucher.objects.all() if v.code]\n");
}

#[test]
fn reassigned_variable_uses_latest_definition() {
    // `target` is redefined to Basket before the check: only Basket may be
    // constrained, not Voucher.
    let found = missing(
        "def check(status):\n    target = Voucher.objects\n    target = Basket.objects\n    if target.filter(status=status).exists():\n        raise ValueError('dup')\n",
    );
    assert!(found.iter().any(|c| c == "Basket Unique (status)"), "{found:?}");
    assert!(!found.iter().any(|c| c.contains("Voucher")), "{found:?}");
}
