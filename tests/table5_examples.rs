//! The three confirmed missing constraints of Table 5, reproduced from the
//! referenced upstream issues:
//!
//! * `ProductAttr Unique(code, product_class)` — django-oscar PR #3823,
//! * `Attachment Not NULL (realm)` — zulip PR #21470,
//! * `OrderDiscount (offer) Ref Offer (id)` — django-oscar issue #3821.

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::schema::Schema;

fn missing(models: &str, code: &str) -> Vec<String> {
    let app = AppSource::new(
        "table5",
        vec![SourceFile::new("models.py", models), SourceFile::new("views.py", code)],
    );
    let report = CFinder::new().analyze(&app, &Schema::new());
    assert!(report.incidents.is_empty(), "{:?}", report.incidents);
    report.missing.iter().map(|m| m.constraint.to_string()).collect()
}

/// Oscar: "Product attributes with same attribute code for a product class
/// are invalid and invisible to customers" — the composite unique over
/// (code, product_class) surfaces from the attribute-lookup code.
#[test]
fn product_attr_unique_code_per_product_class() {
    let models = r#"
class ProductClass(models.Model):
    name = models.CharField(max_length=128)


class ProductAttribute(models.Model):
    product_class = models.ForeignKey(ProductClass, related_name='attributes', on_delete=models.CASCADE)
    code = models.SlugField(max_length=128)
"#;
    let code = r#"
def add_attribute(product_class_pk, code):
    product_class = ProductClass.objects.get(pk=product_class_pk)
    if product_class.attributes.filter(code=code).exists():
        raise ValueError('attribute code already defined for this product class')
    product_class.attributes.create(code=code)
"#;
    let found = missing(models, code);
    assert!(
        found.iter().any(|c| c == "ProductAttribute Unique (code, product_class_id)"),
        "{found:?}"
    );
}

/// Zulip: "The attachment is not valid when uploaded without a realm
/// (organization). Similar as a data loss to users."
#[test]
fn attachment_not_null_realm() {
    let models = r#"
class Realm(models.Model):
    string_id = models.CharField(max_length=40)


class Attachment(models.Model):
    file_name = models.CharField(max_length=255)
    realm = models.ForeignKey(Realm, null=True, on_delete=models.CASCADE)
"#;
    // The upload path always walks attachment.realm — "Being after that
    // migration has run, there's no reason to keep it nullable".
    let code = r#"
def notify_attachment(pk):
    attachment = Attachment.objects.get(pk=pk)
    return attachment.realm.string_id.lower()
"#;
    let found = missing(models, code);
    assert!(found.iter().any(|c| c == "Attachment Not NULL (realm_id)"), "{found:?}");
}

/// Oscar: "The discount on an order is not valid without linking to an
/// existing offer" — OrderDiscount.offer_id is a plain integer that should
/// reference Offer.
#[test]
fn order_discount_offer_foreign_key() {
    let models = r#"
class ConditionalOffer(models.Model):
    name = models.CharField(max_length=128)


class OrderDiscount(models.Model):
    amount = models.DecimalField(max_digits=12, decimal_places=2)
    offer_id = models.IntegerField(null=True)
"#;
    let code = r#"
def record_discount(discount_pk, offer_pk):
    discount = OrderDiscount.objects.get(pk=discount_pk)
    offer = ConditionalOffer.objects.get(pk=offer_pk)
    discount.offer_id = offer.id
    discount.save()


def offer_of(discount_pk):
    discount = OrderDiscount.objects.get(pk=discount_pk)
    return ConditionalOffer.objects.get(id=discount.offer_id)
"#;
    let found = missing(models, code);
    assert!(
        found.iter().any(|c| c == "OrderDiscount FK (offer_id) ref ConditionalOffer(id)"),
        "{found:?}"
    );
    // Both PA_f1 (assignment) and PA_f2 (lookup) support the same
    // constraint; it is reported once.
    let fk_count = found.iter().filter(|c| c.contains("FK (offer_id)")).count();
    assert_eq!(fk_count, 1);
}
