//! Concurrent cache writers and hardened cache writes.
//!
//! Satellite coverage for the daemon work: (1) two threads and two
//! *processes* populating the same cache directory over the same app
//! must interleave without torn or `Corrupt` entries — a subsequent
//! warm run parses 0 files; (2) a cache directory that stops accepting
//! writes degrades to typed write-skips counted in
//! `cfinder_cache_write_errors_total`, never a failed analysis.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use cfinder::core::{
    AnalysisCache, AppSource, CFinder, CFinderOptions, IncidentKind, Limits, Obs, SourceFile,
};
use cfinder::corpus::{all_profiles, generate, GenOptions};

const SCALE: GenOptions = GenOptions { loc_scale: 0.01 };

fn to_source(app: &cfinder::corpus::GeneratedApp) -> AppSource {
    AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfinder-cache-conc-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn two_threads_same_cache_dir_no_torn_entries_then_fully_warm() {
    let app = generate(&all_profiles()[0], SCALE);
    let source = to_source(&app);
    let reference = CFinder::new().analyze(&source, &app.declared).stable_json();
    let dir = temp_dir("threads");
    let options = CFinderOptions::default();
    let limits = Limits::default();

    // Two analyzers share one cache directory (each with its own handle,
    // like two daemon workers after a registry change) and populate it
    // simultaneously. Racing writers may each lose some writes to the
    // other's rename, but must never produce a torn entry.
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let cache =
                    Arc::new(AnalysisCache::open_with_salt(&dir, &options, &limits, "").unwrap());
                let report = CFinder::new()
                    .with_threads(2)
                    .with_cache(cache)
                    .analyze(&source, &app.declared);
                assert_eq!(report.stable_json(), reference);
            });
        }
    });

    // Whatever interleaving happened, every surviving entry must be
    // intact: the warm run replays all files (0 parsed) and sees no
    // corruption.
    let cache = Arc::new(AnalysisCache::open_with_salt(&dir, &options, &limits, "").unwrap());
    let warm = CFinder::new().with_threads(2).with_cache(cache).analyze(&source, &app.declared);
    assert_eq!(warm.stable_json(), reference);
    assert_eq!(warm.timings.files_parsed, 0, "torn entries forced re-parses: {:?}", warm.timings);
    assert!(
        warm.incidents.iter().all(|i| i.kind != IncidentKind::CacheCorrupt),
        "concurrent writers left corrupt entries: {:?}",
        warm.incidents
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn two_processes_same_cache_dir_no_torn_entries_then_fully_warm() {
    let app = generate(&all_profiles()[0], SCALE);
    let dir = temp_dir("procs");
    let app_dir = temp_dir("procs-app");
    app.write_to(&app_dir).expect("write app tree");

    // Two real `cfinder` processes race the same cache directory. The
    // tmp-file names embed the pid, so cross-process interleavings
    // exercise a different path than the thread test above.
    let spawn = || {
        std::process::Command::new(env!("CARGO_BIN_EXE_cfinder"))
            .arg(&app_dir)
            .arg("--cache-dir")
            .arg(&dir)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn cfinder")
    };
    let (mut a, mut b) = (spawn(), spawn());
    assert!(a.wait().unwrap().code().is_some(), "process crashed");
    assert!(b.wait().unwrap().code().is_some(), "process crashed");

    // A third, in-process warm run over the identical tree: every entry
    // parses, zero files re-parsed. (The CLI runs `Limits::from_env()`
    // under default options — mirror that so the fingerprints match.)
    let cache = Arc::new(
        AnalysisCache::open(&dir, &CFinderOptions::default(), &Limits::from_env()).unwrap(),
    );
    let mut files = Vec::new();
    collect(&app_dir, &app_dir, &mut files);
    files.sort_by(|x, y| x.path.cmp(&y.path));
    let name = app_dir.file_name().unwrap().to_str().unwrap().to_string();
    let source = AppSource::new(name, files);
    let warm = CFinder::new().with_cache(cache).analyze(&source, &cfinder::schema::Schema::new());
    assert_eq!(warm.timings.files_parsed, 0, "torn entries forced re-parses: {:?}", warm.timings);
    assert!(warm.incidents.iter().all(|i| i.kind != IncidentKind::CacheCorrupt));
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&app_dir);
}

fn collect(root: &PathBuf, dir: &PathBuf, out: &mut Vec<SourceFile>) {
    for entry in fs::read_dir(dir).unwrap().flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "py") {
            let text = fs::read_to_string(&path).unwrap();
            let rel = path.strip_prefix(root).unwrap().display().to_string();
            out.push(SourceFile::new(rel, text));
        }
    }
}

/// A cache directory that stops accepting writes mid-session (the
/// stand-in for `ENOSPC` — here the shard path turns into a non-
/// directory, which defeats even a root test runner where permission
/// bits would not) must cost typed write-skips — counted per cause in
/// `cfinder_cache_write_errors_total` — while the analysis itself
/// succeeds with the exact uncached answer.
#[test]
fn unwritable_cache_dir_skips_writes_with_typed_metric_not_a_failure() {
    let app = generate(&all_profiles()[0], SCALE);
    let source = to_source(&app);
    let reference = CFinder::new().analyze(&source, &app.declared).stable_json();
    let dir = temp_dir("unwritable");
    let options = CFinderOptions::default();
    let limits = Limits::default();
    // Open (and probe) the cache while everything is healthy, then yank
    // the shard directory out from under the handle and replace it with
    // a plain file: every subsequent temp-file write fails with ENOTDIR,
    // exactly the shape of a disk filling up mid-daemon as far as
    // `store` is concerned.
    let cache = Arc::new(AnalysisCache::open_with_salt(&dir, &options, &limits, "").unwrap());
    let shard = fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.is_dir())
        .expect("open created the fingerprint shard");
    fs::remove_dir_all(&shard).unwrap();
    fs::write(&shard, b"not a directory").unwrap();

    let obs = Obs::enabled();
    let report =
        CFinder::new().with_cache(cache).with_obs(obs.clone()).analyze(&source, &app.declared);
    assert_eq!(report.stable_json(), reference, "write failures must not change the answer");

    let snapshot = obs.metrics.snapshot();
    let skipped = snapshot.family_total("cfinder_cache_write_errors_total");
    assert!(skipped > 0, "expected typed write-skips on an unwritable shard");
    assert_eq!(
        snapshot.labeled_counter("cfinder_cache_write_errors_total", "tmp-write"),
        skipped,
        "unwritable-shard failures are tmp-write skips"
    );
    assert_eq!(snapshot.counter("cfinder_cache_writes_total"), 0);
    let _ = fs::remove_dir_all(&dir);
}
