//! The invalidation matrix: every ingredient of the cache key — file
//! content, fingerprint salt, analyzer options, resource limits, the
//! deadline (including its environment knob), and the entry format —
//! must invalidate exactly the entries it covers; damaged entries must
//! degrade to typed misses with the answer recomputed, never a panic or
//! a wrong result.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use cfinder::core::detect::DEADLINE_ENV;
use cfinder::core::{
    AnalysisCache, AnalysisReport, AppSource, CFinder, CFinderOptions, IncidentKind, Limits,
    SourceFile,
};
use cfinder::corpus::{all_profiles, generate, GenOptions};

const SCALE: GenOptions = GenOptions { loc_scale: 0.01 };

fn to_source(app: &cfinder::corpus::GeneratedApp) -> AppSource {
    AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfinder-cache-inv-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// All entry files (both parse and detect entries) under a cache root.
fn entry_files(root: &PathBuf) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for shard in fs::read_dir(root).expect("read cache root").flatten() {
        if !shard.path().is_dir() {
            continue;
        }
        for entry in fs::read_dir(shard.path()).expect("read shard").flatten() {
            if entry.path().extension().is_some_and(|x| x == "json") {
                files.push(entry.path());
            }
        }
    }
    files.sort();
    files
}

fn run(
    app: &cfinder::corpus::GeneratedApp,
    source: &AppSource,
    cache: Arc<AnalysisCache>,
) -> AnalysisReport {
    CFinder::new().with_threads(2).with_cache(cache).analyze(source, &app.declared)
}

#[test]
fn fingerprint_salt_options_and_limits_each_invalidate_the_whole_shard() {
    let app = generate(&all_profiles()[0], SCALE);
    let source = to_source(&app);
    let files = app.files.len();
    let dir = temp_dir("fingerprint");

    let options = CFinderOptions::default();
    let limits = Limits::default();
    let base = Arc::new(AnalysisCache::open_with_salt(&dir, &options, &limits, "").unwrap());
    run(&app, &source, base.clone()); // populate
    let warm = run(&app, &source, base.clone());
    assert_eq!((warm.timings.cache_hits, warm.timings.cache_misses), (files, 0));

    // Each variant is a different tool fingerprint: its lookups all miss,
    // and the base shard's entries are untouched (still fully warm after).
    let salted = AnalysisCache::open_with_salt(&dir, &options, &limits, "bumped").unwrap();
    let ablated = AnalysisCache::open_with_salt(
        &dir,
        &CFinderOptions { null_guard_analysis: false, ..options },
        &limits,
        "",
    )
    .unwrap();
    let capped = AnalysisCache::open_with_salt(
        &dir,
        &options,
        &Limits { max_tokens: 777_777, ..limits },
        "",
    )
    .unwrap();
    for (what, variant) in [("salt", salted), ("options", ablated), ("limits", capped)] {
        assert_ne!(variant.fingerprint(), base.fingerprint(), "{what}");
        let cold = run(&app, &source, Arc::new(variant));
        assert_eq!(cold.timings.cache_hits, 0, "{what}: expected a fully cold shard");
        assert_eq!(cold.timings.cache_misses, files, "{what}");
    }
    let still_warm = run(&app, &source, base);
    assert_eq!(
        (still_warm.timings.cache_hits, still_warm.timings.files_parsed),
        (files, 0),
        "foreign fingerprints must not disturb the base shard"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn deadline_env_changes_the_tool_fingerprint() {
    // `Limits::from_env` is what the CLI feeds the cache, so the
    // environment knob must round-trip into a distinct fingerprint.
    // (The option-carried assertions live in this same #[test] because
    // they mutate the same environment variable — separate tests would
    // race under the parallel test runner.)
    let options = CFinderOptions::default();
    let dir = temp_dir("deadline");
    std::env::remove_var(DEADLINE_ENV);
    let without = AnalysisCache::open_with_salt(&dir, &options, &Limits::from_env(), "").unwrap();
    std::env::set_var(DEADLINE_ENV, "120000");
    let with = AnalysisCache::open_with_salt(&dir, &options, &Limits::from_env(), "").unwrap();
    assert_ne!(without.fingerprint(), with.fingerprint());

    // Invalidation-matrix row for the first-class option: a deadline
    // carried on `CFinderOptions::deadline_ms` and the same deadline
    // carried by the environment-fed `Limits` fingerprint *identically*
    // — a daemon request bringing its own budget shares the shard an
    // env-configured CLI run populated.
    std::env::remove_var(DEADLINE_ENV);
    let via_option = AnalysisCache::open_with_salt(
        &dir,
        &CFinderOptions { deadline_ms: Some(120_000), ..options },
        &Limits::from_env(),
        "",
    )
    .unwrap();
    assert_eq!(via_option.fingerprint(), with.fingerprint());

    // An explicit option overrides a conflicting env deadline...
    std::env::set_var(DEADLINE_ENV, "5");
    let option_wins = AnalysisCache::open_with_salt(
        &dir,
        &CFinderOptions { deadline_ms: Some(120_000), ..options },
        &Limits::from_env(),
        "",
    )
    .unwrap();
    assert_eq!(option_wins.fingerprint(), with.fingerprint());
    // ...including `Some(0)`, which means "explicitly no deadline" and
    // must land in the no-deadline shard, not a third one.
    let zero_disables = AnalysisCache::open_with_salt(
        &dir,
        &CFinderOptions { deadline_ms: Some(0), ..options },
        &Limits::from_env(),
        "",
    )
    .unwrap();
    std::env::remove_var(DEADLINE_ENV);
    assert_eq!(zero_disables.fingerprint(), without.fingerprint());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn damaged_entries_are_typed_misses_never_panics_or_wrong_results() {
    let app = generate(&all_profiles()[0], SCALE);
    let source = to_source(&app);
    let reference = CFinder::new().analyze(&source, &app.declared).stable_json();
    let options = CFinderOptions::default();
    let limits = Limits::default();

    // Three damage modes: truncation, non-JSON garbage, and a stale
    // format version (valid JSON claiming a future entry format).
    for (mode, damage) in [
        ("truncated", "{\"format\""),
        ("garbage", "\u{0}\u{1}not json at all"),
        ("future-format", "{\"format\":999,\"path\":\"x\",\"content_hash\":\"y\"}"),
    ] {
        let dir = temp_dir(&format!("damage-{mode}"));
        let cache = Arc::new(AnalysisCache::open_with_salt(&dir, &options, &limits, "").unwrap());
        run(&app, &source, cache.clone()); // populate

        let entries = entry_files(&dir);
        assert!(!entries.is_empty());
        for file in &entries {
            fs::write(file, damage).unwrap();
        }
        let recovered = run(&app, &source, cache.clone());
        assert_eq!(
            recovered.stable_json(),
            reference,
            "{mode}: damaged entries changed the answer"
        );
        assert_eq!(recovered.timings.cache_hits, 0, "{mode}");
        assert!(
            recovered.incidents.iter().any(|i| i.kind == IncidentKind::CacheCorrupt),
            "{mode}: expected typed cache-corruption incidents"
        );
        // The incidents are diagnostics, not coverage events: the stable
        // report treats the run as clean.
        assert_eq!(recovered.coverage().percent_clean(), 100.0, "{mode}");

        // The recomputation healed the cache: fully warm again.
        let healed = run(&app, &source, cache);
        assert_eq!(healed.stable_json(), reference, "{mode}");
        assert_eq!(healed.timings.files_parsed, 0, "{mode}: recompute did not heal the cache");
        assert!(healed.incidents.iter().all(|i| i.kind != IncidentKind::CacheCorrupt), "{mode}");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn damaging_one_entry_leaves_every_other_entry_warm() {
    let app = generate(&all_profiles()[0], SCALE);
    let source = to_source(&app);
    let reference = CFinder::new().analyze(&source, &app.declared).stable_json();
    let dir = temp_dir("single");
    let cache = Arc::new(
        AnalysisCache::open_with_salt(&dir, &CFinderOptions::default(), &Limits::default(), "")
            .unwrap(),
    );
    run(&app, &source, cache.clone()); // populate

    let entries = entry_files(&dir);
    fs::write(&entries[entries.len() / 2], "{\"truncated").unwrap();
    let recovered = run(&app, &source, cache);
    assert_eq!(recovered.stable_json(), reference);
    assert_eq!(
        recovered.incidents.iter().filter(|i| i.kind == IncidentKind::CacheCorrupt).count(),
        1,
        "exactly the damaged entry should surface"
    );
    // The damaged file was either a parse entry (a pass-0 miss) or a
    // detect entry (a pass-0 hit whose detection re-ran); both cost at
    // most one re-parse.
    assert!(recovered.timings.files_parsed <= 1, "{:?}", recovered.timings);
    let _ = fs::remove_dir_all(&dir);
}
