//! The invalidation matrix: every ingredient of the cache key — file
//! content, fingerprint salt, analyzer options, resource limits, the
//! deadline (including its environment knob), and the entry format —
//! must invalidate exactly the entries it covers; damaged entries must
//! degrade to typed misses with the answer recomputed, never a panic or
//! a wrong result.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use cfinder::core::detect::DEADLINE_ENV;
use cfinder::core::{
    AnalysisCache, AnalysisReport, AppSource, CFinder, CFinderOptions, IncidentKind, Limits,
    SourceFile,
};
use cfinder::corpus::{all_profiles, generate, GenOptions};

const SCALE: GenOptions = GenOptions { loc_scale: 0.01 };

fn to_source(app: &cfinder::corpus::GeneratedApp) -> AppSource {
    AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfinder-cache-inv-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// All entry files (both parse and detect entries) under a cache root.
fn entry_files(root: &PathBuf) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for shard in fs::read_dir(root).expect("read cache root").flatten() {
        if !shard.path().is_dir() {
            continue;
        }
        for entry in fs::read_dir(shard.path()).expect("read shard").flatten() {
            if entry.path().extension().is_some_and(|x| x == "json") {
                files.push(entry.path());
            }
        }
    }
    files.sort();
    files
}

fn run(
    app: &cfinder::corpus::GeneratedApp,
    source: &AppSource,
    cache: Arc<AnalysisCache>,
) -> AnalysisReport {
    CFinder::new().with_threads(2).with_cache(cache).analyze(source, &app.declared)
}

#[test]
fn fingerprint_salt_options_and_limits_each_invalidate_the_whole_shard() {
    let app = generate(&all_profiles()[0], SCALE);
    let source = to_source(&app);
    let files = app.files.len();
    let dir = temp_dir("fingerprint");

    let options = CFinderOptions::default();
    let limits = Limits::default();
    let base = Arc::new(AnalysisCache::open_with_salt(&dir, &options, &limits, "").unwrap());
    run(&app, &source, base.clone()); // populate
    let warm = run(&app, &source, base.clone());
    assert_eq!((warm.timings.cache_hits, warm.timings.cache_misses), (files, 0));

    // Each variant is a different tool fingerprint: its lookups all miss,
    // and the base shard's entries are untouched (still fully warm after).
    let salted = AnalysisCache::open_with_salt(&dir, &options, &limits, "bumped").unwrap();
    let ablated = AnalysisCache::open_with_salt(
        &dir,
        &CFinderOptions { null_guard_analysis: false, ..options },
        &limits,
        "",
    )
    .unwrap();
    let capped = AnalysisCache::open_with_salt(
        &dir,
        &options,
        &Limits { max_tokens: 777_777, ..limits },
        "",
    )
    .unwrap();
    for (what, variant) in [("salt", salted), ("options", ablated), ("limits", capped)] {
        assert_ne!(variant.fingerprint(), base.fingerprint(), "{what}");
        let cold = run(&app, &source, Arc::new(variant));
        assert_eq!(cold.timings.cache_hits, 0, "{what}: expected a fully cold shard");
        assert_eq!(cold.timings.cache_misses, files, "{what}");
    }
    let still_warm = run(&app, &source, base);
    assert_eq!(
        (still_warm.timings.cache_hits, still_warm.timings.files_parsed),
        (files, 0),
        "foreign fingerprints must not disturb the base shard"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Flipping `CFinderOptions::interprocedural` changes the tool
/// fingerprint: the summaries-off configuration lands in its own shard —
/// fully cold on first contact — and never disturbs the summaries-on
/// shard a default run populated (and vice versa). The cached
/// intra-procedural answer matches the uncached one byte for byte, so a
/// `--ablate interproc` run can never replay helper-hop detections out of
/// a summaries-on shard.
#[test]
fn interprocedural_option_invalidates_the_whole_shard() {
    let app = generate(&all_profiles()[0], SCALE);
    let source = to_source(&app);
    let files = app.files.len();
    let dir = temp_dir("interproc-flip");
    let options = CFinderOptions::default();
    let limits = Limits::default();

    let on = Arc::new(AnalysisCache::open_with_salt(&dir, &options, &limits, "").unwrap());
    run(&app, &source, on.clone()); // populate
    let warm = run(&app, &source, on.clone());
    assert_eq!((warm.timings.cache_hits, warm.timings.cache_misses), (files, 0));

    let off_options = CFinderOptions { interprocedural: false, ..options };
    let off = AnalysisCache::open_with_salt(&dir, &off_options, &limits, "").unwrap();
    assert_ne!(off.fingerprint(), on.fingerprint(), "interprocedural must be fingerprinted");
    assert_eq!(
        off.fingerprint(),
        AnalysisCache::open_with_salt(&dir, &CFinderOptions::paper(), &limits, "")
            .unwrap()
            .fingerprint(),
        "the paper configuration differs from the default only in `interprocedural`"
    );

    let reference = CFinder::with_options(off_options).analyze(&source, &app.declared);
    let cold = CFinder::with_options(off_options)
        .with_threads(2)
        .with_cache(Arc::new(off))
        .analyze(&source, &app.declared);
    assert_eq!(cold.timings.cache_hits, 0, "expected a fully cold shard after the flip");
    assert_eq!(cold.timings.cache_misses, files);
    assert_eq!(
        cold.stable_json(),
        reference.stable_json(),
        "cached intra-procedural run diverged from the uncached one"
    );

    let still_warm = run(&app, &source, on);
    assert_eq!(
        (still_warm.timings.cache_hits, still_warm.timings.files_parsed),
        (files, 0),
        "the summaries-off shard must not disturb the summaries-on shard"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Editing only a helper's *body* invalidates its callers' detect
/// entries: the edit costs exactly one parse miss (the helper file), but
/// the summary table — and with it the detect-context hash — changes, so
/// every caller's detections are recomputed under the new summaries
/// instead of replayed stale. A follow-up run over the edited tree is
/// fully warm again, and reverting the edit replays the *original*
/// detect entries (they are content-addressed by context, not
/// invalidated in place) without re-parsing anything.
#[test]
fn editing_a_helper_body_invalidates_callers_detect_entries() {
    let clean_app = generate(&all_profiles()[0], SCALE);
    let clean_source = to_source(&clean_app);
    let files = clean_app.files.len();
    let dir = temp_dir("helper-edit");
    let cache = Arc::new(
        AnalysisCache::open_with_salt(&dir, &CFinderOptions::default(), &Limits::default(), "")
            .unwrap(),
    );

    let clean = run(&clean_app, &clean_source, cache.clone()); // populate
    let warm = run(&clean_app, &clean_source, cache.clone());
    assert_eq!((warm.timings.cache_hits, warm.timings.files_parsed), (files, 0));

    // Neuter the first helper's enforcement: its dominating raise becomes
    // a dominating return, so the helper loses its summary and its call
    // sites degrade to the intra-procedural result. Only `validators.py`
    // changes on disk.
    let mut edited_app = clean_app.clone();
    let helper_file =
        edited_app.files.iter_mut().find(|f| f.path == "validators.py").expect("helper file");
    assert!(helper_file.text.contains("raise ValueError("));
    helper_file.text = helper_file.text.replacen("raise ValueError(", "return (", 1);
    let edited_source = to_source(&edited_app);
    let reference = CFinder::new().analyze(&edited_source, &edited_app.declared).stable_json();
    assert_ne!(
        reference,
        clean.stable_json(),
        "the helper edit must change the analysis result, or this test is vacuous"
    );

    let edited = run(&edited_app, &edited_source, cache.clone());
    assert_eq!(
        (edited.timings.cache_hits, edited.timings.cache_misses),
        (files - 1, 1),
        "only the helper file's parse entry may miss"
    );
    assert_eq!(
        edited.stable_json(),
        reference,
        "callers replayed stale detect entries after a helper-body edit"
    );
    assert!(
        edited.missing.len() < clean.missing.len(),
        "the neutered helper's call sites must degrade to intra-procedural results"
    );

    // The recomputation healed the shard for the edited tree…
    let healed = run(&edited_app, &edited_source, cache.clone());
    assert_eq!((healed.timings.cache_hits, healed.timings.files_parsed), (files, 0));
    assert_eq!(healed.stable_json(), reference);

    // …and the original tree's entries are still there: reverting the
    // edit replays them byte for byte with zero re-parses.
    let reverted = run(&clean_app, &clean_source, cache);
    assert_eq!((reverted.timings.cache_hits, reverted.timings.files_parsed), (files, 0));
    assert_eq!(reverted.stable_json(), clean.stable_json());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn deadline_env_changes_the_tool_fingerprint() {
    // `Limits::from_env` is what the CLI feeds the cache, so the
    // environment knob must round-trip into a distinct fingerprint.
    // (The option-carried assertions live in this same #[test] because
    // they mutate the same environment variable — separate tests would
    // race under the parallel test runner.)
    let options = CFinderOptions::default();
    let dir = temp_dir("deadline");
    std::env::remove_var(DEADLINE_ENV);
    let without = AnalysisCache::open_with_salt(&dir, &options, &Limits::from_env(), "").unwrap();
    std::env::set_var(DEADLINE_ENV, "120000");
    let with = AnalysisCache::open_with_salt(&dir, &options, &Limits::from_env(), "").unwrap();
    assert_ne!(without.fingerprint(), with.fingerprint());

    // Invalidation-matrix row for the first-class option: a deadline
    // carried on `CFinderOptions::deadline_ms` and the same deadline
    // carried by the environment-fed `Limits` fingerprint *identically*
    // — a daemon request bringing its own budget shares the shard an
    // env-configured CLI run populated.
    std::env::remove_var(DEADLINE_ENV);
    let via_option = AnalysisCache::open_with_salt(
        &dir,
        &CFinderOptions { deadline_ms: Some(120_000), ..options },
        &Limits::from_env(),
        "",
    )
    .unwrap();
    assert_eq!(via_option.fingerprint(), with.fingerprint());

    // An explicit option overrides a conflicting env deadline...
    std::env::set_var(DEADLINE_ENV, "5");
    let option_wins = AnalysisCache::open_with_salt(
        &dir,
        &CFinderOptions { deadline_ms: Some(120_000), ..options },
        &Limits::from_env(),
        "",
    )
    .unwrap();
    assert_eq!(option_wins.fingerprint(), with.fingerprint());
    // ...including `Some(0)`, which means "explicitly no deadline" and
    // must land in the no-deadline shard, not a third one.
    let zero_disables = AnalysisCache::open_with_salt(
        &dir,
        &CFinderOptions { deadline_ms: Some(0), ..options },
        &Limits::from_env(),
        "",
    )
    .unwrap();
    std::env::remove_var(DEADLINE_ENV);
    assert_eq!(zero_disables.fingerprint(), without.fingerprint());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn damaged_entries_are_typed_misses_never_panics_or_wrong_results() {
    let app = generate(&all_profiles()[0], SCALE);
    let source = to_source(&app);
    let reference = CFinder::new().analyze(&source, &app.declared).stable_json();
    let options = CFinderOptions::default();
    let limits = Limits::default();

    // Three damage modes: truncation, non-JSON garbage, and a stale
    // format version (valid JSON claiming a future entry format).
    for (mode, damage) in [
        ("truncated", "{\"format\""),
        ("garbage", "\u{0}\u{1}not json at all"),
        ("future-format", "{\"format\":999,\"path\":\"x\",\"content_hash\":\"y\"}"),
    ] {
        let dir = temp_dir(&format!("damage-{mode}"));
        let cache = Arc::new(AnalysisCache::open_with_salt(&dir, &options, &limits, "").unwrap());
        run(&app, &source, cache.clone()); // populate

        let entries = entry_files(&dir);
        assert!(!entries.is_empty());
        for file in &entries {
            fs::write(file, damage).unwrap();
        }
        let recovered = run(&app, &source, cache.clone());
        assert_eq!(
            recovered.stable_json(),
            reference,
            "{mode}: damaged entries changed the answer"
        );
        assert_eq!(recovered.timings.cache_hits, 0, "{mode}");
        assert!(
            recovered.incidents.iter().any(|i| i.kind == IncidentKind::CacheCorrupt),
            "{mode}: expected typed cache-corruption incidents"
        );
        // The incidents are diagnostics, not coverage events: the stable
        // report treats the run as clean.
        assert_eq!(recovered.coverage().percent_clean(), 100.0, "{mode}");

        // The recomputation healed the cache: fully warm again.
        let healed = run(&app, &source, cache);
        assert_eq!(healed.stable_json(), reference, "{mode}");
        assert_eq!(healed.timings.files_parsed, 0, "{mode}: recompute did not heal the cache");
        assert!(healed.incidents.iter().all(|i| i.kind != IncidentKind::CacheCorrupt), "{mode}");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn damaging_one_entry_leaves_every_other_entry_warm() {
    let app = generate(&all_profiles()[0], SCALE);
    let source = to_source(&app);
    let reference = CFinder::new().analyze(&source, &app.declared).stable_json();
    let dir = temp_dir("single");
    let cache = Arc::new(
        AnalysisCache::open_with_salt(&dir, &CFinderOptions::default(), &Limits::default(), "")
            .unwrap(),
    );
    run(&app, &source, cache.clone()); // populate

    let entries = entry_files(&dir);
    fs::write(&entries[entries.len() / 2], "{\"truncated").unwrap();
    let recovered = run(&app, &source, cache);
    assert_eq!(recovered.stable_json(), reference);
    assert_eq!(
        recovered.incidents.iter().filter(|i| i.kind == IncidentKind::CacheCorrupt).count(),
        1,
        "exactly the damaged entry should surface"
    );
    // The damaged file was either a parse entry (a pass-0 miss) or a
    // detect entry (a pass-0 hit whose detection re-ran); both cost at
    // most one re-parse.
    assert!(recovered.timings.files_parsed <= 1, "{:?}", recovered.timings);
    let _ = fs::remove_dir_all(&dir);
}
