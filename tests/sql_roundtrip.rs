//! The round-trip parser oracle at corpus scale: every constraint CFinder
//! reports on every corpus app must survive `parse(emit(c, dialect))` in
//! all three dialects, and applying the emitted fix script to the emitted
//! schema dump must reach a fixed point — a re-analysis against the
//! re-parsed schema reports zero missing constraints, and the result is
//! enforceable in minidb.

use cfinder::core::{AnalysisReport, AppSource, CFinder, SourceFile};
use cfinder::corpus::{GenOptions, GeneratedApp};
use cfinder::minidb::Database;
use cfinder::sql::{constraint_ddl, fix_script, parse_sql, schema_to_sql, Dialect};

fn analyze(app: &GeneratedApp) -> AnalysisReport {
    let source = AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    );
    CFinder::new().analyze(&source, &app.declared)
}

/// Oracle half 1: for every constraint in every corpus app's report
/// (inferred, missing, and already-covered alike), `parse(emit(c, d))`
/// recovers a semantically identical constraint in every dialect.
#[test]
fn every_reported_constraint_round_trips_in_every_dialect() {
    for profile in cfinder::corpus::all_profiles() {
        let app = cfinder::corpus::generate(&profile, GenOptions::quick());
        let report = analyze(&app);
        let mut checked = 0usize;
        for c in report
            .inferred
            .iter()
            .chain(report.missing.iter().map(|m| &m.constraint))
            .chain(report.existing_covered.iter())
        {
            for d in Dialect::ALL {
                let sql = constraint_ddl(c, d, Some(&app.declared));
                let parsed = parse_sql(&sql);
                assert!(
                    parsed.errors.is_empty(),
                    "{}/{d}: {sql}\nerrors: {:?}",
                    app.name,
                    parsed.errors
                );
                assert!(
                    parsed.constraint_set().contains(c),
                    "{}/{d}: {sql}\nparsed: {:?}",
                    app.name,
                    parsed.constraint_set()
                );
            }
            checked += 1;
        }
        assert!(checked > 0, "{}: report had no constraints to check", app.name);
    }
}

/// Oracle half 2 (fixed point): emit the declared schema as a dump, append
/// the fix script for the missing constraints, re-parse the combination,
/// and re-analyze — every constraint the declared schema can host must be
/// resolved, and minidb must accept the re-parsed schema for live
/// enforcement. Constraints on tables the schema doesn't have (inferences
/// against abstract models) are un-appliable by definition; they must
/// surface as typed `Unsupported` ingestion warnings, never silently.
#[test]
fn schema_dump_plus_fix_script_reaches_a_fixed_point() {
    for profile in cfinder::corpus::all_profiles() {
        let app = cfinder::corpus::generate(&profile, GenOptions::quick());
        let report = analyze(&app);
        for d in Dialect::ALL {
            let mut dump = schema_to_sql(&app.declared, d);
            dump.push('\n');
            dump.push_str(&fix_script(
                report.missing.iter().map(|m| &m.constraint),
                d,
                Some(&app.declared),
                &app.name,
            ));

            let parsed = parse_sql(&dump);
            assert!(
                parsed.errors.is_empty(),
                "{}/{d}: dump does not re-parse cleanly: {:?}",
                app.name,
                parsed.errors
            );
            let (patched, warnings) = parsed.into_schema();
            // Every ingestion warning must be a typed drop of a constraint
            // the declared schema cannot host — anything else is a real
            // round-trip failure.
            for w in &warnings {
                assert!(
                    w.kind == cfinder::sql::SqlErrorKind::Unsupported
                        && w.message.starts_with("dropped constraint"),
                    "{}/{d}: unexpected ingestion warning: {w}",
                    app.name
                );
            }

            let source = AppSource::new(
                app.name.clone(),
                app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
            );
            let fixed = CFinder::new().analyze(&source, &patched);
            for m in &fixed.missing {
                assert!(
                    app.declared.table(m.constraint.table()).is_none(),
                    "{}/{d}: appliable constraint still missing after fixes: {}",
                    app.name,
                    m.constraint
                );
            }

            // The pipeline closes executably: the re-parsed, patched schema
            // loads into minidb with all constraints live.
            let db = Database::from_schema(&patched).unwrap_or_else(|e| {
                panic!("{}/{d}: minidb rejected patched schema: {e}", app.name)
            });
            assert_eq!(db.table_names().len(), patched.table_count(), "{}/{d}", app.name);
        }
    }
}
