//! Integration tests for the `cfinder` CLI binary.

use std::fs;
use std::process::Command;

fn write_demo(dir: &std::path::Path) {
    fs::create_dir_all(dir.join("app")).unwrap();
    fs::write(
        dir.join("app/models.py"),
        "from django.db import models\n\n\nclass Voucher(models.Model):\n    code = models.CharField(max_length=32)\n",
    )
    .unwrap();
    fs::write(
        dir.join("app/views.py"),
        "def redeem(code):\n    if Voucher.objects.filter(code=code).exists():\n        raise ValueError('duplicate voucher')\n    Voucher.objects.create(code=code)\n",
    )
    .unwrap();
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cfinder-cli-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn reports_missing_constraint_and_exits_one() {
    let dir = temp_dir("basic");
    write_demo(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Voucher Unique (code)"), "{stdout}");
    assert!(stdout.contains("PA_u1 at views.py:2"), "{stdout}");
}

#[test]
fn json_output_is_parseable() {
    let dir = temp_dir("json");
    write_demo(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--json")
        .output()
        .expect("binary runs");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("stdout is valid JSON");
    assert_eq!(v["missing"].as_array().unwrap().len(), 1);
    assert!(v["loc"].as_u64().unwrap() > 0);
}

#[test]
fn declared_schema_suppresses_report_and_exits_zero() {
    use cfinder::schema::{Column, ColumnType, Constraint, Schema, Table};
    let dir = temp_dir("schema");
    write_demo(&dir);
    let mut schema = Schema::new();
    schema
        .add_table(Table::new("Voucher").with_column(Column::new("code", ColumnType::VarChar(32))));
    schema.add_constraint(Constraint::unique("Voucher", ["code"])).unwrap();
    fs::write(dir.join("schema.json"), schema.to_json()).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--schema")
        .arg(dir.join("schema.json"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no missing database constraints"), "{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder")).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg("/nonexistent-dir-xyz")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn ablate_flag_changes_results() {
    let dir = temp_dir("ablate");
    fs::create_dir_all(dir.join("app")).unwrap();
    fs::write(
        dir.join("app/code.py"),
        "class Voucher(models.Model):\n    code = models.CharField(max_length=32)\n\n\ndef show(pk):\n    v = Voucher.objects.get(pk=pk)\n    if v.code is not None:\n        return v.code.strip()\n    return ''\n",
    )
    .unwrap();
    // Guarded invocation: clean under the full analysis…
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // …but flagged with the null-guard ablation.
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--ablate")
        .arg("null-guard")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("Not NULL (code)"));
}

fn write_demo_with_broken_file(dir: &std::path::Path) {
    write_demo(dir);
    // A salvageable statement plus a broken one: recovery degrades the
    // file (recovered-syntax) instead of dropping it outright.
    fs::write(dir.join("app/broken.py"), "salvaged = 1\ndef broken 123:\n    pass\n").unwrap();
}

#[test]
fn incidents_are_warnings_by_default_but_fail_strict_with_exit_three() {
    let dir = temp_dir("strict");
    write_demo_with_broken_file(&dir);
    // Default: the broken file degrades coverage but not the exit code.
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "missing constraint still drives the exit: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning: [recovered-syntax] broken.py"), "{stderr}");
    assert!(stderr.contains("coverage:"), "{stderr}");
    // --strict: any incident wins over the missing-constraint exit code.
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--strict")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    // --strict on a clean tree is inert.
    fs::remove_file(dir.join("app/broken.py")).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--strict")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn json_reports_incidents_and_coverage() {
    let dir = temp_dir("json-incidents");
    write_demo_with_broken_file(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--json")
        .output()
        .expect("binary runs");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    let incidents = v["incidents"].as_array().unwrap();
    assert!(!incidents.is_empty());
    assert_eq!(incidents[0]["kind"].as_str(), Some("RecoveredSyntax"));
    assert_eq!(incidents[0]["file"].as_str(), Some("broken.py"));
    assert_eq!(v["coverage"]["files_total"].as_u64(), Some(3));
    assert_eq!(v["coverage"]["files_degraded"].as_u64(), Some(1));
}

#[test]
fn max_file_bytes_flag_drops_oversized_files() {
    let dir = temp_dir("maxbytes");
    write_demo(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--max-file-bytes")
        .arg("60")
        .arg("--json")
        .output()
        .expect("binary runs");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    let incidents = v["incidents"].as_array().unwrap();
    assert!(
        incidents.iter().any(|i| i["kind"].as_str() == Some("FileTooLarge")),
        "a demo file exceeds 60 bytes: {incidents:?}"
    );
    // Bad values are usage errors.
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--max-file-bytes")
        .arg("lots")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cache_dir_makes_second_run_warm_with_identical_results() {
    let dir = temp_dir("cache-warm");
    write_demo_with_broken_file(&dir);
    let cache = dir.join("cache");
    let run = || {
        Command::new(env!("CARGO_BIN_EXE_cfinder"))
            .arg(dir.join("app"))
            .arg("--cache-dir")
            .arg(&cache)
            .arg("--json")
            .arg("--timings")
            .output()
            .expect("binary runs")
    };
    let cold = run();
    let warm = run();
    assert_eq!(cold.status.code(), warm.status.code());

    let cold_v: serde_json::Value = serde_json::from_slice(&cold.stdout).expect("valid JSON");
    let warm_v: serde_json::Value = serde_json::from_slice(&warm.stdout).expect("valid JSON");
    let semantic = |v: &serde_json::Value| -> Vec<(String, serde_json::Value)> {
        v.as_map()
            .unwrap()
            .iter()
            .filter(|(k, _)| k != "timings" && k != "analysis_seconds")
            .cloned()
            .collect()
    };
    assert_eq!(
        format!("{:?}", semantic(&cold_v)),
        format!("{:?}", semantic(&warm_v)),
        "cached runs must agree on everything but timings"
    );
    let cold_t = cold_v.get("timings").unwrap();
    let warm_t = warm_v.get("timings").unwrap();

    assert_eq!(cold_t["cache_hits"].as_u64(), Some(0));
    assert!(cold_t["cache_misses"].as_u64().unwrap() > 0);
    assert!(cold_t["files_parsed"].as_u64().unwrap() > 0);
    assert_eq!(warm_t["cache_misses"].as_u64(), Some(0));
    assert_eq!(warm_t["files_parsed"].as_u64(), Some(0), "warm run must parse nothing");
}

#[test]
fn unusable_cache_dir_is_a_usage_error() {
    let dir = temp_dir("cache-bad");
    write_demo(&dir);
    // A plain file where the cache directory should be.
    let occupied = dir.join("occupied");
    fs::write(&occupied, "not a directory").unwrap();
    for bad in [occupied.clone(), occupied.join("nested")] {
        let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
            .arg(dir.join("app"))
            .arg("--cache-dir")
            .arg(&bad)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("cache dir"), "{stderr}");
    }
    // A missing value is a usage error too.
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--cache-dir")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn no_cache_flag_overrides_the_env_default() {
    let dir = temp_dir("cache-nocache");
    write_demo(&dir);
    let cache = dir.join("cache");
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--no-cache")
        .env("CFINDER_CACHE_DIR", &cache)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(!cache.exists(), "--no-cache must not touch the directory");
}

#[test]
fn cache_subcommand_reports_and_clears() {
    let dir = temp_dir("cache-subcmd");
    write_demo(&dir);
    let cache = dir.join("cache");
    let analyzed = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--cache-dir")
        .arg(&cache)
        .output()
        .expect("binary runs");
    assert_eq!(analyzed.status.code(), Some(1), "{analyzed:?}");

    let stats = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg("cache")
        .arg("stats")
        .arg(&cache)
        .output()
        .expect("binary runs");
    assert_eq!(stats.status.code(), Some(0), "{stats:?}");
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("entries"), "{text}");
    assert!(!text.contains("0 entries"), "analysis should have populated the cache: {text}");

    let cleared = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg("cache")
        .arg("clear")
        .arg(&cache)
        .output()
        .expect("binary runs");
    assert_eq!(cleared.status.code(), Some(0), "{cleared:?}");
    let stats = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg("cache")
        .arg("stats")
        .arg(&cache)
        .output()
        .expect("binary runs");
    assert!(String::from_utf8_lossy(&stats.stdout).contains("0 entries"));

    // Usage errors: missing action, unknown action, missing directory.
    for args in [vec!["cache"], vec!["cache", "defrag", "x"], vec!["cache", "stats"]] {
        let out =
            Command::new(env!("CARGO_BIN_EXE_cfinder")).args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
}

#[test]
fn schema_sql_dump_suppresses_report_like_the_json_schema() {
    let dir = temp_dir("schema-sql");
    write_demo(&dir);
    fs::write(
        dir.join("schema.sql"),
        "CREATE TABLE \"Voucher\" (\n    \"id\" bigint NOT NULL,\n    \"code\" varchar(32),\n    PRIMARY KEY (\"id\")\n);\nALTER TABLE \"Voucher\" ADD CONSTRAINT \"uq_Voucher_code\" UNIQUE (\"code\");\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--schema-sql")
        .arg(dir.join("schema.sql"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("no missing database constraints"));
}

#[test]
fn missing_schema_sql_file_is_a_usage_error() {
    let dir = temp_dir("schema-sql-missing");
    write_demo(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--schema-sql")
        .arg(dir.join("nonexistent.sql"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nonexistent.sql"), "{stderr}");
    // A missing value is a usage error too.
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--schema-sql")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_dialect_is_a_usage_error() {
    let dir = temp_dir("dialect-bad");
    write_demo(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--dialect")
        .arg("oracle")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown dialect"), "{stderr}");
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--dialect")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

/// The CLI fixed-point check: `--fix-out` emits a remediation script, and
/// feeding the table definitions plus that script back through
/// `--schema-sql` reports zero missing constraints (exit 0).
#[test]
fn fix_out_script_closes_the_loop_through_schema_sql() {
    let dir = temp_dir("fix-out");
    write_demo(&dir);
    let fixes = dir.join("fixes.sql");
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--dialect")
        .arg("mysql")
        .arg("--fix-out")
        .arg(&fixes)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let script = fs::read_to_string(&fixes).expect("fix script written");
    assert!(script.starts_with("-- fixes.mysql.sql"), "{script}");
    assert!(script.contains("ALTER TABLE `Voucher` ADD CONSTRAINT"), "{script}");
    // The human-readable report uses the same dialect for its fix lines.
    assert!(String::from_utf8_lossy(&out.stdout).contains("fix: ALTER TABLE `Voucher`"));

    // Table definition + emitted fixes = a schema the analyzer calls clean.
    let mut dump = String::from(
        "CREATE TABLE `Voucher` (\n    `id` BIGINT NOT NULL,\n    `code` VARCHAR(32),\n    PRIMARY KEY (`id`)\n);\n",
    );
    dump.push_str(&script);
    fs::write(dir.join("schema.sql"), dump).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--schema-sql")
        .arg(dir.join("schema.sql"))
        .arg("--dialect")
        .arg("mysql")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "fixed point not reached: {out:?}");
}

#[test]
fn cli_analyzes_an_exported_corpus_app() {
    use cfinder::corpus::{generate, profile, GenOptions};
    let dir = temp_dir("corpus");
    let app = generate(&profile("wagtail").unwrap(), GenOptions::quick());
    app.write_to(&dir).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("src"))
        .arg("--schema")
        .arg(dir.join("schema.json"))
        .arg("--json")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "missing constraints exist: {out:?}");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    // Wagtail's Table 4 row (10), its CHECK/DEFAULT extension sites (2),
    // and its helper-wrapped sites (2) — the CLI default has summaries on.
    assert_eq!(v["missing"].as_array().unwrap().len(), 14);
}
