//! Integration tests for the `cfinder` CLI binary.

use std::fs;
use std::process::Command;

fn write_demo(dir: &std::path::Path) {
    fs::create_dir_all(dir.join("app")).unwrap();
    fs::write(
        dir.join("app/models.py"),
        "from django.db import models\n\n\nclass Voucher(models.Model):\n    code = models.CharField(max_length=32)\n",
    )
    .unwrap();
    fs::write(
        dir.join("app/views.py"),
        "def redeem(code):\n    if Voucher.objects.filter(code=code).exists():\n        raise ValueError('duplicate voucher')\n    Voucher.objects.create(code=code)\n",
    )
    .unwrap();
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cfinder-cli-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn reports_missing_constraint_and_exits_one() {
    let dir = temp_dir("basic");
    write_demo(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Voucher Unique (code)"), "{stdout}");
    assert!(stdout.contains("PA_u1 at views.py:2"), "{stdout}");
}

#[test]
fn json_output_is_parseable() {
    let dir = temp_dir("json");
    write_demo(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--json")
        .output()
        .expect("binary runs");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("stdout is valid JSON");
    assert_eq!(v["missing"].as_array().unwrap().len(), 1);
    assert!(v["loc"].as_u64().unwrap() > 0);
}

#[test]
fn declared_schema_suppresses_report_and_exits_zero() {
    use cfinder::schema::{Column, ColumnType, Constraint, Schema, Table};
    let dir = temp_dir("schema");
    write_demo(&dir);
    let mut schema = Schema::new();
    schema
        .add_table(Table::new("Voucher").with_column(Column::new("code", ColumnType::VarChar(32))));
    schema.add_constraint(Constraint::unique("Voucher", ["code"])).unwrap();
    fs::write(dir.join("schema.json"), schema.to_json()).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--schema")
        .arg(dir.join("schema.json"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no missing database constraints"), "{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder")).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg("/nonexistent-dir-xyz")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn ablate_flag_changes_results() {
    let dir = temp_dir("ablate");
    fs::create_dir_all(dir.join("app")).unwrap();
    fs::write(
        dir.join("app/code.py"),
        "class Voucher(models.Model):\n    code = models.CharField(max_length=32)\n\n\ndef show(pk):\n    v = Voucher.objects.get(pk=pk)\n    if v.code is not None:\n        return v.code.strip()\n    return ''\n",
    )
    .unwrap();
    // Guarded invocation: clean under the full analysis…
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // …but flagged with the null-guard ablation.
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--ablate")
        .arg("null-guard")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("Not NULL (code)"));
}

fn write_demo_with_broken_file(dir: &std::path::Path) {
    write_demo(dir);
    // A salvageable statement plus a broken one: recovery degrades the
    // file (recovered-syntax) instead of dropping it outright.
    fs::write(dir.join("app/broken.py"), "salvaged = 1\ndef broken 123:\n    pass\n").unwrap();
}

#[test]
fn incidents_are_warnings_by_default_but_fail_strict_with_exit_three() {
    let dir = temp_dir("strict");
    write_demo_with_broken_file(&dir);
    // Default: the broken file degrades coverage but not the exit code.
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "missing constraint still drives the exit: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning: [recovered-syntax] broken.py"), "{stderr}");
    assert!(stderr.contains("coverage:"), "{stderr}");
    // --strict: any incident wins over the missing-constraint exit code.
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--strict")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    // --strict on a clean tree is inert.
    fs::remove_file(dir.join("app/broken.py")).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--strict")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn json_reports_incidents_and_coverage() {
    let dir = temp_dir("json-incidents");
    write_demo_with_broken_file(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--json")
        .output()
        .expect("binary runs");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    let incidents = v["incidents"].as_array().unwrap();
    assert!(!incidents.is_empty());
    assert_eq!(incidents[0]["kind"].as_str(), Some("RecoveredSyntax"));
    assert_eq!(incidents[0]["file"].as_str(), Some("broken.py"));
    assert_eq!(v["coverage"]["files_total"].as_u64(), Some(3));
    assert_eq!(v["coverage"]["files_degraded"].as_u64(), Some(1));
}

#[test]
fn max_file_bytes_flag_drops_oversized_files() {
    let dir = temp_dir("maxbytes");
    write_demo(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--max-file-bytes")
        .arg("60")
        .arg("--json")
        .output()
        .expect("binary runs");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    let incidents = v["incidents"].as_array().unwrap();
    assert!(
        incidents.iter().any(|i| i["kind"].as_str() == Some("FileTooLarge")),
        "a demo file exceeds 60 bytes: {incidents:?}"
    );
    // Bad values are usage errors.
    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("app"))
        .arg("--max-file-bytes")
        .arg("lots")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cli_analyzes_an_exported_corpus_app() {
    use cfinder::corpus::{generate, profile, GenOptions};
    let dir = temp_dir("corpus");
    let app = generate(&profile("wagtail").unwrap(), GenOptions::quick());
    app.write_to(&dir).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
        .arg(dir.join("src"))
        .arg("--schema")
        .arg(dir.join("schema.json"))
        .arg("--json")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "missing constraints exist: {out:?}");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    // Wagtail's Table 4 row: 10 missing constraints.
    assert_eq!(v["missing"].as_array().unwrap().len(), 10);
}
