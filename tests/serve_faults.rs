//! The daemon fault-frame suite: every typed error code is reachable,
//! every failure is request-scoped, and both binary surfaces share one
//! usage-error format.
//!
//! Runs the daemon with `CFINDER_SERVE_FAULTS=1` so `analyze` frames
//! can carry `"fault": "panic"` / `"fault": "sleep:<ms>"` — the hooks
//! that make panic containment, deadline overruns, and overload
//! deterministic without huge inputs.

mod support;

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use serde_json::Value;
use support::{err_code, ok_result, Daemon};

/// A minimal project with one detectable pattern.
const PROJECT_SRC: &str = "class Coupon(models.Model):\n    code = models.CharField(max_length=32)\n\n\ndef redeem(code):\n    if Coupon.objects.filter(code=code).exists():\n        raise ValueError('duplicate coupon')\n    Coupon.objects.create(code=code)\n";

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cfinder-serve-faults-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn every_error_code_is_reachable_and_request_scoped() {
    let root = temp_dir("codes");
    let proj = root.join("proj");
    fs::create_dir_all(&proj).unwrap();
    fs::write(proj.join("models.py"), PROJECT_SRC).unwrap();
    let cache = root.join("cache");

    // One worker, a one-slot queue, and a tiny frame cap: every
    // degradation path is reachable on demand.
    let mut daemon = Daemon::spawn(
        &[
            "--workers",
            "1",
            "--queue",
            "1",
            "--max-frame-bytes",
            "2048",
            "--cache-dir",
            cache.to_str().unwrap(),
        ],
        0,
        true,
    );
    let main = daemon.main_client();

    let resp =
        main.call("reg", &format!(r#""cmd":"register","project":"p","dir":"{}""#, proj.display()));
    assert_eq!(ok_result(&resp).get("files").and_then(Value::as_u64), Some(1));

    // malformed-frame — non-JSON (no recoverable id) and a JSON object
    // with no `cmd` (id echoed).
    main.send_raw("definitely { not json");
    let resp = main.recv();
    assert!(resp.get("id").unwrap().is_null(), "{resp:?}");
    assert_eq!(err_code(&resp), "malformed-frame");
    let resp = main.call("mf", r#""note":"no cmd here""#);
    assert_eq!(err_code(&resp), "malformed-frame");

    // oversized-frame: the line is discarded but answered, and the next
    // frame parses cleanly (the stream stays aligned).
    main.send_raw(&"x".repeat(4096));
    let resp = main.recv();
    assert!(resp.get("id").unwrap().is_null(), "{resp:?}");
    assert_eq!(err_code(&resp), "oversized-frame");

    // unknown-command / bad-request / unknown-project.
    let resp = main.call("uc", r#""cmd":"launch-missiles""#);
    assert_eq!(err_code(&resp), "unknown-command");
    let resp = main.call("br1", r#""cmd":"analyze""#);
    assert_eq!(err_code(&resp), "bad-request");
    let resp = main.call("br2", r#""cmd":"analyze","project":"p","deadline_ms":"soon""#);
    assert_eq!(err_code(&resp), "bad-request");
    let resp = main.call("br3", r#""cmd":"analyze","project":"p","ablate":["warp-drive"]"#);
    assert_eq!(err_code(&resp), "bad-request");
    let resp = main.call("up", r#""cmd":"analyze","project":"ghost""#);
    assert_eq!(err_code(&resp), "unknown-project");

    // project-unusable — at registration (an empty dir never becomes a
    // tenant) and at analyze (the tree vanished after registration).
    let empty = root.join("empty");
    fs::create_dir_all(&empty).unwrap();
    let resp =
        main.call("pu1", &format!(r#""cmd":"register","project":"e","dir":"{}""#, empty.display()));
    assert_eq!(err_code(&resp), "project-unusable");
    let resp = main.call("pu1b", r#""cmd":"analyze","project":"e""#);
    assert_eq!(err_code(&resp), "unknown-project", "a failed register must not publish");
    let doomed = root.join("doomed");
    fs::create_dir_all(&doomed).unwrap();
    fs::write(doomed.join("a.py"), "x = 1\n").unwrap();
    let resp = main
        .call("pu2", &format!(r#""cmd":"register","project":"d","dir":"{}""#, doomed.display()));
    ok_result(&resp);
    fs::remove_dir_all(&doomed).unwrap();
    let resp = main.call("pu3", r#""cmd":"analyze","project":"d""#);
    assert_eq!(err_code(&resp), "project-unusable");

    // internal-panic: the injected panic is contained to its request —
    // the daemon answers it, then keeps serving.
    let resp = main.call("panic", r#""cmd":"analyze","project":"p","fault":"panic""#);
    assert_eq!(err_code(&resp), "internal-panic");
    let resp = main.call("after-panic", r#""cmd":"analyze","project":"p""#);
    let healthy = ok_result(&resp);
    assert!(healthy.get("missing").and_then(Value::as_u64).unwrap() >= 1);

    // deadline-exceeded: the handler outlives the request budget.
    let resp =
        main.call("late", r#""cmd":"analyze","project":"p","fault":"sleep:400","deadline_ms":50"#);
    assert_eq!(err_code(&resp), "deadline-exceeded");

    // cache-unusable: the cache root turns into a plain file, then a
    // request arrives whose options need a fresh fingerprint shard.
    fs::remove_dir_all(&cache).unwrap();
    fs::write(&cache, b"not a directory").unwrap();
    let resp = main.call("cu", r#""cmd":"analyze","project":"p","ablate":["null-guard"]"#);
    assert_eq!(err_code(&resp), "cache-unusable");
    // ...while the memoized default-options handle degrades to typed
    // write-skips instead of failing the analysis.
    let resp = main.call("cu-degraded", r#""cmd":"analyze","project":"p""#);
    ok_result(&resp);

    // overloaded: occupy the single worker, fill the one queue slot,
    // and the third concurrent analyze is refused with a retry hint.
    main.send("ov1", r#""cmd":"analyze","project":"p","fault":"sleep:800""#);
    // Wait until the worker has dequeued ov1 (the queue reads empty but
    // the handler is sleeping), so ov2/ov3 land deterministically.
    loop {
        let stats = main.call("ov-poll", r#""cmd":"stats""#);
        if ok_result(&stats).get("queue_depth").and_then(Value::as_u64) == Some(0) {
            break;
        }
    }
    main.send("ov2", r#""cmd":"analyze","project":"p","fault":"sleep:100""#);
    main.send("ov3", r#""cmd":"analyze","project":"p""#);
    let rejected = main.recv();
    assert_eq!(rejected.get("id").and_then(Value::as_str), Some(main.id("ov3").as_str()));
    assert_eq!(err_code(&rejected), "overloaded");
    let hint = rejected.get("error").unwrap().get("retry_after_ms").and_then(Value::as_u64);
    assert!(hint.is_some_and(|ms| ms > 0), "overload carries a retry hint: {rejected:?}");
    // Observability survives saturation: stats answers from the reader
    // thread while the worker is still busy.
    let stats = main.call("ov-stats", r#""cmd":"stats""#);
    assert!(ok_result(&stats).get("rejected_total").and_then(Value::as_u64).unwrap() >= 1);
    for id in ["ov1", "ov2"] {
        let resp = main.recv();
        assert_eq!(resp.get("id").and_then(Value::as_str), Some(main.id(id).as_str()));
        ok_result(&resp);
    }

    // The error taxonomy is visible in the metrics exposition.
    let metrics = main.call("metrics", r#""cmd":"metrics""#);
    let text = ok_result(&metrics).get("prometheus").and_then(Value::as_str).unwrap().to_string();
    for code in
        ["malformed-frame", "oversized-frame", "internal-panic", "deadline-exceeded", "overloaded"]
    {
        assert!(
            text.contains(&format!("code=\"{code}\"")),
            "metrics exposition lacks errors_total{{code=\"{code}\"}}"
        );
    }

    // shutting-down, then a clean exit with every frame answered.
    let resp = main.call("bye", r#""cmd":"shutdown""#);
    assert_eq!(ok_result(&resp).get("draining"), Some(&Value::Bool(true)));
    let resp = main.call("too-late", r#""cmd":"analyze","project":"p""#);
    assert_eq!(err_code(&resp), "shutting-down");
    let status = daemon.finish();
    assert!(status.success(), "daemon exited with {status:?}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn drain_finishes_accepted_work_before_exiting() {
    let root = temp_dir("drain");
    let proj = root.join("proj");
    fs::create_dir_all(&proj).unwrap();
    fs::write(proj.join("models.py"), PROJECT_SRC).unwrap();

    let mut daemon = Daemon::spawn(&["--workers", "1", "--queue", "4"], 0, true);
    let main = daemon.main_client();
    let resp =
        main.call("reg", &format!(r#""cmd":"register","project":"p","dir":"{}""#, proj.display()));
    ok_result(&resp);

    // a1 occupies the worker, a2 waits in the queue; the shutdown frame
    // closes the queue; a3 arrives mid-drain. Expected responses, in
    // order: shutdown ok, a3 refused, then a1 and a2 *completed* — the
    // accepted work is finished and answered, never dropped.
    main.send("a1", r#""cmd":"analyze","project":"p","fault":"sleep:500""#);
    main.send("a2", r#""cmd":"analyze","project":"p""#);
    main.send("bye", r#""cmd":"shutdown""#);
    main.send("a3", r#""cmd":"analyze","project":"p""#);

    let resp = main.recv();
    assert_eq!(resp.get("id").and_then(Value::as_str), Some(main.id("bye").as_str()));
    assert_eq!(ok_result(&resp).get("draining"), Some(&Value::Bool(true)));
    let resp = main.recv();
    assert_eq!(resp.get("id").and_then(Value::as_str), Some(main.id("a3").as_str()));
    assert_eq!(err_code(&resp), "shutting-down");
    for id in ["a1", "a2"] {
        let resp = main.recv();
        assert_eq!(resp.get("id").and_then(Value::as_str), Some(main.id(id).as_str()));
        ok_result(&resp);
    }

    let status = daemon.finish();
    assert!(status.success(), "daemon exited with {status:?}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn serve_misuse_exits_2_with_the_shared_usage_format() {
    for args in [
        &["serve", "--workers", "0"][..],
        &["serve", "--workers"][..],
        &["serve", "--queue", "lots"][..],
        &["serve", "--max-frame-bytes", "-1"][..],
        &["serve", "--cache-dir"][..],
        &["serve", "--cache-dir", "/dev/null/nope"][..],
        &["serve", "--bogus"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_cfinder"))
            .args(args)
            .output()
            .expect("run cfinder serve");
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        let mut lines = stderr.lines();
        // The same two-line typed format `reproduce` uses — one shared
        // `cfinder_core::usage` path for every binary surface.
        assert!(lines.next().is_some_and(|l| l.starts_with("error: ")), "{args:?}: {stderr}");
        assert!(
            lines.next().is_some_and(|l| l.starts_with("usage: cfinder serve ")),
            "{args:?}: {stderr}"
        );
    }
}
