//! Deep field-access chains across multiple foreign keys — §3.5.1's "for a
//! real example in Oscar, `self.attribute.option_group.options` involves
//! the reference between three tables. It is hard to sort out the
//! relationship with such complex code even with human inspection."

use cfinder::core::{AppSource, CFinder, SourceFile};
use cfinder::schema::Schema;

/// The Oscar attribute/option-group structure: four models chained by FKs
/// and one reverse manager.
const MODELS: &str = r#"
from django.db import models


class AttributeOptionGroup(models.Model):
    name = models.CharField(max_length=128)


class AttributeOption(models.Model):
    group = models.ForeignKey(AttributeOptionGroup, related_name='options', on_delete=models.CASCADE)
    option = models.CharField(max_length=255)


class ProductAttribute(models.Model):
    code = models.CharField(max_length=128)
    option_group = models.ForeignKey(AttributeOptionGroup, null=True, on_delete=models.SET_NULL)


class ProductAttributeValue(models.Model):
    attribute = models.ForeignKey(ProductAttribute, on_delete=models.CASCADE)
    value_text = models.CharField(max_length=255)
"#;

#[test]
fn three_table_chain_resolves_to_final_table() {
    // self.attribute.option_group.options walks
    //   ProductAttributeValue → ProductAttribute → AttributeOptionGroup
    //   → (reverse) AttributeOption
    // so the uniqueness check constrains AttributeOption with the implicit
    // join on its `group` FK.
    let code = r#"
class ProductAttributeValue(models.Model):
    attribute = models.ForeignKey(ProductAttribute, on_delete=models.CASCADE)

    def validate_option(self, value):
        if self.attribute.option_group.options.filter(option=value).count() > 0:
            raise ValueError('option already defined in group')
"#;
    let app = AppSource::new(
        "oscar-like",
        vec![SourceFile::new("models.py", MODELS), SourceFile::new("validators.py", code)],
    );
    let report = CFinder::new().analyze(&app, &Schema::new());
    let missing: Vec<String> = report.missing.iter().map(|m| m.constraint.to_string()).collect();
    assert!(
        missing.iter().any(|c| c == "AttributeOption Unique (group_id, option)"),
        "{missing:?}"
    );
}

#[test]
fn chain_through_nullable_fk_detects_not_null_on_each_hop() {
    // Invoking through `attr.option_group.name` requires option_group
    // (nullable FK) to be non-null.
    let code = r#"
def group_name(pk):
    attr = ProductAttribute.objects.get(pk=pk)
    return attr.option_group.name.upper()
"#;
    let app = AppSource::new(
        "oscar-like",
        vec![SourceFile::new("models.py", MODELS), SourceFile::new("views.py", code)],
    );
    let report = CFinder::new().analyze(&app, &Schema::new());
    let missing: Vec<String> = report.missing.iter().map(|m| m.constraint.to_string()).collect();
    // Both hops imply not-null: the FK column and the final scalar column.
    assert!(
        missing.iter().any(|c| c == "ProductAttribute Not NULL (option_group_id)"),
        "{missing:?}"
    );
    assert!(missing.iter().any(|c| c == "AttributeOptionGroup Not NULL (name)"), "{missing:?}");
}

#[test]
fn guard_on_intermediate_hop_suppresses_only_that_hop() {
    let code = r#"
def group_name(pk):
    attr = ProductAttribute.objects.get(pk=pk)
    if attr.option_group is not None:
        return attr.option_group.name.upper()
    return ''
"#;
    let app = AppSource::new(
        "oscar-like",
        vec![SourceFile::new("models.py", MODELS), SourceFile::new("views.py", code)],
    );
    let report = CFinder::new().analyze(&app, &Schema::new());
    let missing: Vec<String> = report.missing.iter().map(|m| m.constraint.to_string()).collect();
    assert!(
        !missing.iter().any(|c| c == "ProductAttribute Not NULL (option_group_id)"),
        "the guarded FK hop must not be reported: {missing:?}"
    );
    assert!(
        missing.iter().any(|c| c == "AttributeOptionGroup Not NULL (name)"),
        "the unguarded scalar hop still is: {missing:?}"
    );
}

#[test]
fn variable_chains_resolve_like_inline_chains() {
    // The same constraint through intermediate variables — the use-def
    // chain glues the hops together.
    let code = r#"
def validate_option(value_pk, value):
    val = ProductAttributeValue.objects.get(pk=value_pk)
    attr = val.attribute
    group = attr.option_group
    existing = group.options.filter(option=value)
    if existing.count() > 0:
        raise ValueError('duplicate option')
"#;
    let app = AppSource::new(
        "oscar-like",
        vec![SourceFile::new("models.py", MODELS), SourceFile::new("validators.py", code)],
    );
    let report = CFinder::new().analyze(&app, &Schema::new());
    let missing: Vec<String> = report.missing.iter().map(|m| m.constraint.to_string()).collect();
    assert!(
        missing.iter().any(|c| c == "AttributeOption Unique (group_id, option)"),
        "{missing:?}"
    );
}
