//! Shared harness for the `cfinder serve` test suites.
//!
//! Spawns the real daemon binary, multiplexes request frames from
//! several client threads over the child's stdin, and routes response
//! frames back to the requesting client by `id` (the convention is
//! `"c<idx>:<suffix>"` for pool clients; anything else — including the
//! `null` ids of unrecoverable frames — lands in the main client's
//! inbox). The router also counts every response line, so tests can
//! assert the daemon's core invariant: one response per frame.

// Each suite uses a different subset of the harness.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde_json::Value;

/// How long a test waits for one response frame before declaring the
/// daemon hung. Generous: suites run under full `cargo test` load.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// The shared, counted write end of the daemon's stdin.
#[derive(Clone)]
pub struct Port {
    stdin: Arc<Mutex<Option<ChildStdin>>>,
    sent: Arc<AtomicU64>,
}

impl Port {
    /// Writes one frame line (a newline is appended) and counts it.
    pub fn send_raw(&self, line: &str) {
        let mut guard = self.stdin.lock().unwrap();
        let stdin = guard.as_mut().expect("daemon stdin already closed");
        writeln!(stdin, "{line}").expect("write to daemon stdin");
        stdin.flush().expect("flush daemon stdin");
        self.sent.fetch_add(1, Ordering::SeqCst);
    }
}

/// One client of the daemon: a counted stdin handle plus the inbox the
/// router delivers this client's responses to.
pub struct Client {
    /// Client index (`usize::MAX` for the main client).
    pub idx: usize,
    port: Port,
    rx: Receiver<Value>,
}

impl Client {
    /// The request id this client uses for `suffix`.
    pub fn id(&self, suffix: &str) -> String {
        if self.idx == usize::MAX {
            format!("m:{suffix}")
        } else {
            format!("c{}:{suffix}", self.idx)
        }
    }

    /// Sends `{"id": <id(suffix)>, <body>}` without waiting.
    pub fn send(&self, suffix: &str, body: &str) {
        self.port.send_raw(&format!("{{\"id\":\"{}\",{body}}}", self.id(suffix)));
    }

    /// Sends a raw line (hostile frames, oversized payloads, …).
    pub fn send_raw(&self, line: &str) {
        self.port.send_raw(line);
    }

    /// Receives this client's next response frame.
    pub fn recv(&self) -> Value {
        self.rx.recv_timeout(RECV_TIMEOUT).expect("daemon did not answer in time")
    }

    /// Sends one request and waits for its response, asserting the id
    /// round-tripped (clients here are strictly send-one-wait-one).
    pub fn call(&self, suffix: &str, body: &str) -> Value {
        self.send(suffix, body);
        let resp = self.recv();
        let id = self.id(suffix);
        assert_eq!(
            resp.get("id").and_then(Value::as_str),
            Some(id.as_str()),
            "response id mismatch: {resp:?}"
        );
        resp
    }
}

/// A spawned `cfinder serve` process, its response router, and the
/// unclaimed client handles.
pub struct Daemon {
    child: Child,
    port: Port,
    clients: Vec<Option<Client>>,
    main: Option<Client>,
    router: Option<JoinHandle<u64>>,
}

impl Daemon {
    /// Spawns `cfinder serve <args>` with `n_clients` routable clients.
    /// `faults` arms `CFINDER_SERVE_FAULTS`; analyzer environment knobs
    /// are scrubbed either way so daemon runs match in-process oracles.
    pub fn spawn(args: &[&str], n_clients: usize, faults: bool) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_cfinder"));
        cmd.arg("serve")
            .args(args)
            .env_remove(cfinder::core::detect::DEADLINE_ENV)
            .env_remove(cfinder::core::cache::CACHE_DIR_ENV)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if faults {
            cmd.env(cfinder::serve::FAULTS_ENV, "1");
        } else {
            cmd.env_remove(cfinder::serve::FAULTS_ENV);
        }
        let mut child = cmd.spawn().expect("spawn cfinder serve");

        let port = Port {
            stdin: Arc::new(Mutex::new(Some(child.stdin.take().expect("piped stdin")))),
            sent: Arc::new(AtomicU64::new(0)),
        };
        let stdout = child.stdout.take().expect("piped stdout");
        let mut txs: Vec<Sender<Value>> = Vec::new();
        let mut clients: Vec<Option<Client>> = Vec::new();
        for idx in 0..n_clients {
            let (tx, rx) = channel();
            txs.push(tx);
            clients.push(Some(Client { idx, port: port.clone(), rx }));
        }
        let (main_tx, main_rx) = channel();
        let main = Some(Client { idx: usize::MAX, port: port.clone(), rx: main_rx });

        // The router: every stdout line is one JSON frame; route it by
        // the `"c<idx>:"` id prefix, count it, and return the count at
        // EOF. Delivery failures (a client hung up after finishing) are
        // ignored — the count is what the invariant check uses.
        let router = std::thread::spawn(move || {
            let mut routed = 0u64;
            for line in BufReader::new(stdout).lines() {
                let line = line.expect("read daemon stdout");
                let frame: Value = serde_json::from_str(&line)
                    .unwrap_or_else(|e| panic!("daemon emitted a non-JSON line ({e}): {line}"));
                routed += 1;
                let target = frame
                    .get("id")
                    .and_then(Value::as_str)
                    .and_then(|id| id.strip_prefix('c'))
                    .and_then(|rest| rest.split(':').next())
                    .and_then(|n| n.parse::<usize>().ok())
                    .filter(|i| *i < txs.len());
                let _ = match target {
                    Some(i) => txs[i].send(frame),
                    None => main_tx.send(frame),
                };
            }
            routed
        });

        Daemon { child, port, clients, main, router: Some(router) }
    }

    /// Takes pool client `idx` (panics if already taken).
    pub fn client(&mut self, idx: usize) -> Client {
        self.clients[idx].take().expect("client already taken")
    }

    /// Takes the main client — the one that also receives `null`-id
    /// frames (panics if already taken).
    pub fn main_client(&mut self) -> Client {
        self.main.take().expect("main client already taken")
    }

    /// Closes the daemon's stdin (EOF — the drain signal), waits for the
    /// process, joins the router, and asserts the one-response-per-frame
    /// invariant: every counted request line was answered. Returns the
    /// exit status.
    pub fn finish(mut self) -> std::process::ExitStatus {
        drop(self.port.stdin.lock().unwrap().take());
        let status = self.child.wait().expect("wait for daemon");
        let routed = self.router.take().unwrap().join().expect("router thread");
        let sent = self.port.sent.load(Ordering::SeqCst);
        assert_eq!(
            routed, sent,
            "one response per frame: sent {sent} frame(s), got {routed} response(s)"
        );
        status
    }
}

/// Asserts an `ok: true` frame and returns its `result`.
pub fn ok_result(resp: &Value) -> &Value {
    assert_eq!(resp.get("ok"), Some(&Value::Bool(true)), "expected an ok frame: {resp:?}");
    resp.get("result").expect("ok frame carries a result")
}

/// Asserts an `ok: false` frame and returns its error `code` label.
pub fn err_code(resp: &Value) -> &str {
    assert_eq!(resp.get("ok"), Some(&Value::Bool(false)), "expected an error frame: {resp:?}");
    resp.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .expect("error frame carries a code")
}
