//! # cfinder-bench
//!
//! Criterion benchmarks regenerating the measurable dimension of every
//! paper table and figure:
//!
//! * `paper_tables` — Table 4 (full-pipeline detection over all eight
//!   apps), Table 10 (analysis time vs. LoC scaling), Tables 1–3 (study
//!   aggregation), Table 9 (historical recall), Figure 1 (incident
//!   replays), Figure 2 (race interleavings and the constraint-guard
//!   overhead).
//! * `substrates` — microbenchmarks of the layers the pipeline is built
//!   from: lexing/parsing throughput, CFG + use-def chains, NULL-guard
//!   analysis, and minidb write paths with and without enforcement.
//!
//! Run with `cargo bench --workspace`.

#![forbid(unsafe_code)]

/// Re-exported so benches share one corpus-shrinking knob.
pub use cfinder_corpus::GenOptions;

/// A tiny generation option for iterated benchmarks (~2% noise LoC).
pub fn bench_options() -> GenOptions {
    GenOptions { loc_scale: 0.02 }
}
