//! Microbenchmarks of the substrate layers: lexer/parser throughput,
//! flow analyses, and minidb write paths (the "constraint guard overhead"
//! the paper's skeptical developers worry about).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use cfinder_corpus::{generate, profile};
use cfinder_flow::{NullGuards, UseDefChains};
use cfinder_minidb::{Database, Value};
use cfinder_pyast::lexer::lex;
use cfinder_pyast::parse_module;
use cfinder_schema::{Column, ColumnType, Constraint, Table};

/// A realistic service-file sample from the generated corpus.
fn sample_source() -> String {
    let app = generate(&profile("oscar").expect("profile"), cfinder_bench::bench_options());
    app.files
        .iter()
        .find(|f| f.path.starts_with("services_"))
        .map(|f| f.text.clone())
        .expect("corpus has service files")
}

fn bench_lexer(c: &mut Criterion) {
    let src = sample_source();
    let mut group = c.benchmark_group("pyast");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("lex", |b| b.iter(|| lex(&src).expect("valid source").len()));
    group.bench_function("parse", |b| {
        b.iter(|| parse_module(&src).expect("valid source").body.len())
    });
    group.finish();
}

fn bench_flow(c: &mut Criterion) {
    let src = sample_source();
    let module = parse_module(&src).expect("valid source");
    let mut group = c.benchmark_group("flow");
    group.bench_function("use_def_chains", |b| {
        b.iter(|| UseDefChains::compute(&module.body, &[]).defs().len())
    });
    group.bench_function("null_guards", |b| {
        b.iter(|| {
            let g = NullGuards::analyze(&module.body);
            std::hint::black_box(&g);
        })
    });
    group.finish();
}

fn seeded_db(constrained: bool) -> Database {
    let mut db = if constrained { Database::new() } else { Database::without_enforcement() };
    db.create_table(
        Table::new("users")
            .with_column(Column::new("email", ColumnType::VarChar(254)))
            .with_column(Column::new("name", ColumnType::VarChar(100))),
    )
    .expect("fresh db");
    db.add_constraint(Constraint::unique("users", ["email"])).expect("declare");
    db.add_constraint(Constraint::not_null("users", "email")).expect("declare");
    for i in 0..1000 {
        db.insert(
            "users",
            [("email", Value::from(format!("user{i}@example.com"))), ("name", Value::from("n"))],
        )
        .expect("unique synthetic emails");
    }
    db
}

/// Figure 2's implicit cost question: what does the final-guard check cost
/// per insert, with 1000 existing rows?
fn bench_minidb_guard_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_guard_overhead");
    for (label, constrained) in [("insert_with_constraints", true), ("insert_unchecked", false)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || seeded_db(constrained),
                |mut db| {
                    db.insert(
                        "users",
                        [("email", Value::from("fresh@example.com")), ("name", Value::from("x"))],
                    )
                    .expect("unique email")
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Migration validation cost: `ADD CONSTRAINT` scans existing rows.
fn bench_minidb_migration_check(c: &mut Criterion) {
    let db = seeded_db(false);
    c.bench_function("add_constraint_validation_1k_rows", |b| {
        b.iter(|| db.count_violations(&Constraint::unique("users", ["name"])))
    });
}

criterion_group!(
    benches,
    bench_lexer,
    bench_flow,
    bench_minidb_guard_overhead,
    bench_minidb_migration_check,
);
criterion_main!(benches);
