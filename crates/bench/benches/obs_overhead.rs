//! Observability overhead check: the same analysis with the obs layer
//! disabled (the no-op handle that ships by default), enabled, and
//! enabled with the sampling profiler attached.
//!
//! Prints the measured overhead of each configuration against the
//! baseline and fails the bench run outright if enabled-mode tracing (or
//! tracing plus sampling) costs more than 50% — a loose ceiling chosen
//! so noisy CI boxes don't flake; the design budget is ≤5% and quiet
//! machines land well under it.

use std::time::{Duration, Instant};

use cfinder_core::{AppSource, CFinder, Obs, SourceFile};
use cfinder_corpus::{generate, profile};

const WARMUP_RUNS: usize = 2;
const MEASURED_RUNS: usize = 9;

fn corpus_app() -> AppSource {
    let app = generate(&profile("oscar").expect("profile"), cfinder_bench::bench_options());
    AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    )
}

/// Median wall time of an analysis under the given obs factory. A fresh
/// handle per run keeps enabled-mode buffers from growing across runs.
fn median_secs(
    source: &AppSource,
    declared: &cfinder_schema::Schema,
    obs: impl Fn() -> Obs,
) -> f64 {
    let mut samples = Vec::with_capacity(MEASURED_RUNS);
    for i in 0..WARMUP_RUNS + MEASURED_RUNS {
        let finder = CFinder::new().with_obs(obs());
        let start = Instant::now();
        let report = finder.analyze(source, declared);
        let elapsed = start.elapsed();
        assert!(!report.missing.is_empty(), "corpus app must keep detecting");
        if i >= WARMUP_RUNS {
            samples.push(elapsed);
        }
    }
    samples.sort();
    samples[samples.len() / 2].as_secs_f64()
}

fn main() {
    let source = corpus_app();
    let declared = cfinder_schema::Schema::new();

    let disabled = median_secs(&source, &declared, Obs::disabled);
    let enabled = median_secs(&source, &declared, Obs::enabled);
    let profiled =
        median_secs(&source, &declared, || Obs::profiled(cfinder_obs::profile::DEFAULT_HZ));

    let overhead = |secs: f64| 100.0 * (secs - disabled) / disabled.max(f64::EPSILON);
    println!(
        "{:<34} {:>12}/iter",
        "obs/disabled (baseline)",
        format!("{:.3?}", Duration::from_secs_f64(disabled))
    );
    println!(
        "{:<34} {:>12}/iter  {:+.1}% vs disabled",
        "obs/enabled (spans + metrics)",
        format!("{:.3?}", Duration::from_secs_f64(enabled)),
        overhead(enabled)
    );
    println!(
        "{:<34} {:>12}/iter  {:+.1}% vs disabled",
        "obs/profiled (+ sampling profiler)",
        format!("{:.3?}", Duration::from_secs_f64(profiled)),
        overhead(profiled)
    );

    assert!(
        overhead(enabled) <= 50.0,
        "enabled-mode observability costs {:.1}% — far beyond the ≤5% budget",
        overhead(enabled)
    );
    // The profiled ceiling is looser than enabled's: the live-stack
    // push/pop adds one small allocation per span, which on this corpus
    // is within the run-to-run noise of shared CI boxes (the same
    // enabled-mode run swings by ±20% between invocations). The design
    // budget is still ≤5%; quiet machines measure low single digits.
    assert!(
        overhead(profiled) <= 75.0,
        "profiled-mode observability costs {:.1}% — far beyond the ≤5% budget",
        overhead(profiled)
    );
}
