//! Benchmarks regenerating each paper table/figure's measurable dimension.
//!
//! Absolute numbers differ from the paper (Rust analyzer vs. the authors'
//! Python implementation; synthetic corpus vs. their testbed), but the
//! *shapes* hold: analysis time grows near-linearly with LoC (Table 10),
//! the DB-constraint guard eliminates corruption at a small write-path
//! cost (Figure 2), and the full eight-app sweep (Table 4) completes in
//! seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cfinder_bench::bench_options;
use cfinder_core::{AppSource, CFinder, SourceFile};
use cfinder_corpus::{all_profiles, generate, profile, study_corpus, GenOptions};
use cfinder_minidb::{simulate_interleavings, RaceConfig};
use cfinder_report::HistoryRecall;
use cfinder_schema::StudyReport;

fn to_source(app: &cfinder_corpus::GeneratedApp) -> AppSource {
    AppSource::new(
        app.name.clone(),
        app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
    )
}

/// Table 4: detect missing constraints across all eight applications.
fn bench_table4_detect_all(c: &mut Criterion) {
    let apps: Vec<_> = all_profiles()
        .iter()
        .map(|p| {
            let app = generate(p, bench_options());
            let src = to_source(&app);
            (src, app.declared)
        })
        .collect();
    let finder = CFinder::new();
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("detect_all_eight_apps", |b| {
        b.iter(|| {
            let mut total_missing = 0;
            for (src, declared) in &apps {
                total_missing += finder.analyze(src, declared).missing.len();
            }
            assert_eq!(total_missing, 210); // 158 open-source + 52 commercial
            total_missing
        })
    });
    group.finish();
}

/// Table 10: analysis time as a function of LoC (the paper's
/// near-proportionality claim). Throughput is reported in lines/second.
fn bench_table10_scaling(c: &mut Criterion) {
    let p = profile("oscar").expect("profile exists");
    let finder = CFinder::new();
    let mut group = c.benchmark_group("table10_loc_scaling");
    group.sample_size(10);
    for scale in [0.05_f64, 0.1, 0.2, 0.4] {
        let app = generate(&p, GenOptions { loc_scale: scale });
        let src = to_source(&app);
        let loc = src.loc();
        group.throughput(Throughput::Elements(loc as u64));
        group.bench_with_input(BenchmarkId::from_parameter(loc), &src, |b, src| {
            b.iter(|| finder.analyze(src, &app.declared).detections.len())
        });
    }
    group.finish();
}

/// The parallel analysis engine: `analyze` at 1 / 2 / 4 worker threads
/// over the same app. On a multi-core host the multi-thread rows should
/// show near-linear speedup on the parse and detection stages; on a
/// single core all rows converge (the engine adds no meaningful overhead).
fn bench_parallel_engine(c: &mut Criterion) {
    let p = profile("oscar").expect("profile exists");
    let app = generate(&p, bench_options());
    let src = to_source(&app);
    let loc = src.loc();
    let mut group = c.benchmark_group("table10_parallel_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(loc as u64));
    for threads in [1_usize, 2, 4] {
        let finder = CFinder::new().with_threads(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &src, |b, src| {
            b.iter(|| finder.analyze(src, &app.declared).detections.len())
        });
    }
    group.finish();
}

/// Tables 1–3: migration-history replay and study aggregation.
fn bench_study_tables(c: &mut Criterion) {
    let apps = study_corpus();
    c.bench_function("tables1to3_study_aggregation", |b| {
        b.iter(|| {
            let reports: Vec<StudyReport> = apps.iter().map(|a| a.history.study()).collect();
            let merged = StudyReport::merged(reports.iter());
            assert_eq!(merged.total(), 143);
            merged.mean_months_missing()
        })
    });
}

/// Table 9: recall over the historical dataset (old code, old schemas).
fn bench_table9_history_recall(c: &mut Criterion) {
    let study = study_corpus();
    let mut group = c.benchmark_group("table9");
    group.sample_size(20);
    group.bench_function("historical_recall", |b| {
        b.iter(|| {
            let recall = HistoryRecall::run(&study);
            assert_eq!(recall.overall(), (117, 93));
            recall
        })
    });
    group.finish();
}

/// Figure 1: the three incident replays.
fn bench_figure1_scenarios(c: &mut Criterion) {
    c.bench_function("figure1_incident_replays", |b| {
        b.iter(|| {
            let all = cfinder_minidb::scenarios::run_all();
            assert_eq!(all.len(), 3);
            all.iter().filter(|(_, _, with)| with.integrity_preserved()).count()
        })
    });
}

/// Figure 2: exhaustive interleaving exploration per guard configuration.
fn bench_figure2_races(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_races");
    for (label, app_validation, db_constraint) in [
        ("app_validation_only", true, false),
        ("db_constraint", true, true),
        ("no_guard", false, false),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                simulate_interleavings(RaceConfig { requests: 3, app_validation, db_constraint })
                    .corrupted_schedules
            })
        });
    }
    group.finish();
}

/// Ablation grid: the cost/benefit of each analysis design element.
fn bench_ablation_grid(c: &mut Criterion) {
    let apps: Vec<cfinder_corpus::GeneratedApp> = ["oscar"]
        .iter()
        .map(|n| generate(&profile(n).expect("profile"), bench_options()))
        .collect();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (label, options) in cfinder_report::ablation::configurations() {
        let finder = cfinder_core::CFinder::with_options(options);
        let srcs: Vec<AppSource> = apps.iter().map(to_source).collect();
        let declared: Vec<_> = apps.iter().map(|a| a.declared.clone()).collect();
        group.bench_function(label.replace(' ', "_"), move |b| {
            b.iter(|| {
                srcs.iter()
                    .zip(&declared)
                    .map(|(s, d)| finder.analyze(s, d).missing.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

/// §3.1/§5 baseline: data-profiling discovery cost on a populated database.
fn bench_baseline_miner(c: &mut Criterion) {
    let app = generate(&profile("wagtail").expect("profile"), bench_options());
    let db = cfinder_report::populate(&app, 40);
    let mut group = c.benchmark_group("baseline");
    group.sample_size(10);
    group.bench_function("ucc_ind_miner", |b| {
        b.iter(|| {
            cfinder_minidb::discover_constraints(&db, cfinder_minidb::ProfileOptions::default())
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table4_detect_all,
    bench_table10_scaling,
    bench_parallel_engine,
    bench_study_tables,
    bench_table9_history_recall,
    bench_figure1_scenarios,
    bench_figure2_races,
    bench_ablation_grid,
    bench_baseline_miner,
);
criterion_main!(benches);
