//! Constraint-driven query-rewrite speedup check: for every workload
//! class, the rewritten plan must never be slower than the naive plan,
//! and on the two headline classes (DISTINCT drop and join elimination)
//! it must be at least 1.5× faster.
//!
//! The differential oracle runs off the clock inside
//! `run_query_bench` — both plans must produce byte-identical stable
//! serializations before any timing is recorded — so a speedup bought
//! by a wrong answer cannot pass. Data generation also happens outside
//! the timed windows.

use cfinder_report::{run_query_bench, QueryBenchOptions};

const ROWS: usize = 20_000;
const MEASURED_RUNS: usize = 5;
const REQUIRED_HEADLINE_SPEEDUP: f64 = 1.5;
/// Tolerance for "never slower": timer noise on sub-millisecond plans.
const NEVER_SLOWER_SLACK: f64 = 0.95;

fn main() {
    let results = run_query_bench(QueryBenchOptions { rows: ROWS, repeats: MEASURED_RUNS })
        .expect("query bench ran oracle-clean");
    assert_eq!(results.len(), 4, "all four workload classes measured");

    for r in &results {
        println!(
            "query_rewrite/{:<20} naive {:>9.3}ms  rewritten {:>9.3}ms  speedup {:>8.2}x  [{}]",
            r.name,
            r.naive_seconds * 1e3,
            r.rewritten_seconds * 1e3,
            r.speedup(),
            r.rules.join(", "),
        );
        assert!(
            r.speedup() >= NEVER_SLOWER_SLACK,
            "{}: rewritten plan slower than naive ({:.2}x)",
            r.name,
            r.speedup()
        );
    }

    for headline in ["distinct_drop", "join_elimination"] {
        let r = results.iter().find(|r| r.name == headline).expect("headline class present");
        assert!(
            r.speedup() >= REQUIRED_HEADLINE_SPEEDUP,
            "{headline}: {:.2}x, required {REQUIRED_HEADLINE_SPEEDUP}x",
            r.speedup()
        );
    }
    println!(
        "query_rewrite: ok — rewritten never slower; headline classes >= {REQUIRED_HEADLINE_SPEEDUP}x"
    );
}
