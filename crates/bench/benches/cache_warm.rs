//! Incremental-cache speedup check: analyzing the unchanged 8-app corpus
//! with a warm cache must be at least 5× faster than a cold run, while
//! producing a byte-identical stable report for every app.
//!
//! "Cold" here is the honest worst case — an empty cache directory, so the
//! run pays full parse + detect *plus* entry write-back. "Warm" reuses the
//! directory the cold runs populated. The oracle (`stable_json`) is
//! asserted on every measured run, so a speedup bought by wrong answers
//! cannot pass.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cfinder_core::{AnalysisCache, AppSource, CFinder, CFinderOptions, Limits, SourceFile};
use cfinder_corpus::{all_profiles, generate};
use cfinder_schema::Schema;

const WARMUP_RUNS: usize = 1;
const MEASURED_RUNS: usize = 5;
const REQUIRED_SPEEDUP: f64 = 5.0;

fn corpus() -> Vec<AppSource> {
    // A bit larger than `bench_options()`: cold parse + detect cost grows
    // with the noise LoC while warm lookup cost barely does (entry sizes
    // track pattern sites, which `loc_scale` leaves unchanged), so this
    // scale keeps the measured ratio clear of run-to-run noise without
    // slowing the suite much.
    let options = cfinder_bench::GenOptions { loc_scale: 0.05 };
    all_profiles()
        .iter()
        .map(|p| {
            let app = generate(p, options);
            AppSource::new(
                app.name.clone(),
                app.files.iter().map(|f| SourceFile::new(f.path.clone(), f.text.clone())).collect(),
            )
        })
        .collect()
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfinder-cache-warm-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Analyzes the whole corpus once against the given cache directory,
/// asserting every app's stable report matches `oracle`. Returns the total
/// wall time of the 8 `analyze` calls alone — the oracle check runs off
/// the clock (it costs the same for cold and warm runs, so timing it
/// would only dilute the measured speedup).
fn run_corpus(apps: &[AppSource], root: &PathBuf, oracle: &[String]) -> Duration {
    let limits = Limits::default();
    let cache = Arc::new(
        AnalysisCache::open(root, &CFinderOptions::default(), &limits).expect("open cache"),
    );
    let declared = Schema::new();
    let mut elapsed = Duration::ZERO;
    for (app, expected) in apps.iter().zip(oracle) {
        let finder = CFinder::new().with_limits(limits).with_cache(cache.clone());
        let start = Instant::now();
        let report = finder.analyze(app, &declared);
        elapsed += start.elapsed();
        assert_eq!(&report.stable_json(), expected, "{}: cached run diverged", app.name);
    }
    elapsed
}

fn median(samples: &mut [Duration]) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_secs_f64()
}

fn main() {
    let apps = corpus();
    let declared = Schema::new();

    if std::env::var("CFINDER_CACHE_BENCH_DEBUG").is_ok() {
        let limits = Limits::default();
        let root = bench_dir("debug");
        let cache = Arc::new(
            AnalysisCache::open(&root, &CFinderOptions::default(), &limits).expect("open cache"),
        );
        for pass in ["cold", "warm"] {
            for app in &apps {
                let finder = CFinder::new().with_limits(limits).with_cache(cache.clone());
                let start = Instant::now();
                let report = finder.analyze(app, &declared);
                let total = start.elapsed();
                let ts = &report.timings;
                eprintln!(
                    "{pass} {:<12} total={total:?} parse={:?} models={:?} detect={:?} diff={:?} orch={:?} hits={} misses={} parsed={}",
                    app.name, ts.parse, ts.model_extraction, ts.detection, ts.diff,
                    ts.orchestration, ts.cache_hits, ts.cache_misses, ts.files_parsed
                );
            }
        }
        // Split the per-lookup cost: content hashing vs entry read+decode.
        let hash_start = Instant::now();
        let hashes: Vec<Vec<String>> = apps
            .iter()
            .map(|a| a.files.iter().map(|f| cfinder_core::cache::content_hash(&f.text)).collect())
            .collect();
        let hash_time = hash_start.elapsed();
        let lookup_start = Instant::now();
        let mut hits = 0;
        for (app, hs) in apps.iter().zip(&hashes) {
            for (file, h) in app.files.iter().zip(hs) {
                if matches!(cache.lookup(&file.path, h), cfinder_core::cache::Lookup::Hit(_)) {
                    hits += 1;
                }
            }
        }
        let lookup_time = lookup_start.elapsed();
        eprintln!(
            "content hashing all files: {hash_time:?}; read+decode ({hits} hits): {lookup_time:?}"
        );
        let _ = fs::remove_dir_all(&root);
        return;
    }

    // The oracle: uncached reference reports.
    let oracle: Vec<String> = apps
        .iter()
        .map(|app| {
            CFinder::new().with_limits(Limits::default()).analyze(app, &declared).stable_json()
        })
        .collect();

    // Cold: a fresh (empty) cache directory every iteration.
    let mut cold_samples = Vec::with_capacity(MEASURED_RUNS);
    for i in 0..WARMUP_RUNS + MEASURED_RUNS {
        let root = bench_dir(&format!("cold-{i}"));
        let elapsed = run_corpus(&apps, &root, &oracle);
        if i >= WARMUP_RUNS {
            cold_samples.push(elapsed);
        }
        let _ = fs::remove_dir_all(&root);
    }

    // Warm: one directory, populated once, reused for every iteration.
    let warm_root = bench_dir("warm");
    run_corpus(&apps, &warm_root, &oracle); // populate
    let mut warm_samples = Vec::with_capacity(MEASURED_RUNS);
    for i in 0..WARMUP_RUNS + MEASURED_RUNS {
        let elapsed = run_corpus(&apps, &warm_root, &oracle);
        if i >= WARMUP_RUNS {
            warm_samples.push(elapsed);
        }
    }
    let _ = fs::remove_dir_all(&warm_root);

    let cold = median(&mut cold_samples);
    let warm = median(&mut warm_samples);
    let speedup = cold / warm.max(f64::EPSILON);
    println!(
        "{:<34} {:>12}/iter",
        "cache/cold (empty dir + write-back)",
        format!("{:.3?}", Duration::from_secs_f64(cold))
    );
    println!(
        "{:<34} {:>12}/iter  {speedup:.1}x vs cold",
        "cache/warm (unchanged corpus)",
        format!("{:.3?}", Duration::from_secs_f64(warm))
    );

    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "warm runs are only {speedup:.1}x faster than cold — below the {REQUIRED_SPEEDUP}x \
         acceptance bar"
    );
}
