//! The daemon's wire protocol: newline-delimited JSON frames over
//! stdio.
//!
//! Every *request* is one JSON object on one line carrying an `id` (any
//! JSON value, echoed verbatim) and a `cmd` string; every *response* is
//! one JSON object on one line echoing the `id` with either
//! `{"ok": true, "result": …}` or
//! `{"ok": false, "error": {"code", "message"[, "retry_after_ms"]}}`.
//! There is exactly one response per request frame — even a frame that
//! is not JSON at all gets a typed `malformed-frame` error (with a
//! `null` id, since none could be recovered). The daemon never answers
//! a frame with silence, and never dies because of one.
//!
//! Parsing is *total*: [`parse_request`] maps every possible input line
//! to either a [`Request`] or a typed [`ErrorCode`] plus detail. Frame
//! reading is bounded: [`read_frame`] enforces the configured byte cap
//! while still consuming the oversized line, so one hostile frame costs
//! one `oversized-frame` error, not protocol desynchronization.

use std::io::{self, BufRead};
use std::path::PathBuf;

use serde_json::Value;

/// Typed failure classes a response frame can carry. Every way a request
/// can fail maps to exactly one of these — the client can branch on the
/// kebab-case [`ErrorCode::label`] without parsing prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not a JSON object shaped like a request.
    MalformedFrame,
    /// The line exceeded the frame byte cap and was discarded unread.
    OversizedFrame,
    /// The `cmd` value names no known command.
    UnknownCommand,
    /// The command is known but its arguments are missing or ill-typed.
    BadRequest,
    /// The named project was never registered.
    UnknownProject,
    /// The project's source directory could not be loaded (vanished,
    /// unreadable, no `.py` files, bad schema file).
    ProjectUnusable,
    /// The daemon's cache directory became unusable.
    CacheUnusable,
    /// The bounded request queue is full; retry after the hinted delay.
    Overloaded,
    /// The request's deadline elapsed before (or while) handling it.
    DeadlineExceeded,
    /// The handler panicked; the panic was contained to this request.
    InternalPanic,
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
}

impl ErrorCode {
    /// The stable kebab-case wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::OversizedFrame => "oversized-frame",
            ErrorCode::UnknownCommand => "unknown-command",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownProject => "unknown-project",
            ErrorCode::ProjectUnusable => "project-unusable",
            ErrorCode::CacheUnusable => "cache-unusable",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::InternalPanic => "internal-panic",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }
}

/// One parsed request frame.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Value,
    /// The decoded command.
    pub cmd: Command,
}

/// Every command the daemon understands.
#[derive(Debug, Clone)]
pub enum Command {
    /// Register (or replace) a project: a source directory and an
    /// optional declared-schema JSON file.
    Register {
        /// Tenant name subsequent requests address.
        project: String,
        /// Directory holding the project's `.py` tree.
        dir: PathBuf,
        /// Optional `schema.json` path (the declared schema).
        schema: Option<PathBuf>,
    },
    /// Analyze a registered project against its declared schema.
    Analyze {
        /// Tenant name.
        project: String,
        /// Whole-request budget in milliseconds (queue wait included).
        deadline_ms: Option<u64>,
        /// Per-file parse budget, carried on [`cfinder_core::CFinderOptions`].
        file_deadline_ms: Option<u64>,
        /// Ablation flags, same names as `cfinder --ablate`.
        ablate: Vec<String>,
        /// Test-only fault injection (`CFINDER_SERVE_FAULTS=1`).
        fault: Option<Fault>,
    },
    /// Explain every inferred constraint on `table[.column]`.
    Explain {
        /// Tenant name.
        project: String,
        /// `Table` or `Table.column`.
        target: String,
    },
    /// Re-analyze and report constraints added/removed since the
    /// project's previous analysis.
    Diff {
        /// Tenant name.
        project: String,
    },
    /// Return the Chrome trace of the project's most recent analyzing
    /// request (recorded per request; only the latest is retained).
    Trace {
        /// Tenant name.
        project: String,
    },
    /// Daemon-level counters: projects, queue, request totals.
    Stats,
    /// The Prometheus metrics registry as text exposition.
    Metrics,
    /// Begin graceful drain: finish queued work, reject new frames,
    /// exit once the queue is empty.
    Shutdown,
}

impl Command {
    /// The command's wire name (for metrics labels).
    pub fn name(&self) -> &'static str {
        match self {
            Command::Register { .. } => "register",
            Command::Analyze { .. } => "analyze",
            Command::Explain { .. } => "explain",
            Command::Diff { .. } => "diff",
            Command::Trace { .. } => "trace",
            Command::Stats => "stats",
            Command::Metrics => "metrics",
            Command::Shutdown => "shutdown",
        }
    }
}

/// Fault injected into a handler, parsed only when the daemon runs with
/// `CFINDER_SERVE_FAULTS=1` (the fault-frame test suite). In a normal
/// daemon the `fault` field is ignored like any other unknown field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the handler (must surface as `internal-panic`).
    Panic,
    /// Sleep this long inside the handler (drives deadline/overload
    /// tests without huge inputs).
    SleepMs(u64),
}

/// A request that failed to decode: the best-effort recovered id, the
/// typed code, and a human detail line.
#[derive(Debug, Clone)]
pub struct FrameError {
    /// Echoable id (`null` when none could be recovered).
    pub id: Value,
    /// Typed failure class.
    pub code: ErrorCode,
    /// Human-readable detail for the error frame.
    pub message: String,
}

impl FrameError {
    fn new(id: Value, code: ErrorCode, message: impl Into<String>) -> Self {
        FrameError { id, code, message: message.into() }
    }
}

/// Decodes one frame line into a [`Request`]. Total: every failure is a
/// typed [`FrameError`], never a panic or a dropped frame.
pub fn parse_request(line: &str, faults_enabled: bool) -> Result<Request, FrameError> {
    let value: Value = match serde_json::from_str(line.trim()) {
        Ok(v) => v,
        Err(e) => {
            return Err(FrameError::new(
                Value::Null,
                ErrorCode::MalformedFrame,
                format!("frame is not valid JSON: {e}"),
            ))
        }
    };
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    if value.as_map().is_none() {
        return Err(FrameError::new(id, ErrorCode::MalformedFrame, "frame is not a JSON object"));
    }
    let cmd = match value.get("cmd").and_then(Value::as_str) {
        Some(cmd) => cmd,
        None => {
            return Err(FrameError::new(
                id,
                ErrorCode::MalformedFrame,
                "frame has no string `cmd` field",
            ))
        }
    };

    let bad = |msg: String| FrameError::new(id.clone(), ErrorCode::BadRequest, msg);
    let req_string = |field: &str| -> Result<String, FrameError> {
        value
            .get(field)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad(format!("`{cmd}` requires a string `{field}` field")))
    };
    let opt_u64 = |field: &str| -> Result<Option<u64>, FrameError> {
        match value.get(field) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| bad(format!("`{field}` must be a non-negative integer"))),
        }
    };

    let command = match cmd {
        "register" => Command::Register {
            project: req_string("project")?,
            dir: PathBuf::from(req_string("dir")?),
            schema: match value.get("schema") {
                None | Some(Value::Null) => None,
                Some(v) => Some(PathBuf::from(
                    v.as_str().ok_or_else(|| bad("`schema` must be a string path".into()))?,
                )),
            },
        },
        "analyze" => Command::Analyze {
            project: req_string("project")?,
            deadline_ms: opt_u64("deadline_ms")?,
            file_deadline_ms: opt_u64("file_deadline_ms")?,
            ablate: match value.get("ablate") {
                None | Some(Value::Null) => Vec::new(),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| bad("`ablate` must be an array of flag names".into()))?
                    .iter()
                    .map(|f| {
                        f.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| bad("`ablate` entries must be strings".into()))
                    })
                    .collect::<Result<_, _>>()?,
            },
            fault: if faults_enabled { parse_fault(&value, &bad)? } else { None },
        },
        "explain" => {
            Command::Explain { project: req_string("project")?, target: req_string("target")? }
        }
        "diff" => Command::Diff { project: req_string("project")? },
        "trace" => Command::Trace { project: req_string("project")? },
        "stats" => Command::Stats,
        "metrics" => Command::Metrics,
        "shutdown" => Command::Shutdown,
        other => {
            return Err(FrameError::new(
                id,
                ErrorCode::UnknownCommand,
                format!("unknown command `{other}`"),
            ))
        }
    };
    Ok(Request { id, cmd: command })
}

fn parse_fault(
    value: &Value,
    bad: &dyn Fn(String) -> FrameError,
) -> Result<Option<Fault>, FrameError> {
    let Some(spec) = value.get("fault") else { return Ok(None) };
    let Some(spec) = spec.as_str() else {
        return Err(bad("`fault` must be a string".into()));
    };
    if spec == "panic" {
        return Ok(Some(Fault::Panic));
    }
    if let Some(ms) = spec.strip_prefix("sleep:") {
        let ms = ms.parse::<u64>().map_err(|_| bad(format!("bad fault spec `{spec}`")))?;
        return Ok(Some(Fault::SleepMs(ms)));
    }
    Err(bad(format!("unknown fault `{spec}` (expected `panic` or `sleep:<ms>`)")))
}

/// Renders a success frame (`id` echoed, insertion-ordered keys, one
/// line, no interior newlines).
pub fn ok_frame(id: &Value, result: Value) -> String {
    let frame = Value::Map(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Value::Bool(true)),
        ("result".into(), result),
    ]);
    serde_json::to_string(&frame).expect("frame serialization cannot fail")
}

/// Renders a typed error frame. `retry_after_ms` is attached only for
/// [`ErrorCode::Overloaded`]-style retryable rejections.
pub fn error_frame(
    id: &Value,
    code: ErrorCode,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut error = vec![
        ("code".into(), Value::Str(code.label().into())),
        ("message".into(), Value::Str(message.into())),
    ];
    if let Some(ms) = retry_after_ms {
        error.push(("retry_after_ms".into(), Value::UInt(ms)));
    }
    let frame = Value::Map(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Map(error)),
    ]);
    serde_json::to_string(&frame).expect("frame serialization cannot fail")
}

/// Outcome of reading one frame line.
#[derive(Debug)]
pub enum Frame {
    /// A complete line within the byte cap (newline stripped).
    Line(String),
    /// A line that blew the cap; it was consumed (through its newline)
    /// and discarded, so the stream stays frame-aligned. Carries the
    /// number of bytes discarded so far.
    Oversized(usize),
    /// End of input.
    Eof,
}

/// Reads one newline-delimited frame, enforcing `max_bytes`. An
/// oversized line is drained to its terminating newline so exactly one
/// typed error answers it and the next frame parses cleanly. I/O errors
/// (other than interrupts, which are retried) are returned as `Err` and
/// end the session — there is no way to stay frame-aligned on a broken
/// pipe.
pub fn read_frame(reader: &mut impl BufRead, max_bytes: usize) -> io::Result<Frame> {
    let mut line: Vec<u8> = Vec::new();
    let mut discarded = 0usize;
    let mut over = false;
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            // EOF. A non-empty partial line without a trailing newline is
            // still one frame — clients that end with `printf '%s' …` are
            // answered, not dropped.
            return Ok(match (line.is_empty(), over) {
                (_, true) => Frame::Oversized(discarded),
                (true, false) => Frame::Eof,
                (false, false) => Frame::Line(String::from_utf8_lossy(&line).into_owned()),
            });
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(buf.len());
        if !over {
            let chunk = &buf[..take - usize::from(newline.is_some())];
            if line.len() + chunk.len() > max_bytes {
                over = true;
                discarded = line.len() + chunk.len();
                line.clear();
            } else {
                line.extend_from_slice(chunk);
            }
        } else {
            discarded += take;
        }
        reader.consume(take);
        if newline.is_some() {
            return Ok(if over {
                Frame::Oversized(discarded)
            } else {
                Frame::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_every_command() {
        for (line, name) in [
            (r#"{"id":1,"cmd":"register","project":"p","dir":"/tmp/x"}"#, "register"),
            (r#"{"id":2,"cmd":"analyze","project":"p"}"#, "analyze"),
            (r#"{"id":3,"cmd":"explain","project":"p","target":"User.email"}"#, "explain"),
            (r#"{"id":4,"cmd":"diff","project":"p"}"#, "diff"),
            (r#"{"id":8,"cmd":"trace","project":"p"}"#, "trace"),
            (r#"{"id":5,"cmd":"stats"}"#, "stats"),
            (r#"{"id":6,"cmd":"metrics"}"#, "metrics"),
            (r#"{"id":7,"cmd":"shutdown"}"#, "shutdown"),
        ] {
            let req = parse_request(line, false).expect(line);
            assert_eq!(req.cmd.name(), name, "{line}");
        }
    }

    #[test]
    fn malformed_and_bad_frames_map_to_typed_codes() {
        for (line, code) in [
            ("not json at all", ErrorCode::MalformedFrame),
            ("[1,2,3]", ErrorCode::MalformedFrame),
            (r#"{"id":9}"#, ErrorCode::MalformedFrame),
            (r#"{"id":9,"cmd":"launch-missiles"}"#, ErrorCode::UnknownCommand),
            (r#"{"id":9,"cmd":"analyze"}"#, ErrorCode::BadRequest),
            (
                r#"{"id":9,"cmd":"analyze","project":"p","deadline_ms":"soon"}"#,
                ErrorCode::BadRequest,
            ),
            (r#"{"id":9,"cmd":"analyze","project":"p","ablate":"check"}"#, ErrorCode::BadRequest),
        ] {
            let err = parse_request(line, false).expect_err(line);
            assert_eq!(err.code, code, "{line}");
        }
    }

    #[test]
    fn id_is_recovered_from_bad_frames_when_present() {
        let err = parse_request(r#"{"id":"req-7","cmd":"nope"}"#, false).unwrap_err();
        assert_eq!(err.id, Value::Str("req-7".into()));
        let err = parse_request("garbage", false).unwrap_err();
        assert!(err.id.is_null());
    }

    #[test]
    fn fault_field_is_inert_unless_enabled() {
        let line = r#"{"id":1,"cmd":"analyze","project":"p","fault":"panic"}"#;
        let Command::Analyze { fault, .. } = parse_request(line, false).unwrap().cmd else {
            panic!("not analyze")
        };
        assert_eq!(fault, None);
        let Command::Analyze { fault, .. } = parse_request(line, true).unwrap().cmd else {
            panic!("not analyze")
        };
        assert_eq!(fault, Some(Fault::Panic));
        let line = r#"{"id":1,"cmd":"analyze","project":"p","fault":"sleep:250"}"#;
        let Command::Analyze { fault, .. } = parse_request(line, true).unwrap().cmd else {
            panic!("not analyze")
        };
        assert_eq!(fault, Some(Fault::SleepMs(250)));
    }

    #[test]
    fn read_frame_bounds_hostile_lines_and_stays_aligned() {
        let huge = "x".repeat(5000);
        let input = format!("short\n{huge}\nafter\n");
        let mut r = Cursor::new(input.into_bytes());
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), Frame::Line(l) if l == "short"));
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), Frame::Oversized(n) if n >= 5000));
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), Frame::Line(l) if l == "after"));
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), Frame::Eof));
    }

    #[test]
    fn read_frame_answers_a_final_unterminated_line() {
        let mut r = Cursor::new(b"{\"cmd\":\"stats\"}".to_vec());
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), Frame::Line(_)));
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), Frame::Eof));
    }

    #[test]
    fn frames_are_single_lines_with_echoed_ids() {
        let ok = ok_frame(&Value::UInt(3), Value::Map(vec![("a".into(), Value::Int(1))]));
        assert!(!ok.contains('\n'));
        assert!(ok.contains("\"id\":3"));
        let err = error_frame(&Value::Str("x".into()), ErrorCode::Overloaded, "full", Some(25));
        assert!(err.contains("\"code\":\"overloaded\""));
        assert!(err.contains("\"retry_after_ms\":25"));
    }
}
