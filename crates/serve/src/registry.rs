//! Multi-tenant project registry: per-project state, single-flight
//! analysis locks, and deterministic source loading.
//!
//! A *project* is a registered (name, source directory, optional schema
//! file) triple. The daemon re-reads sources from disk on every analyze
//! — that is what makes mid-round source mutation safe — and relies on
//! the incremental cache to make the re-read cheap (a warm run parses 0
//! files). Each project carries one **single-flight mutex**: two
//! concurrent analyze requests for the same tenant serialize instead of
//! racing the cache and each other's diff baseline; different tenants
//! proceed in parallel.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cfinder_core::{AnalysisReport, AppSource, SourceFile};
use cfinder_schema::Schema;
use parking_lot::{Mutex, RwLock};

/// Mutable per-project state, guarded by the single-flight lock.
#[derive(Default)]
pub struct ProjectState {
    /// The previous analysis (the `diff` baseline).
    pub last_report: Option<AnalysisReport>,
    /// Completed analyses (any command that ran the pipeline).
    pub analyses: u64,
    /// Chrome trace of the most recent analyzing request. Only the
    /// latest is retained (bounded memory per tenant); served by the
    /// `trace` command.
    pub last_trace: Option<String>,
}

/// One registered tenant.
pub struct Project {
    /// Tenant name (the `project` field of request frames).
    pub name: String,
    /// Source directory, re-read on every analysis.
    pub dir: PathBuf,
    /// Optional declared-schema JSON file, re-read on every analysis.
    pub schema_path: Option<PathBuf>,
    /// Single-flight lock: holds [`ProjectState`] and serializes
    /// analyses of this project.
    pub flight: Mutex<ProjectState>,
}

impl Project {
    /// Loads the project's sources and declared schema from disk.
    /// Deterministic: files sorted by repository-relative path, exactly
    /// like the one-shot CLI loader, so a daemon answer is
    /// byte-comparable to a `cfinder <dir>` run. Every failure is a
    /// diagnostic string (mapped to `project-unusable` by the daemon).
    pub fn load(&self) -> Result<(AppSource, Schema), String> {
        let mut files = Vec::new();
        collect_py_files(&self.dir, &self.dir, &mut files)
            .map_err(|e| format!("reading {}: {e}", self.dir.display()))?;
        if files.is_empty() {
            return Err(format!("no .py files under {}", self.dir.display()));
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        let declared = match &self.schema_path {
            Some(p) => {
                let text =
                    fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
                Schema::from_json(&text).map_err(|e| format!("parsing {}: {e}", p.display()))?
            }
            None => Schema::new(),
        };
        Ok((AppSource::new(self.name.clone(), files), declared))
    }
}

fn collect_py_files(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_py_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "py") {
            let text = fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).display().to_string();
            out.push(SourceFile::new(rel, text));
        }
    }
    Ok(())
}

/// The tenant table. Registration replaces (a re-register points the
/// name at a new directory and resets its diff baseline); lookups hand
/// out `Arc`s so a concurrent re-register never invalidates an in-flight
/// analysis.
#[derive(Default)]
pub struct Registry {
    projects: RwLock<BTreeMap<String, Arc<Project>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or replaces) a project.
    pub fn register(&self, name: &str, dir: PathBuf, schema_path: Option<PathBuf>) -> Arc<Project> {
        let project = Arc::new(Project {
            name: name.to_string(),
            dir,
            schema_path,
            flight: Mutex::new(ProjectState::default()),
        });
        self.projects.write().insert(name.to_string(), project.clone());
        project
    }

    /// Looks up a tenant by name.
    pub fn get(&self, name: &str) -> Option<Arc<Project>> {
        self.projects.read().get(name).cloned()
    }

    /// Snapshot of every registered project, name-ordered.
    pub fn all(&self) -> Vec<Arc<Project>> {
        self.projects.read().values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("cfinder-serve-registry-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn load_is_deterministic_and_named_after_the_tenant() {
        let dir = tmp("load");
        fs::create_dir_all(dir.join("sub")).unwrap();
        fs::write(dir.join("b.py"), "x = 1\n").unwrap();
        fs::write(dir.join("a.py"), "y = 2\n").unwrap();
        fs::write(dir.join("sub/c.py"), "z = 3\n").unwrap();
        fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let registry = Registry::new();
        let project = registry.register("tenant-a", dir.clone(), None);
        let (app, _) = project.load().unwrap();
        assert_eq!(app.name, "tenant-a");
        let paths: Vec<&str> = app.files.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths, ["a.py", "b.py", "sub/c.py"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_failures_are_diagnostic_strings() {
        let dir = tmp("empty");
        let registry = Registry::new();
        let project = registry.register("empty", dir.clone(), None);
        let err = project.load().unwrap_err();
        assert!(err.contains("no .py files"), "{err}");
        let gone = registry.register("gone", dir.join("missing"), None);
        assert!(gone.load().is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reregister_replaces_and_resets_the_baseline() {
        let dir = tmp("rereg");
        fs::write(dir.join("a.py"), "x = 1\n").unwrap();
        let registry = Registry::new();
        let first = registry.register("p", dir.clone(), None);
        first.flight.lock().analyses = 7;
        let second = registry.register("p", dir.clone(), None);
        assert_eq!(second.flight.lock().analyses, 0);
        assert_eq!(registry.all().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
