//! The daemon loop: one reader thread feeding a bounded queue drained
//! by a fixed worker pool, every response serialized through one writer
//! lock.
//!
//! # Crash-proofing invariants
//!
//! * **One response per frame.** Every line of input — valid, malformed,
//!   oversized, mid-drain — produces exactly one frame on stdout, so a
//!   pipelining client can always re-associate by `id`.
//! * **Panics are request-scoped.** Handlers run under
//!   `catch_unwind`; a panic becomes an `internal-panic` error frame
//!   (the analysis engine additionally isolates per-file panics below
//!   this boundary, so this is the second fence, not the first).
//! * **Deadlines are honored twice.** A request-level `deadline_ms` is
//!   checked at dequeue (a request that expired waiting in the queue is
//!   refused before any work) and again after handling (a result
//!   computed too late is reported as `deadline-exceeded`, not as a
//!   stale success).
//! * **Backpressure is typed.** A full queue answers `overloaded` with
//!   a `retry_after_ms` hint scaled by occupancy; `stats` and `metrics`
//!   are handled on the reader thread so observability keeps working
//!   while the pool is saturated.
//! * **Drain is graceful.** `shutdown` (or EOF on stdin — the SIGTERM
//!   analogue under pure-std constraints) closes the queue: accepted
//!   requests finish and are answered, new frames get `shutting-down`,
//!   and the final metrics snapshot is returned to the caller.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, Write};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cfinder_core::{
    effective_deadline, AnalysisCache, AnalysisReport, CFinder, CFinderOptions, CacheError, Limits,
    Obs,
};
use cfinder_obs::{Metrics, Profiler, Tracer};
use parking_lot::Mutex;
use serde_json::Value;

use crate::protocol::{self, error_frame, ok_frame, Command, ErrorCode, Fault, Frame};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::{Project, Registry};

/// Environment variable that arms the request-level fault hooks
/// (`"fault": "panic"` / `"fault": "sleep:<ms>"`) for the daemon's own
/// fault-injection suite. Off by default; an un-armed daemon treats the
/// field as any other unknown field.
pub const FAULTS_ENV: &str = "CFINDER_SERVE_FAULTS";

/// Daemon configuration (one per [`serve`] call).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it answer `overloaded`.
    pub queue_capacity: usize,
    /// Frame byte cap; longer lines answer `oversized-frame`.
    pub max_frame_bytes: usize,
    /// Incremental-cache directory shared by every project (optional).
    pub cache_dir: Option<PathBuf>,
    /// Whether the request-level fault hooks are armed ([`FAULTS_ENV`]).
    pub faults_enabled: bool,
    /// Append-mode JSONL slow-request log (optional). Requests whose
    /// queue wait plus handling time reaches [`ServeConfig::slow_threshold_ms`]
    /// append one structured record.
    pub slow_log: Option<PathBuf>,
    /// Slow-request threshold in milliseconds (default 500). Slow
    /// requests are counted in `cfinder_serve_slow_requests_total`
    /// whether or not a log file is configured.
    pub slow_threshold_ms: u64,
    /// Sampling-profiler rate in Hz (optional). When set, every
    /// per-request tracer feeds one daemon-wide wall-clock profiler and
    /// `stats` reports the accumulated sample count.
    pub profile_hz: Option<u32>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(4),
            queue_capacity: 64,
            max_frame_bytes: 1 << 20,
            cache_dir: None,
            faults_enabled: std::env::var(FAULTS_ENV).is_ok_and(|v| v == "1"),
            slow_log: None,
            slow_threshold_ms: 500,
            profile_hz: None,
        }
    }
}

/// What the daemon did over its lifetime, returned when the session
/// drains — the "flush metrics" half of graceful shutdown.
#[derive(Debug)]
pub struct ServeSummary {
    /// Request frames decoded (including ones answered with errors).
    pub requests: u64,
    /// Typed error frames written, all codes.
    pub errors: u64,
    /// `overloaded` rejections among them.
    pub rejected: u64,
    /// Final Prometheus text exposition of the daemon registry.
    pub metrics_text: String,
}

/// One accepted unit of queued work.
struct Job {
    id: Value,
    cmd: Command,
    accepted: Instant,
    deadline: Option<Instant>,
}

/// Handler outcome: a result value or a typed error with detail.
type HandleResult = Result<Value, (ErrorCode, String)>;

struct Shared<W: Write> {
    config: ServeConfig,
    registry: Registry,
    queue: BoundedQueue<Job>,
    out: Mutex<W>,
    metrics: Metrics,
    /// Daemon-wide sampling profiler; disabled unless
    /// [`ServeConfig::profile_hz`] is set. Every per-request tracer
    /// clones this handle, so one sampler observes all workers.
    profiler: Profiler,
    /// Session epoch: `ts_ms` in slow-log records counts from here.
    epoch: Instant,
    /// Open slow-request log, line-buffered under its own lock.
    slow_log: Option<Mutex<File>>,
    shutting_down: AtomicBool,
    /// Cache handles memoized per analyzer configuration: each distinct
    /// (options, limits) pair addresses its own fingerprint shard, and
    /// reusing the handle keeps its open-probe cost out of the hot path.
    caches: Mutex<Vec<(CacheKey, Arc<AnalysisCache>)>>,
}

/// The fields of (options, limits) that select a cache fingerprint.
type CacheKey = (CFinderOptions, Option<Duration>, usize, usize);

impl<W: Write> Shared<W> {
    fn respond_ok(&self, id: &Value, result: Value) {
        self.write_line(&ok_frame(id, result));
    }

    fn respond_err(&self, id: &Value, code: ErrorCode, message: &str, retry_after_ms: Option<u64>) {
        self.metrics.add_labeled("cfinder_serve_errors_total", "code", code.label(), 1);
        self.write_line(&error_frame(id, code, message, retry_after_ms));
    }

    fn write_line(&self, frame: &str) {
        // A broken stdout cannot be answered to; keep serving the rest
        // of the session rather than dying mid-drain.
        let mut out = self.out.lock();
        let _ = writeln!(out, "{frame}");
        let _ = out.flush();
    }

    fn cache_for(
        &self,
        options: &CFinderOptions,
        limits: &Limits,
    ) -> Result<Option<Arc<AnalysisCache>>, CacheError> {
        let Some(dir) = &self.config.cache_dir else { return Ok(None) };
        let key: CacheKey = (
            *options,
            effective_deadline(options, limits),
            limits.max_file_bytes,
            limits.max_tokens,
        );
        let mut caches = self.caches.lock();
        if let Some((_, cache)) = caches.iter().find(|(k, _)| *k == key) {
            return Ok(Some(cache.clone()));
        }
        let cache = Arc::new(AnalysisCache::open(dir, options, limits)?);
        caches.push((key, cache.clone()));
        Ok(Some(cache))
    }
}

/// Runs the daemon over `input`/`output` until EOF or a `shutdown`
/// request, then drains and returns the session summary. Never panics
/// on any input; returns `Err` only for I/O errors on `input` itself
/// (a broken stdin cannot be served).
pub fn serve<R, W>(config: ServeConfig, mut input: R, output: W) -> io::Result<ServeSummary>
where
    R: BufRead,
    W: Write + Send,
{
    // Open the slow log before accepting any work: an unwritable path
    // is a startup error, not a silent per-request drop.
    let slow_log = match &config.slow_log {
        Some(path) => Some(Mutex::new(OpenOptions::new().create(true).append(true).open(path)?)),
        None => None,
    };
    let shared = Shared {
        registry: Registry::new(),
        queue: BoundedQueue::new(config.queue_capacity),
        out: Mutex::new(output),
        metrics: Metrics::enabled(),
        profiler: match config.profile_hz {
            Some(hz) => Profiler::enabled(hz),
            None => Profiler::disabled(),
        },
        epoch: Instant::now(),
        slow_log,
        shutting_down: AtomicBool::new(false),
        caches: Mutex::new(Vec::new()),
        config,
    };
    let workers = shared.config.workers.max(1);

    let read_error = crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| worker_loop(&shared));
        }
        let err = reader_loop(&shared, &mut input);
        // EOF, shutdown, or a dead stdin: no new work can arrive. Close
        // the queue so workers finish what was accepted and exit; the
        // scope joins them before we return.
        shared.queue.close();
        err
    })
    .expect("daemon worker panicked outside the request fence");

    // Stop the sampler before tearing the daemon down; samples stay
    // available through metrics until the handle drops.
    shared.profiler.stop();
    shared.metrics.add("cfinder_profile_samples_total", shared.profiler.report().total_samples());
    let snapshot = shared.metrics.snapshot();
    let summary = ServeSummary {
        requests: snapshot.family_total("cfinder_serve_requests_total"),
        errors: snapshot.family_total("cfinder_serve_errors_total"),
        rejected: snapshot.counter("cfinder_serve_rejected_total"),
        metrics_text: shared.metrics.to_prometheus_text(),
    };
    match read_error {
        Some(e) => Err(e),
        None => Ok(summary),
    }
}

/// Reads frames until EOF or `shutdown`, enqueueing work and answering
/// everything that never reaches the queue. Returns the input I/O error
/// that ended the session, if any.
fn reader_loop<W: Write>(shared: &Shared<W>, input: &mut impl BufRead) -> Option<io::Error> {
    loop {
        let frame = match protocol::read_frame(input, shared.config.max_frame_bytes) {
            Ok(frame) => frame,
            Err(e) => return Some(e),
        };
        let line = match frame {
            Frame::Eof => return None,
            Frame::Oversized(bytes) => {
                shared.respond_err(
                    &Value::Null,
                    ErrorCode::OversizedFrame,
                    &format!(
                        "frame of {bytes} bytes exceeds the {}-byte cap",
                        shared.config.max_frame_bytes
                    ),
                    None,
                );
                continue;
            }
            Frame::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match protocol::parse_request(&line, shared.config.faults_enabled) {
            Ok(request) => request,
            Err(fe) => {
                shared.respond_err(&fe.id, fe.code, &fe.message, None);
                continue;
            }
        };
        shared.metrics.add_labeled("cfinder_serve_requests_total", "cmd", request.cmd.name(), 1);
        match request.cmd {
            Command::Shutdown => {
                shared.shutting_down.store(true, Ordering::SeqCst);
                shared.queue.close();
                shared.respond_ok(
                    &request.id,
                    Value::Map(vec![("draining".into(), Value::Bool(true))]),
                );
                // Keep reading: frames that arrive mid-drain are answered
                // `shutting-down` (and `stats`/`metrics` still work) until
                // the client closes its end.
            }
            // Observability stays on the reader thread: `stats` and
            // `metrics` must answer even when every worker is busy and
            // the queue is refusing work.
            Command::Stats => {
                let result = stats_result(shared);
                shared.respond_ok(&request.id, result);
            }
            Command::Metrics => {
                let text = shared.metrics.to_prometheus_text();
                shared.respond_ok(
                    &request.id,
                    Value::Map(vec![("prometheus".into(), Value::Str(text))]),
                );
            }
            cmd => enqueue(shared, request.id, cmd),
        }
    }
}

fn enqueue<W: Write>(shared: &Shared<W>, id: Value, cmd: Command) {
    if shared.shutting_down.load(Ordering::SeqCst) {
        shared.respond_err(&id, ErrorCode::ShuttingDown, "daemon is draining", None);
        return;
    }
    let deadline_ms = match &cmd {
        Command::Analyze { deadline_ms, .. } => *deadline_ms,
        _ => None,
    };
    let accepted = Instant::now();
    let job = Job {
        id: id.clone(),
        cmd,
        accepted,
        deadline: deadline_ms.map(|ms| accepted + Duration::from_millis(ms)),
    };
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full { depth }) => {
            shared.metrics.inc("cfinder_serve_rejected_total");
            // Heuristic hint: deeper backlog, longer suggested backoff.
            let retry_after_ms = 10 + 10 * depth as u64 / shared.config.workers.max(1) as u64;
            shared.respond_err(
                &id,
                ErrorCode::Overloaded,
                &format!("queue full ({depth}/{})", shared.queue.capacity()),
                Some(retry_after_ms),
            );
        }
        Err(PushError::Closed) => {
            shared.respond_err(&id, ErrorCode::ShuttingDown, "daemon is draining", None);
        }
    }
}

fn worker_loop<W: Write>(shared: &Shared<W>) {
    while let Some(job) = shared.queue.pop() {
        let queue_wait = job.accepted.elapsed();
        shared.metrics.observe("cfinder_serve_queue_wait_seconds", queue_wait.as_secs_f64());
        if let Some(deadline) = job.deadline {
            if Instant::now() > deadline {
                shared.respond_err(
                    &job.id,
                    ErrorCode::DeadlineExceeded,
                    "deadline elapsed while queued",
                    None,
                );
                log_slow(shared, &job, queue_wait, Duration::ZERO, "deadline-exceeded");
                continue;
            }
        }
        let started = Instant::now();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| handle(shared, &job.id, &job.cmd)));
        let handle_time = started.elapsed();
        shared.metrics.observe("cfinder_serve_handle_seconds", handle_time.as_secs_f64());
        // Post-check: a result computed after the budget is a typed
        // overrun, never a silently late success. Evaluated once so the
        // response and the slow-log record agree on the outcome.
        let late = job.deadline.is_some_and(|d| Instant::now() > d);
        let label = match &outcome {
            Ok(Ok(_)) if late => ErrorCode::DeadlineExceeded.label(),
            Ok(Ok(_)) => "ok",
            Ok(Err((code, _))) => code.label(),
            Err(_) => ErrorCode::InternalPanic.label(),
        };
        match outcome {
            Ok(Ok(result)) => {
                if late {
                    shared.respond_err(
                        &job.id,
                        ErrorCode::DeadlineExceeded,
                        "handling outlived the request deadline",
                        None,
                    );
                } else {
                    shared.respond_ok(&job.id, result);
                }
            }
            Ok(Err((code, message))) => shared.respond_err(&job.id, code, &message, None),
            Err(payload) => {
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                shared.respond_err(
                    &job.id,
                    ErrorCode::InternalPanic,
                    &format!("handler panicked: {detail}"),
                    None,
                );
            }
        }
        log_slow(shared, &job, queue_wait, handle_time, label);
    }
}

/// Counts a slow request (queue wait plus handling at or above the
/// configured threshold) and appends one JSONL record to the slow log
/// when one is configured. The record is self-contained: session-
/// relative timestamp, request id, command, tenant, the wait/handle
/// split, and the outcome the client was told.
fn log_slow<W: Write>(
    shared: &Shared<W>,
    job: &Job,
    queue_wait: Duration,
    handle_time: Duration,
    outcome: &str,
) {
    let total = queue_wait + handle_time;
    if total < Duration::from_millis(shared.config.slow_threshold_ms) {
        return;
    }
    shared.metrics.inc("cfinder_serve_slow_requests_total");
    let Some(log) = &shared.slow_log else { return };
    let project = match &job.cmd {
        Command::Register { project, .. }
        | Command::Analyze { project, .. }
        | Command::Explain { project, .. }
        | Command::Diff { project }
        | Command::Trace { project } => Value::Str(project.clone()),
        Command::Stats | Command::Metrics | Command::Shutdown => Value::Null,
    };
    let record = Value::Map(vec![
        ("ts_ms".into(), Value::UInt(shared.epoch.elapsed().as_millis() as u64)),
        ("id".into(), job.id.clone()),
        ("cmd".into(), Value::Str(job.cmd.name().to_string())),
        ("project".into(), project),
        ("queue_wait_ms".into(), Value::Float(queue_wait.as_secs_f64() * 1000.0)),
        ("handle_ms".into(), Value::Float(handle_time.as_secs_f64() * 1000.0)),
        ("total_ms".into(), Value::Float(total.as_secs_f64() * 1000.0)),
        ("outcome".into(), Value::Str(outcome.to_string())),
    ]);
    let line = serde_json::to_string(&record).expect("slow-log serialization cannot fail");
    // A full disk must not take the daemon down with it; the metric
    // above still counts the request.
    let mut file = log.lock();
    let _ = writeln!(file, "{line}");
    let _ = file.flush();
}

fn handle<W: Write>(shared: &Shared<W>, id: &Value, cmd: &Command) -> HandleResult {
    match cmd {
        Command::Register { project, dir, schema } => {
            register(shared, project, dir.clone(), schema.clone())
        }
        Command::Analyze { project, file_deadline_ms, ablate, fault, .. } => {
            if let Some(fault) = fault {
                match fault {
                    Fault::Panic => panic!("injected fault: panic"),
                    Fault::SleepMs(ms) => std::thread::sleep(Duration::from_millis(*ms)),
                }
            }
            analyze(shared, id, project, *file_deadline_ms, ablate)
        }
        Command::Explain { project, target } => explain(shared, id, project, target),
        Command::Diff { project } => diff(shared, id, project),
        Command::Trace { project } => trace(shared, project),
        // Handled on the reader thread; unreachable here but total anyway.
        Command::Stats => Ok(stats_result(shared)),
        Command::Metrics => Ok(Value::Map(vec![(
            "prometheus".into(),
            Value::Str(shared.metrics.to_prometheus_text()),
        )])),
        Command::Shutdown => Ok(Value::Map(vec![("draining".into(), Value::Bool(true))])),
    }
}

fn register<W: Write>(
    shared: &Shared<W>,
    name: &str,
    dir: PathBuf,
    schema: Option<PathBuf>,
) -> HandleResult {
    // Validate by loading once *before* publishing the registration, so
    // a bad directory never becomes an addressable tenant.
    let candidate = Project {
        name: name.to_string(),
        dir: dir.clone(),
        schema_path: schema.clone(),
        flight: parking_lot::Mutex::new(Default::default()),
    };
    let (app, _) = candidate.load().map_err(|detail| (ErrorCode::ProjectUnusable, detail))?;
    shared.registry.register(name, dir, schema);
    Ok(Value::Map(vec![
        ("project".into(), Value::Str(name.to_string())),
        ("files".into(), Value::UInt(app.files.len() as u64)),
    ]))
}

/// What a successful analysis hands back: the tenant, the fresh report,
/// and the tenant's previous report (the `diff` baseline).
type AnalysisOutcome = (Arc<Project>, AnalysisReport, Option<AnalysisReport>);

/// Looks up a tenant, loads its sources, and runs the pipeline under the
/// project's single-flight lock. Every analyzing command (`analyze`,
/// `explain`, `diff`) funnels through here, so no two analyses of one
/// tenant ever race the cache or each other's baseline.
///
/// Each call records its own Chrome trace: a fresh per-request tracer
/// (feeding the daemon-wide profiler, when enabled) wraps the pipeline
/// in a `request` span tagged with the request id and tenant, and the
/// finished trace replaces [`crate::registry::ProjectState::last_trace`]
/// — bounded memory, served by the `trace` command. Tracing never
/// influences the analysis itself, so `stable_json` stays byte-identical
/// to an untraced run.
fn run_analysis<W: Write>(
    shared: &Shared<W>,
    id: &Value,
    cmd_name: &'static str,
    project_name: &str,
    options: CFinderOptions,
) -> Result<AnalysisOutcome, (ErrorCode, String)> {
    let project = shared
        .registry
        .get(project_name)
        .ok_or_else(|| (ErrorCode::UnknownProject, format!("no project `{project_name}`")))?;
    let limits = Limits::from_env();
    let cache = shared
        .cache_for(&options, &limits)
        .map_err(|e| (ErrorCode::CacheUnusable, e.to_string()))?;

    let mut state = project.flight.lock();
    let (app, declared) = project.load().map_err(|detail| (ErrorCode::ProjectUnusable, detail))?;
    let tracer = Tracer::enabled_with_profiler(shared.profiler.clone());
    let report = {
        let mut span = tracer.span("request", || format!("{cmd_name} {project_name}"));
        span.arg("request_id", serde_json::to_string(id).unwrap_or_default());
        span.arg("tenant", project_name.to_string());
        span.arg("cmd", cmd_name.to_string());
        let mut finder = CFinder::with_options(options)
            .with_limits(limits)
            .with_obs(Obs { tracer: tracer.clone(), metrics: shared.metrics.clone() });
        if let Some(cache) = cache {
            finder = finder.with_cache(cache);
        }
        finder.analyze(&app, &declared)
    };
    state.last_trace = Some(tracer.to_chrome_trace());
    let previous = state.last_report.replace(report.clone());
    state.analyses += 1;
    Ok((project.clone(), report, previous))
}

/// Serves the `trace` command: the Chrome trace recorded by the tenant's
/// most recent analyzing request. `available` is `false` (with a null
/// `trace`) for a tenant that has not been analyzed yet.
fn trace<W: Write>(shared: &Shared<W>, project: &str) -> HandleResult {
    let p = shared
        .registry
        .get(project)
        .ok_or_else(|| (ErrorCode::UnknownProject, format!("no project `{project}`")))?;
    let state = p.flight.lock();
    Ok(Value::Map(vec![
        ("project".into(), Value::Str(project.to_string())),
        ("available".into(), Value::Bool(state.last_trace.is_some())),
        (
            "trace".into(),
            match &state.last_trace {
                Some(t) => Value::Str(t.clone()),
                None => Value::Null,
            },
        ),
        ("analyses".into(), Value::UInt(state.analyses)),
    ]))
}

fn analyze<W: Write>(
    shared: &Shared<W>,
    id: &Value,
    project: &str,
    file_deadline_ms: Option<u64>,
    ablate: &[String],
) -> HandleResult {
    let mut options = CFinderOptions::default();
    for flag in ablate {
        match flag.as_str() {
            "null-guard" => options.null_guard_analysis = false,
            "data-dep" => options.data_dependency_checks = false,
            "composite" => options.composite_unique = false,
            "partial" => options.partial_unique = false,
            "check" => options.check_inference = false,
            "default" => options.default_inference = false,
            other => {
                return Err((ErrorCode::BadRequest, format!("unknown ablation flag `{other}`")))
            }
        }
    }
    options.deadline_ms = file_deadline_ms;
    let (_, report, _) = run_analysis(shared, id, "analyze", project, options)?;
    Ok(report_result(&report))
}

/// The analyze result frame: headline counts, the full degradation
/// record (typed incidents + coverage), cache counters, and the exact
/// [`AnalysisReport::stable_json`] string so clients can byte-compare
/// daemon answers against one-shot CLI runs.
fn report_result(report: &AnalysisReport) -> Value {
    let coverage = report.coverage();
    let incidents = report
        .incidents
        .iter()
        .map(|i| {
            Value::Map(vec![
                ("kind".into(), Value::Str(i.kind.to_string())),
                ("file".into(), Value::Str(i.file.clone())),
                ("line".into(), Value::UInt(i.line as u64)),
                ("detail".into(), Value::Str(i.detail.clone())),
            ])
        })
        .collect();
    Value::Map(vec![
        ("app".into(), Value::Str(report.app.clone())),
        ("loc".into(), Value::UInt(report.loc as u64)),
        ("missing".into(), Value::UInt(report.missing.len() as u64)),
        ("existing_covered".into(), Value::UInt(report.existing_covered.len() as u64)),
        ("incidents".into(), Value::Seq(incidents)),
        ("coverage".into(), Value::Str(coverage.to_string())),
        ("coverage_percent".into(), Value::Float(coverage.percent_clean())),
        ("analysis_ms".into(), Value::Float(report.analysis_time.as_secs_f64() * 1000.0)),
        ("cache_hits".into(), Value::UInt(report.timings.cache_hits as u64)),
        ("cache_misses".into(), Value::UInt(report.timings.cache_misses as u64)),
        ("files_parsed".into(), Value::UInt(report.timings.files_parsed as u64)),
        ("stable_json".into(), Value::Str(report.stable_json())),
    ])
}

fn explain<W: Write>(shared: &Shared<W>, id: &Value, project: &str, target: &str) -> HandleResult {
    let (table, column) = match target.split_once('.') {
        Some((t, c)) => (t.to_string(), Some(c.to_string())),
        None => (target.to_string(), None),
    };
    let (_, report, _) = run_analysis(shared, id, "explain", project, CFinderOptions::default())?;
    let matches_target = |c: &cfinder_schema::Constraint| {
        c.table() == table && column.as_deref().is_none_or(|col| c.columns().contains(&col))
    };
    let chain_value = |p: &cfinder_core::Provenance| {
        Value::Map(vec![
            ("pattern".into(), Value::Str(p.pattern.to_string())),
            ("rule".into(), Value::Str(p.rule.to_string())),
            ("file".into(), Value::Str(p.file.clone())),
            ("line".into(), Value::UInt(p.line as u64)),
        ])
    };
    let mut explained = Vec::new();
    for m in &report.missing {
        if !matches_target(&m.constraint) {
            continue;
        }
        explained.push(Value::Map(vec![
            ("constraint".into(), Value::Str(m.constraint.to_string())),
            ("status".into(), Value::Str("missing".into())),
            ("chains".into(), Value::Seq(m.provenance().iter().map(chain_value).collect())),
            ("fix".into(), Value::Str(m.constraint.ddl())),
        ]));
    }
    for constraint in report.existing_covered.iter() {
        if !matches_target(constraint) {
            continue;
        }
        let chains = report
            .detections
            .iter()
            .filter(|d| &d.constraint == constraint)
            .map(|d| chain_value(&d.provenance()))
            .collect();
        explained.push(Value::Map(vec![
            ("constraint".into(), Value::Str(constraint.to_string())),
            ("status".into(), Value::Str("declared".into())),
            ("chains".into(), Value::Seq(chains)),
        ]));
    }
    Ok(Value::Map(vec![
        ("target".into(), Value::Str(target.to_string())),
        ("explained".into(), Value::Seq(explained)),
    ]))
}

fn diff<W: Write>(shared: &Shared<W>, id: &Value, project: &str) -> HandleResult {
    let (_, report, previous) =
        run_analysis(shared, id, "diff", project, CFinderOptions::default())?;
    let current: Vec<String> = report.missing.iter().map(|m| m.constraint.to_string()).collect();
    let baseline: Option<Vec<String>> =
        previous.map(|p| p.missing.iter().map(|m| m.constraint.to_string()).collect());
    let (added, removed, unchanged) = match &baseline {
        Some(old) => {
            let added: Vec<&String> = current.iter().filter(|c| !old.contains(c)).collect();
            let removed: Vec<&String> = old.iter().filter(|c| !current.contains(c)).collect();
            let unchanged = current.len() - added.len();
            (added, removed, unchanged)
        }
        // First analysis of the tenant: everything is new.
        None => (current.iter().collect(), Vec::new(), 0),
    };
    Ok(Value::Map(vec![
        ("project".into(), Value::Str(project.to_string())),
        ("baseline".into(), Value::Bool(baseline.is_some())),
        ("added".into(), Value::Seq(added.into_iter().map(|c| Value::Str(c.clone())).collect())),
        (
            "removed".into(),
            Value::Seq(removed.into_iter().map(|c| Value::Str(c.clone())).collect()),
        ),
        ("unchanged".into(), Value::UInt(unchanged as u64)),
    ]))
}

fn stats_result<W: Write>(shared: &Shared<W>) -> Value {
    let projects = shared
        .registry
        .all()
        .iter()
        .map(|p| {
            let state = p.flight.lock();
            Value::Map(vec![
                ("name".into(), Value::Str(p.name.clone())),
                ("dir".into(), Value::Str(p.dir.display().to_string())),
                ("analyses".into(), Value::UInt(state.analyses)),
            ])
        })
        .collect();
    let snapshot = shared.metrics.snapshot();
    // p50/p95/p99 estimated from the request-scaled histogram ladder;
    // all-zero until the family has at least one observation.
    let latency = |family: &str| {
        let qs = snapshot.quantiles(family).unwrap_or([0.0; 3]);
        Value::Map(vec![
            ("p50".into(), Value::Float(qs[0])),
            ("p95".into(), Value::Float(qs[1])),
            ("p99".into(), Value::Float(qs[2])),
        ])
    };
    Value::Map(vec![
        ("projects".into(), Value::Seq(projects)),
        ("queue_depth".into(), Value::UInt(shared.queue.depth() as u64)),
        ("queue_capacity".into(), Value::UInt(shared.queue.capacity() as u64)),
        ("workers".into(), Value::UInt(shared.config.workers as u64)),
        (
            "requests_total".into(),
            Value::UInt(snapshot.family_total("cfinder_serve_requests_total")),
        ),
        ("errors_total".into(), Value::UInt(snapshot.family_total("cfinder_serve_errors_total"))),
        ("rejected_total".into(), Value::UInt(snapshot.counter("cfinder_serve_rejected_total"))),
        (
            "slow_requests_total".into(),
            Value::UInt(snapshot.counter("cfinder_serve_slow_requests_total")),
        ),
        (
            "latency_seconds".into(),
            Value::Map(vec![
                ("queue_wait".into(), latency("cfinder_serve_queue_wait_seconds")),
                ("handle".into(), latency("cfinder_serve_handle_seconds")),
            ]),
        ),
        ("profile_samples_total".into(), Value::UInt(shared.profiler.report().total_samples())),
        ("shutting_down".into(), Value::Bool(shared.shutting_down.load(Ordering::SeqCst))),
    ])
}
