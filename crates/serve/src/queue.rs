//! The daemon's bounded request queue — the backpressure boundary.
//!
//! Producers never block: a full queue is a typed [`PushError::Full`]
//! rejection (the reader turns it into an `overloaded` error frame with
//! a retry-after hint) so a flood of requests degrades into fast, honest
//! refusals instead of unbounded memory growth or a wedged reader.
//! Consumers block on a condvar until work arrives or the queue closes.
//!
//! Built on `std::sync`'s `Mutex` + `Condvar` (the vendored
//! `parking_lot` deliberately ships no condvar).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; `depth` is the occupancy at refusal.
    Full {
        /// Queue occupancy when the push was refused.
        depth: usize,
    },
    /// The queue was closed (the daemon is draining).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    takers: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            takers: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking; a full or closed queue refuses with a
    /// typed error.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full { depth: state.items.len() });
        }
        state.items.push_back(item);
        drop(state);
        self.takers.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed *and* drained (returning `None`). Closing never drops
    /// queued items — drain means every accepted request is answered.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.takers.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes refuse, consumers drain what was
    /// accepted and then observe the close.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.takers.notify_all();
    }

    /// Current occupancy.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_queue_refuses_with_depth() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full { depth: 2 }));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_accepted_items_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = std::sync::Arc::new(BoundedQueue::new(1));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(t.join().unwrap(), Some(42));
    }
}
