//! # cfinder-serve
//!
//! `cfinder serve` — a crash-proof, multi-tenant analysis daemon
//! speaking newline-delimited JSON frames over stdio.
//!
//! One long-lived process keeps the incremental analysis cache warm and
//! answers `register` / `analyze` / `explain` / `diff` / `stats` /
//! `metrics` / `shutdown` requests for many projects concurrently. The
//! contract is that *every* frame gets exactly one answer — a result or
//! a typed error ([`protocol::ErrorCode`]) — and that no input, however
//! hostile (malformed JSON, oversized lines, panicking analyses, slow
//! projects, mid-request source edits, corrupt cache entries), can kill
//! the daemon or cross-contaminate tenants.
//!
//! ```text
//! → {"id":1,"cmd":"register","project":"shop","dir":"/repo/shop"}
//! ← {"id":1,"ok":true,"result":{"project":"shop","files":12}}
//! → {"id":2,"cmd":"analyze","project":"shop","deadline_ms":30000}
//! ← {"id":2,"ok":true,"result":{"app":"shop","missing":3,…,"stable_json":"…"}}
//! → not json
//! ← {"id":null,"ok":false,"error":{"code":"malformed-frame","message":"…"}}
//! ```
//!
//! See `DESIGN.md` §14 for the architecture, the full error-code table,
//! and the degradation ladder.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod daemon;
pub mod protocol;
pub mod queue;
pub mod registry;

pub use daemon::{serve, ServeConfig, ServeSummary, FAULTS_ENV};
pub use protocol::{Command, ErrorCode, Request};
