//! Property tests for the inter-procedural summary machinery.
//!
//! The call graph is built from whatever code the recovering parser
//! produces, so its contract is totality: extraction and summary
//! construction never panic, the fixpoint always terminates within its
//! budget (converged or typed-degraded), and the result is a pure
//! function of the input — byte-identical across repeated builds.

use cfinder_flow::interproc::{
    CheckKind, DegradeReason, InterprocFacts, SummaryBudget, SummaryTable,
};
use cfinder_pyast::parse_module_recovering;
use proptest::prelude::*;

/// One generated function: an optional dominated check plus delegations
/// to arbitrary (existing or unknown) callees.
#[derive(Debug, Clone)]
struct GenFn {
    checked: bool,
    callees: Vec<usize>, // indices into the function list; may exceed it (unknown)
}

fn gen_module(fns: &[GenFn], rebound: &[usize]) -> String {
    let mut src = String::new();
    for (i, f) in fns.iter().enumerate() {
        src.push_str(&format!("def f{i}(v):\n"));
        let mut body = String::new();
        if f.checked {
            body.push_str("    if v is None:\n        raise ValueError()\n");
        }
        for c in &f.callees {
            body.push_str(&format!("    f{c}(v)\n"));
        }
        if body.is_empty() {
            body.push_str("    pass\n");
        }
        src.push_str(&body);
    }
    for r in rebound {
        src.push_str(&format!("f{r} = stub\n"));
    }
    src
}

fn build(src: &str, budget: &SummaryBudget) -> SummaryTable {
    let module = parse_module_recovering(src).module;
    let facts = InterprocFacts::extract(&module);
    SummaryTable::build(&[("gen.py", &facts)], budget)
}

proptest! {
    /// Arbitrary call graphs — self-recursion, mutual cycles, unknown
    /// callees, rebound names — never panic, always terminate, and build
    /// deterministically.
    #[test]
    fn random_call_graphs_are_total_and_deterministic(
        checked in proptest::collection::vec((0u8..2).prop_map(|b| b == 1), 1..8),
        edges in proptest::collection::vec((0usize..8, 0usize..12), 0..16),
        rebound in proptest::collection::vec(0usize..8, 0..3),
    ) {
        let n = checked.len();
        let fns: Vec<GenFn> = checked
            .iter()
            .enumerate()
            .map(|(i, &c)| GenFn {
                checked: c,
                // Edges may point past the function list: unknown callees.
                callees: edges.iter().filter(|(from, _)| *from == i).map(|(_, to)| *to).collect(),
            })
            .collect();
        let src = gen_module(&fns, &rebound);
        let budget = SummaryBudget::default();
        let a = build(&src, &budget);
        let b = build(&src, &budget);
        prop_assert_eq!(&a, &b, "summary build must be deterministic");

        // Rebound names never appear in the table.
        for r in &rebound {
            if *r < n {
                prop_assert!(!a.functions.contains_key(&format!("f{r}")));
            }
        }
        // Every composed check is the NotNone we planted, on the single
        // parameter.
        for s in a.functions.values() {
            for c in &s.checks {
                prop_assert_eq!(c.param, 0);
                prop_assert!(c.sub_path.is_empty());
                prop_assert!(matches!(c.kind, CheckKind::NotNone));
            }
        }
        // Default budget is generous enough for ≤8 nodes: any degradation
        // here would be a fixpoint bug.
        prop_assert!(a.degraded.is_empty(), "unexpected degradation: {:?}", a.degraded);
    }

    /// Checks propagate along any acyclic delegation chain, and cycles
    /// (every node also calls its predecessor) change nothing about the
    /// reachable facts.
    #[test]
    fn chains_propagate_to_fixpoint(len in 1usize..7, cyclic_raw in 0u8..2) {
        let cyclic = cyclic_raw == 1;
        let fns: Vec<GenFn> = (0..len)
            .map(|i| {
                let mut callees = Vec::new();
                if i > 0 {
                    callees.push(i - 1);
                }
                if cyclic && i + 1 < len {
                    callees.push(i + 1);
                }
                GenFn { checked: i == 0, callees }
            })
            .collect();
        let src = gen_module(&fns, &[]);
        let t = build(&src, &SummaryBudget::default());
        prop_assert!(t.degraded.is_empty());
        for i in 0..len {
            let s = &t.functions[&format!("f{i}")];
            prop_assert_eq!(s.checks.len(), 1, "f{} should inherit the root check", i);
        }
    }

    /// A chain deeper than the iteration budget degrades with the typed
    /// reason instead of hanging — and still composes the first
    /// `max_iterations` hops.
    #[test]
    fn deep_chains_degrade_with_typed_reason(extra in 1usize..4, budget_rounds in 1usize..4) {
        let len = budget_rounds + extra + 1;
        let fns: Vec<GenFn> = (0..len)
            .map(|i| GenFn { checked: i == 0, callees: if i > 0 { vec![i - 1] } else { vec![] } })
            .collect();
        let src = gen_module(&fns, &[]);
        let budget = SummaryBudget { max_iterations: budget_rounds, ..SummaryBudget::default() };
        let t = build(&src, &budget);
        prop_assert!(
            t.degraded.contains(&DegradeReason::IterationBudget),
            "chain of {} with budget {} must degrade, got {:?}",
            len, budget_rounds, t.degraded
        );
        for i in 1..=budget_rounds {
            prop_assert_eq!(t.functions[&format!("f{i}")].checks.len(), 1);
        }
    }

    /// Extraction is total over arbitrary pythonish soup: whatever the
    /// recovering parser yields, summary construction neither panics nor
    /// loops.
    #[test]
    fn extraction_is_total_on_soup(input in "[a-z(): =,.'\\[\\]\n\t]{0,300}") {
        let module = parse_module_recovering(&input).module;
        let facts = InterprocFacts::extract(&module);
        let _ = SummaryTable::build(&[("soup.py", &facts)], &SummaryBudget::default());
    }

    /// Shadowed names: defining the same function twice (in one file or
    /// across files) always drops it from resolution.
    #[test]
    fn shadowed_names_are_always_excluded(same_file_raw in 0u8..2) {
        let same_file = same_file_raw == 1;
        let a = "def f(x):\n    if x is None:\n        raise E()\n";
        let b = "def f(y):\n    pass\n";
        let t = if same_file {
            let m = parse_module_recovering(&format!("{a}{b}")).module;
            let facts = InterprocFacts::extract(&m);
            SummaryTable::build(&[("one.py", &facts)], &SummaryBudget::default())
        } else {
            let fa = InterprocFacts::extract(&parse_module_recovering(a).module);
            let fb = InterprocFacts::extract(&parse_module_recovering(b).module);
            SummaryTable::build(&[("a.py", &fa), ("b.py", &fb)], &SummaryBudget::default())
        };
        prop_assert!(!t.functions.contains_key("f"));
    }
}
