//! Definition collection and reaching-definitions (use-def chains).
//!
//! CFinder's table-identification step (§3.5.1) starts from a variable use
//! and walks its use-definition chain until a definition resolves to a model
//! class ("`to_wishlist` gets the definition from `WishList.objects.get`").
//! This module provides that chain: for each statement and variable name,
//! the set of definitions that may reach it.
//!
//! The analysis is intra-procedural and flow-sensitive (matching the
//! paper's stated scope; it does not perform inter-procedure analysis).

use std::collections::{BTreeSet, HashMap};

use cfinder_pyast::ast::{Expr, ExprKind, NodeId, Stmt, StmtKind};

use crate::cfg::{Cfg, CfgNodeId};

/// Identifier of a definition site within one [`UseDefChains`].
pub type DefId = usize;

/// How a name was defined.
#[derive(Debug, Clone, PartialEq)]
pub enum DefKind<'a> {
    /// `name = value` (the defining value expression).
    Assign(&'a Expr),
    /// A `for name in iter` loop target (the iterated expression).
    ForTarget(&'a Expr),
    /// A `with ctx as name` binding (the context expression).
    WithAs(&'a Expr),
    /// A function parameter.
    Param,
    /// `import`/`from … import` binding.
    Import,
    /// An augmented assignment `name op= value` (redefines using itself).
    AugAssign(&'a Expr),
}

/// One definition site.
#[derive(Debug, Clone, PartialEq)]
pub struct Def<'a> {
    /// The defined variable name.
    pub name: String,
    /// What defined it.
    pub kind: DefKind<'a>,
    /// The statement carrying the definition (`None` for parameters).
    pub stmt: Option<NodeId>,
}

/// Use-definition chains for one function body (or module top level).
pub struct UseDefChains<'a> {
    defs: Vec<Def<'a>>,
    /// CFG-node → set of def ids reaching the node's entry.
    reach_in: Vec<BTreeSet<DefId>>,
    cfg: Cfg,
    /// Defs generated *by* each CFG node (used for same-statement lookups).
    gen_by_node: HashMap<CfgNodeId, Vec<DefId>>,
}

impl<'a> UseDefChains<'a> {
    /// Computes chains for a body, with optional parameter names (for
    /// function bodies).
    pub fn compute(body: &'a [Stmt], params: &[String]) -> UseDefChains<'a> {
        let cfg = Cfg::build(body);
        let mut defs: Vec<Def<'a>> = Vec::new();
        let mut gen_by_node: HashMap<CfgNodeId, Vec<DefId>> = HashMap::new();

        // Parameters are defs generated at the entry node.
        for p in params {
            let id = defs.len();
            defs.push(Def { name: p.clone(), kind: DefKind::Param, stmt: None });
            gen_by_node.entry(cfg.entry()).or_default().push(id);
        }

        // Collect defs from every statement that owns a CFG node.
        collect_defs(body, &cfg, &mut defs, &mut gen_by_node);

        // Worklist reaching-definitions: IN[n] = ∪ OUT[p]; OUT[n] =
        // gen(n) ∪ (IN[n] − kill(n)) where kill(n) kills same-name defs.
        let mut name_defs: HashMap<&str, Vec<DefId>> = HashMap::new();
        for (i, d) in defs.iter().enumerate() {
            name_defs.entry(d.name.as_str()).or_default().push(i);
        }
        let n = cfg.len();
        let mut reach_in: Vec<BTreeSet<DefId>> = vec![BTreeSet::new(); n];
        let mut reach_out: Vec<BTreeSet<DefId>> = vec![BTreeSet::new(); n];
        let mut worklist: Vec<CfgNodeId> = cfg.node_ids().collect();
        while let Some(node) = worklist.pop() {
            let mut in_set = BTreeSet::new();
            for &p in cfg.preds(node) {
                in_set.extend(reach_out[p].iter().copied());
            }
            let mut out_set = in_set.clone();
            if let Some(generated) = gen_by_node.get(&node) {
                for &g in generated {
                    // Kill all other defs of the same name.
                    if let Some(same) = name_defs.get(defs[g].name.as_str()) {
                        for &other in same {
                            out_set.remove(&other);
                        }
                    }
                }
                out_set.extend(generated.iter().copied());
            }
            let changed = in_set != reach_in[node] || out_set != reach_out[node];
            reach_in[node] = in_set;
            reach_out[node] = out_set;
            if changed {
                for &s in cfg.succs(node) {
                    if !worklist.contains(&s) {
                        worklist.push(s);
                    }
                }
            }
        }

        UseDefChains { defs, reach_in, cfg, gen_by_node }
    }

    /// All definition sites.
    pub fn defs(&self) -> &[Def<'a>] {
        &self.defs
    }

    /// The definitions of `name` that may reach the *entry* of `stmt`.
    ///
    /// Returns an empty slice-vec when the statement is not in this body's
    /// CFG (e.g. it belongs to a nested function).
    pub fn defs_of(&self, stmt: NodeId, name: &str) -> Vec<&Def<'a>> {
        let Some(node) = self.cfg.node_of_stmt(stmt) else {
            return Vec::new();
        };
        self.reach_in[node].iter().map(|&i| &self.defs[i]).filter(|d| d.name == name).collect()
    }

    /// Like [`Self::defs_of`], but when exactly one definition reaches the
    /// use, returns it — the unambiguous case the paper's type inference
    /// relies on.
    pub fn unique_def_of(&self, stmt: NodeId, name: &str) -> Option<&Def<'a>> {
        let defs = self.defs_of(stmt, name);
        // Distinct *sites* may still assign equal values (rare); require a
        // single site for soundness.
        if defs.len() == 1 {
            Some(defs[0])
        } else {
            None
        }
    }

    /// The definitions generated by `stmt` itself.
    pub fn defs_in_stmt(&self, stmt: NodeId) -> Vec<&Def<'a>> {
        let Some(node) = self.cfg.node_of_stmt(stmt) else {
            return Vec::new();
        };
        self.gen_by_node
            .get(&node)
            .map(|v| v.iter().map(|&i| &self.defs[i]).collect())
            .unwrap_or_default()
    }

    /// The underlying control-flow graph.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }
}

/// Recursively collects definition sites from statements that own CFG nodes.
fn collect_defs<'a>(
    body: &'a [Stmt],
    cfg: &Cfg,
    defs: &mut Vec<Def<'a>>,
    gen_by_node: &mut HashMap<CfgNodeId, Vec<DefId>>,
) {
    for stmt in body {
        let node = cfg.node_of_stmt(stmt.id);
        let mut push = |name: &str, kind: DefKind<'a>| {
            if let Some(n) = node {
                let id = defs.len();
                defs.push(Def { name: name.to_string(), kind, stmt: Some(stmt.id) });
                gen_by_node.entry(n).or_default().push(id);
            }
        };
        match &stmt.kind {
            StmtKind::Assign { targets, value } => {
                for t in targets {
                    bind_target(t, value, &mut push);
                }
            }
            StmtKind::AugAssign { target, value, .. } => {
                if let ExprKind::Name(n) = &target.kind {
                    push(n, DefKind::AugAssign(value));
                }
            }
            StmtKind::For { target, iter, body, orelse } => {
                bind_target_kinded(target, || DefKind::ForTarget(iter), &mut push);
                collect_defs(body, cfg, defs, gen_by_node);
                collect_defs(orelse, cfg, defs, gen_by_node);
            }
            StmtKind::With { items, body } => {
                for item in items {
                    if let Some(t) = &item.target {
                        bind_target_kinded(t, || DefKind::WithAs(&item.context), &mut push);
                    }
                }
                collect_defs(body, cfg, defs, gen_by_node);
            }
            StmtKind::Import { names } | StmtKind::ImportFrom { names, .. } => {
                for a in names {
                    let bound = a.asname.as_deref().unwrap_or_else(|| {
                        // `import a.b` binds `a`; `from m import x` binds `x`.
                        a.name.split('.').next().unwrap_or(&a.name)
                    });
                    if bound != "*" {
                        push(bound, DefKind::Import);
                    }
                }
            }
            StmtKind::If { body, orelse, .. } => {
                collect_defs(body, cfg, defs, gen_by_node);
                collect_defs(orelse, cfg, defs, gen_by_node);
            }
            StmtKind::While { body, orelse, .. } => {
                collect_defs(body, cfg, defs, gen_by_node);
                collect_defs(orelse, cfg, defs, gen_by_node);
            }
            StmtKind::Try { body, handlers, orelse, finalbody } => {
                collect_defs(body, cfg, defs, gen_by_node);
                for h in handlers {
                    collect_defs(&h.body, cfg, defs, gen_by_node);
                }
                collect_defs(orelse, cfg, defs, gen_by_node);
                collect_defs(finalbody, cfg, defs, gen_by_node);
            }
            // Nested functions/classes: separate scopes, skipped here.
            _ => {}
        }
    }
}

/// Binds an assignment target pattern: plain names and tuple/list
/// destructuring define names; attribute/subscript targets do not define
/// local variables.
fn bind_target<'a>(target: &'a Expr, value: &'a Expr, push: &mut impl FnMut(&str, DefKind<'a>)) {
    match &target.kind {
        ExprKind::Name(n) => push(n, DefKind::Assign(value)),
        ExprKind::Tuple(elems) | ExprKind::List(elems) => {
            // Destructuring: the individual element values are unknown
            // statically; record the whole RHS as each name's source.
            for e in elems {
                if let ExprKind::Name(n) = &e.kind {
                    push(n, DefKind::Assign(value));
                }
            }
        }
        _ => {}
    }
}

fn bind_target_kinded<'a>(
    target: &'a Expr,
    kind: impl Fn() -> DefKind<'a>,
    push: &mut impl FnMut(&str, DefKind<'a>),
) {
    match &target.kind {
        ExprKind::Name(n) => push(n, kind()),
        ExprKind::Tuple(elems) | ExprKind::List(elems) => {
            for e in elems {
                if let ExprKind::Name(n) = &e.kind {
                    push(n, kind());
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_pyast::parse_module;
    use cfinder_pyast::unparse::unparse_expr;

    fn chains(src: &str) -> (UseDefChains<'static>, Vec<Stmt>) {
        // Leak for test convenience: tie the AST's lifetime to 'static.
        let m = Box::leak(Box::new(parse_module(src).unwrap()));
        (UseDefChains::compute(&m.body, &[]), m.body.clone())
    }

    #[test]
    fn straight_line_single_def() {
        let (ud, body) = chains("x = f()\ny = x\n");
        let defs = ud.defs_of(body[1].id, "x");
        assert_eq!(defs.len(), 1);
        let DefKind::Assign(rhs) = &defs[0].kind else { panic!() };
        assert_eq!(unparse_expr(rhs), "f()");
        assert!(ud.unique_def_of(body[1].id, "x").is_some());
    }

    #[test]
    fn redefinition_kills_earlier() {
        let (ud, body) = chains("x = a()\nx = b()\ny = x\n");
        let defs = ud.defs_of(body[2].id, "x");
        assert_eq!(defs.len(), 1);
        let DefKind::Assign(rhs) = &defs[0].kind else { panic!() };
        assert_eq!(unparse_expr(rhs), "b()");
    }

    #[test]
    fn branch_merges_two_defs() {
        let (ud, body) = chains("if c:\n    x = a()\nelse:\n    x = b()\ny = x\n");
        let defs = ud.defs_of(body[1].id, "x");
        assert_eq!(defs.len(), 2);
        assert!(ud.unique_def_of(body[1].id, "x").is_none(), "ambiguous");
    }

    #[test]
    fn def_before_branch_survives_one_arm() {
        let (ud, body) = chains("x = a()\nif c:\n    x = b()\ny = x\n");
        let defs = ud.defs_of(body[2].id, "x");
        assert_eq!(defs.len(), 2, "both the original and the branch def reach");
    }

    #[test]
    fn params_reach_everywhere() {
        let m = Box::leak(Box::new(parse_module("y = request\n").unwrap()));
        let ud = UseDefChains::compute(&m.body, &["request".to_string()]);
        let defs = ud.defs_of(m.body[0].id, "request");
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].kind, DefKind::Param);
    }

    #[test]
    fn for_target_defined_in_body() {
        let (ud, body) = chains("for line in order.lines:\n    x = line\n");
        let StmtKind::For { body: fb, .. } = &body[0].kind else { panic!() };
        let defs = ud.defs_of(fb[0].id, "line");
        assert_eq!(defs.len(), 1);
        let DefKind::ForTarget(iter) = &defs[0].kind else { panic!() };
        assert_eq!(unparse_expr(iter), "order.lines");
    }

    #[test]
    fn with_as_binding() {
        let (ud, body) = chains("with open('f') as fh:\n    data = fh\n");
        let StmtKind::With { body: wb, .. } = &body[0].kind else { panic!() };
        let defs = ud.defs_of(wb[0].id, "fh");
        assert_eq!(defs.len(), 1);
        assert!(matches!(defs[0].kind, DefKind::WithAs(_)));
    }

    #[test]
    fn tuple_destructuring_defines_all_names() {
        let (ud, body) = chains("a, b = pair()\nc = a + b\n");
        assert_eq!(ud.defs_of(body[1].id, "a").len(), 1);
        assert_eq!(ud.defs_of(body[1].id, "b").len(), 1);
    }

    #[test]
    fn import_binds_names() {
        let (ud, body) =
            chains("from app.models import Order\nimport utils.helpers as uh\no = Order\n");
        assert_eq!(ud.defs_of(body[2].id, "Order").len(), 1);
        assert_eq!(ud.defs_of(body[2].id, "uh").len(), 1);
        assert!(matches!(ud.defs_of(body[2].id, "Order")[0].kind, DefKind::Import));
    }

    #[test]
    fn loop_body_sees_own_redefinition() {
        let (ud, body) = chains("x = init()\nwhile c:\n    y = x\n    x = step()\n");
        let StmtKind::While { body: wb, .. } = &body[1].kind else { panic!() };
        // `y = x` sees both the initial def and the loop's redefinition.
        let defs = ud.defs_of(wb[0].id, "x");
        assert_eq!(defs.len(), 2);
    }

    #[test]
    fn return_cuts_defs() {
        let (ud, body) = chains("if c:\n    x = a()\n    return x\nx = b()\ny = x\n");
        // After the early return, only the `b()` def reaches `y = x`.
        let defs = ud.defs_of(body[2].id, "x");
        assert_eq!(defs.len(), 1);
        let DefKind::Assign(rhs) = &defs[0].kind else { panic!() };
        assert_eq!(unparse_expr(rhs), "b()");
    }

    #[test]
    fn try_handler_sees_both_states() {
        let (ud, body) = chains("x = a()\ntry:\n    x = b()\nexcept E:\n    y = x\nz = x\n");
        let StmtKind::Try { handlers, .. } = &body[1].kind else { panic!() };
        // In the handler, x may be a() (body failed early) or b().
        let defs = ud.defs_of(handlers[0].body[0].id, "x");
        assert_eq!(defs.len(), 2);
        // After the try, also both (handler didn't redefine).
        assert_eq!(ud.defs_of(body[2].id, "x").len(), 2);
    }

    #[test]
    fn defs_in_stmt_reports_generated() {
        let (ud, body) = chains("x = f()\n");
        let defs = ud.defs_in_stmt(body[0].id);
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].name, "x");
    }

    #[test]
    fn unknown_statement_returns_empty() {
        let (ud, _) = chains("x = 1\n");
        assert!(ud.defs_of(NodeId(9999), "x").is_empty());
    }

    #[test]
    fn attribute_target_defines_nothing() {
        let (ud, body) = chains("obj.attr = 1\ny = obj\n");
        assert!(ud.defs_of(body[1].id, "obj").is_empty());
        assert!(ud.defs_of(body[1].id, "attr").is_empty());
    }

    #[test]
    fn aug_assign_redefines() {
        let (ud, body) = chains("x = a()\nx += 1\ny = x\n");
        let defs = ud.defs_of(body[2].id, "x");
        assert_eq!(defs.len(), 1);
        assert!(matches!(defs[0].kind, DefKind::AugAssign(_)));
    }
}
