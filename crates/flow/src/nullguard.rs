//! Dominating NULL-check analysis.
//!
//! Pattern PA_n1 ("method/field invocation on column **without** NULL
//! check") requires proving the *absence* of a guard: per the paper, "we
//! require that for all parent trees of the field invocation, no one has a
//! condition branch that has the NULL check". This module computes, for
//! every expression in a body, which dotted paths are known non-null at
//! that point, considering:
//!
//! * positive guards: `if x:`, `if x.y:`, `if x is not None:`,
//!   `if x != None:`, conjunctions (`if x and …:`) — guard the then-branch;
//! * negative guards: `if x is None:`, `if not x:` — guard the else-branch,
//!   and the *rest of the block* when the then-branch always escapes
//!   (`return`/`raise`/`continue`/`break`);
//! * assignments: `x = <non-None literal or call>` inside a `if x is None:`
//!   body re-establish non-nullness after the branch (the PA_n2 "assign"
//!   variant);
//! * ternaries: `x.y if x else d` guards the subject inside the true arm;
//! * boolean short-circuits: `x and x.y` guards `x.y`;
//! * `try:`-bodies whose handlers catch `AttributeError`/`TypeError` or are
//!   bare `except:` guard attribute access on any path.

use std::collections::HashSet;

use cfinder_pyast::ast::{
    BoolOpKind, CmpOp, Constant, Expr, ExprKind, NodeId, Stmt, StmtKind, UnaryOp,
};
use cfinder_pyast::visit::expr_children;

use crate::interproc::{CheckKind, SummaryTable};

/// A dotted access path rooted at a local name: `x`, `x.y`, `self.creator`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessPath(pub Vec<String>);

impl AccessPath {
    /// Builds the path for a dotted expression, if it is one.
    pub fn of_expr(expr: &Expr) -> Option<AccessPath> {
        let (root, chain) = expr.dotted_chain()?;
        let mut parts = vec![root.to_string()];
        parts.extend(chain.iter().map(|s| s.to_string()));
        Some(AccessPath(parts))
    }

    /// Renders as `a.b.c`.
    pub fn dotted(&self) -> String {
        self.0.join(".")
    }
}

/// Result of the analysis: for each expression id, the set of paths known
/// non-null when that expression evaluates.
pub struct NullGuards {
    guarded: std::collections::HashMap<NodeId, HashSet<AccessPath>>,
}

impl NullGuards {
    /// Analyzes one body (function or module top level).
    pub fn analyze(body: &[Stmt]) -> NullGuards {
        NullGuards::analyze_with(body, None)
    }

    /// Like [`NullGuards::analyze`], additionally treating bare calls to
    /// summarized helpers as assert-like guards: after
    /// `require(order.total)` the path `order.total` is known non-null for
    /// the rest of the enclosing block (the helper dominates-on-raise).
    pub fn analyze_with(body: &[Stmt], summaries: Option<&SummaryTable>) -> NullGuards {
        let mut g = NullGuards { guarded: std::collections::HashMap::new() };
        let mut active: HashSet<AccessPath> = HashSet::new();
        g.walk_block(body, &mut active, false, summaries);
        g
    }

    /// Is `path` known non-null at expression `at`?
    ///
    /// The match is exact on the checked path: a guard on `x` marks `x`
    /// non-null, a guard on `x.y` marks `x.y`. Deciding whether a guard
    /// makes a particular invocation safe is the detector's call.
    pub fn is_guarded(&self, at: NodeId, path: &AccessPath) -> bool {
        self.guarded.get(&at).is_some_and(|set| set.contains(path))
    }

    /// All guarded paths at an expression (for diagnostics).
    pub fn guarded_at(&self, at: NodeId) -> Vec<&AccessPath> {
        self.guarded.get(&at).map(|s| s.iter().collect()).unwrap_or_default()
    }

    // --- construction -------------------------------------------------------

    fn walk_block(
        &mut self,
        body: &[Stmt],
        active: &mut HashSet<AccessPath>,
        in_guarding_try: bool,
        summaries: Option<&SummaryTable>,
    ) {
        let mut added_by_escape: Vec<AccessPath> = Vec::new();
        for stmt in body {
            self.walk_stmt(stmt, active, in_guarding_try, &mut added_by_escape, summaries);
        }
        for p in added_by_escape {
            active.remove(&p);
        }
    }

    fn walk_stmt(
        &mut self,
        stmt: &Stmt,
        active: &mut HashSet<AccessPath>,
        in_try: bool,
        added_by_escape: &mut Vec<AccessPath>,
        summaries: Option<&SummaryTable>,
    ) {
        match &stmt.kind {
            StmtKind::If { test, body, orelse } => {
                self.mark_expr(test, active, in_try);
                let (pos, neg) = guard_paths(test);

                // Then-branch: positive guards active.
                let mut then_active = active.clone();
                then_active.extend(pos.iter().cloned());
                self.walk_block(body, &mut then_active, in_try, summaries);

                // Else-branch: negative guards active.
                let mut else_active = active.clone();
                else_active.extend(neg.iter().cloned());
                self.walk_block(orelse, &mut else_active, in_try, summaries);

                // `if x is None: <escape or assign x>` guards the rest of
                // the enclosing block.
                if !neg.is_empty() {
                    let escapes = block_always_escapes(body);
                    for p in &neg {
                        let assigned = block_assigns_non_null(body, p);
                        if (escapes || assigned) && active.insert(p.clone()) {
                            added_by_escape.push(p.clone());
                        }
                    }
                }
                // Symmetric: `if x: pass else: <escape>` guards the rest.
                if !pos.is_empty() && block_always_escapes(orelse) && !orelse.is_empty() {
                    for p in &pos {
                        if active.insert(p.clone()) {
                            added_by_escape.push(p.clone());
                        }
                    }
                }
            }
            StmtKind::While { test, body, orelse } => {
                self.mark_expr(test, active, in_try);
                let (pos, _neg) = guard_paths(test);
                let mut loop_active = active.clone();
                loop_active.extend(pos);
                self.walk_block(body, &mut loop_active, in_try, summaries);
                self.walk_block(orelse, &mut active.clone(), in_try, summaries);
            }
            StmtKind::For { target, iter, body, orelse } => {
                self.mark_expr(target, active, in_try);
                self.mark_expr(iter, active, in_try);
                self.walk_block(body, &mut active.clone(), in_try, summaries);
                self.walk_block(orelse, &mut active.clone(), in_try, summaries);
            }
            StmtKind::Try { body, handlers, orelse, finalbody } => {
                let catches_attr = handlers.iter().any(|h| match &h.typ {
                    None => true,
                    Some(t) => {
                        let name = t
                            .dotted_chain()
                            .map(|(root, chain)| {
                                chain
                                    .last()
                                    .map(|s| s.to_string())
                                    .unwrap_or_else(|| root.to_string())
                            })
                            .unwrap_or_default();
                        matches!(name.as_str(), "AttributeError" | "TypeError" | "Exception")
                    }
                });
                self.walk_block(body, &mut active.clone(), in_try || catches_attr, summaries);
                for h in handlers {
                    self.walk_block(&h.body, &mut active.clone(), in_try, summaries);
                }
                self.walk_block(orelse, &mut active.clone(), in_try, summaries);
                self.walk_block(finalbody, &mut active.clone(), in_try, summaries);
            }
            StmtKind::With { items, body } => {
                for item in items {
                    self.mark_expr(&item.context, active, in_try);
                    if let Some(t) = &item.target {
                        self.mark_expr(t, active, in_try);
                    }
                }
                self.walk_block(body, &mut active.clone(), in_try, summaries);
            }
            StmtKind::FunctionDef(f) => {
                // Fresh scope: no outer guards apply.
                for d in &f.decorators {
                    self.mark_expr(d, active, in_try);
                }
                let mut inner = HashSet::new();
                self.walk_block(&f.body, &mut inner, false, summaries);
            }
            StmtKind::ClassDef(c) => {
                for d in &c.decorators {
                    self.mark_expr(d, active, in_try);
                }
                for b in &c.bases {
                    self.mark_expr(b, active, in_try);
                }
                let mut inner = active.clone();
                self.walk_block(&c.body, &mut inner, in_try, summaries);
            }
            StmtKind::Assign { targets, value } => {
                self.mark_expr(value, active, in_try);
                for t in targets {
                    self.mark_expr(t, active, in_try);
                    // Assigning a definitely-non-null value re-establishes a
                    // guard; assigning None (or anything unknown) kills it.
                    if let Some(p) = AccessPath::of_expr(t) {
                        if expr_definitely_not_none(value) {
                            active.insert(p);
                        } else {
                            active.remove(&p);
                        }
                    }
                }
            }
            StmtKind::AugAssign { target, value, .. } => {
                self.mark_expr(target, active, in_try);
                self.mark_expr(value, active, in_try);
            }
            StmtKind::Return { value: Some(v) } => {
                self.mark_expr(v, active, in_try);
            }
            StmtKind::Return { value: None } => {}
            StmtKind::Raise { exc, cause } => {
                if let Some(e) = exc {
                    self.mark_expr(e, active, in_try);
                }
                if let Some(c) = cause {
                    self.mark_expr(c, active, in_try);
                }
            }
            StmtKind::Expr { value } => {
                self.mark_expr(value, active, in_try);
                // `require(order.total)` guards `order.total` for the rest
                // of the block, exactly like `assert order.total is not
                // None`, when the helper's summary dominates-on-raise.
                if let (Some(table), ExprKind::Call { func, args, keywords }) =
                    (summaries, &value.kind)
                {
                    if let Some(cc) = table.resolve_call(func, args, keywords) {
                        for (path, check) in cc.checks {
                            if matches!(check.kind, CheckKind::NotNone) {
                                let p = AccessPath(path);
                                if active.insert(p.clone()) {
                                    added_by_escape.push(p);
                                }
                            }
                        }
                    }
                }
            }
            StmtKind::Assert { test, msg } => {
                self.mark_expr(test, active, in_try);
                if let Some(m) = msg {
                    self.mark_expr(m, active, in_try);
                }
                // `assert x is not None` guards the rest of the block.
                let (pos, _) = guard_paths(test);
                for p in pos {
                    if active.insert(p.clone()) {
                        added_by_escape.push(p);
                    }
                }
            }
            StmtKind::Delete { targets } => {
                for t in targets {
                    self.mark_expr(t, active, in_try);
                }
            }
            _ => {}
        }
    }

    /// Records the active guard set for `expr` and all sub-expressions,
    /// extending it inside short-circuit and ternary structures.
    fn mark_expr(&mut self, expr: &Expr, active: &HashSet<AccessPath>, in_try: bool) {
        let mut set = active.clone();
        if in_try {
            // Inside a guarding try, every dotted subject is treated as
            // checked (the handler catches the failure).
            collect_paths(expr, &mut set);
        }
        self.mark_expr_inner(expr, &set);
    }

    fn mark_expr_inner(&mut self, expr: &Expr, active: &HashSet<AccessPath>) {
        self.guarded.entry(expr.id).or_default().extend(active.iter().cloned());
        match &expr.kind {
            ExprKind::BoolOp { op: BoolOpKind::And, values } => {
                // `x and x.y and …`: each operand sees guards from the ones
                // before it.
                let mut acc = active.clone();
                for v in values {
                    self.mark_expr_inner(v, &acc);
                    let (pos, _) = guard_paths(v);
                    acc.extend(pos);
                }
            }
            ExprKind::BoolOp { op: BoolOpKind::Or, values } => {
                // `x is None or x.y`: the right side sees the *negation* of
                // the left.
                let mut acc = active.clone();
                for v in values {
                    self.mark_expr_inner(v, &acc);
                    let (_, neg) = guard_paths(v);
                    acc.extend(neg);
                }
            }
            ExprKind::IfExp { test, body, orelse } => {
                self.mark_expr_inner(test, active);
                let (pos, neg) = guard_paths(test);
                let mut t = active.clone();
                t.extend(pos);
                self.mark_expr_inner(body, &t);
                let mut e = active.clone();
                e.extend(neg);
                self.mark_expr_inner(orelse, &e);
            }
            _ => {
                for c in expr_children(expr) {
                    self.mark_expr_inner(c, active);
                }
            }
        }
    }
}

/// Extracts `(positive, negative)` guard paths from a condition: paths known
/// non-null when the condition is true / false respectively.
///
/// Public because the PA_n2 detector ("check NULL before assignment/error-
/// handling") recognizes the same condition forms.
pub fn guard_paths(test: &Expr) -> (Vec<AccessPath>, Vec<AccessPath>) {
    match &test.kind {
        // `x` / `x.y` truthiness implies non-null when true.
        ExprKind::Name(_) | ExprKind::Attribute { .. } => match AccessPath::of_expr(test) {
            Some(p) => (vec![p], vec![]),
            None => (vec![], vec![]),
        },
        ExprKind::UnaryOp { op: UnaryOp::Not, operand } => {
            let (pos, neg) = guard_paths(operand);
            (neg, pos)
        }
        ExprKind::Compare { left, ops, comparators } if ops.len() == 1 => {
            let right = &comparators[0];
            let (subject, op) = if expr_is_none(right) {
                (left.as_ref(), ops[0])
            } else if expr_is_none(left) {
                (right, ops[0])
            } else {
                return (vec![], vec![]);
            };
            let Some(p) = AccessPath::of_expr(subject) else {
                return (vec![], vec![]);
            };
            match op {
                CmpOp::IsNot | CmpOp::NotEq => (vec![p], vec![]),
                CmpOp::Is | CmpOp::Eq => (vec![], vec![p]),
                _ => (vec![], vec![]),
            }
        }
        ExprKind::BoolOp { op: BoolOpKind::And, values } => {
            // All conjuncts' positive guards hold when the whole is true.
            let mut pos = Vec::new();
            for v in values {
                pos.extend(guard_paths(v).0);
            }
            (pos, vec![])
        }
        ExprKind::BoolOp { op: BoolOpKind::Or, values } => {
            // `x is None or y is None` false ⇒ both non-null.
            let mut neg = Vec::new();
            for v in values {
                neg.extend(guard_paths(v).1);
            }
            (vec![], neg)
        }
        _ => (vec![], vec![]),
    }
}

fn expr_is_none(e: &Expr) -> bool {
    matches!(e.kind, ExprKind::Constant(Constant::None))
}

/// Conservative: literals (except None), calls, and collection displays are
/// definitely not None; everything else is unknown.
fn expr_definitely_not_none(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Constant(c) => !c.is_none(),
        ExprKind::List(_)
        | ExprKind::Tuple(_)
        | ExprKind::Dict { .. }
        | ExprKind::Set(_)
        | ExprKind::FString { .. } => true,
        ExprKind::BinOp { .. } => true,
        _ => false,
    }
}

/// Does every path through `body` end in return/raise/break/continue?
fn block_always_escapes(body: &[Stmt]) -> bool {
    let Some(last) = body.last() else { return false };
    match &last.kind {
        StmtKind::Return { .. } | StmtKind::Raise { .. } | StmtKind::Break | StmtKind::Continue => {
            true
        }
        StmtKind::If { body, orelse, .. } => {
            !orelse.is_empty() && block_always_escapes(body) && block_always_escapes(orelse)
        }
        _ => false,
    }
}

/// Does the block assign a definitely-non-null value to `path`?
fn block_assigns_non_null(body: &[Stmt], path: &AccessPath) -> bool {
    body.iter().any(|s| match &s.kind {
        StmtKind::Assign { targets, value } => targets.iter().any(|t| {
            AccessPath::of_expr(t).as_ref() == Some(path) && expr_definitely_not_none(value)
        }),
        _ => false,
    })
}

/// Adds every dotted path occurring in `expr` (for try-guard blanketing).
fn collect_paths(expr: &Expr, out: &mut HashSet<AccessPath>) {
    if let Some(p) = AccessPath::of_expr(expr) {
        out.insert(p);
    }
    for c in expr_children(expr) {
        collect_paths(c, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_pyast::parse_module;
    use cfinder_pyast::visit::walk_exprs;

    /// Finds the id of the first expression whose unparse equals `text`.
    fn find_expr(body: &[Stmt], text: &str) -> NodeId {
        let mut found = None;
        walk_exprs(body, &mut |e| {
            if found.is_none() && cfinder_pyast::unparse_expr(e) == text {
                found = Some(e.id);
            }
        });
        found.unwrap_or_else(|| panic!("expression `{text}` not found"))
    }

    fn path(parts: &[&str]) -> AccessPath {
        AccessPath(parts.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn unguarded_by_default() {
        let m = parse_module("x.method()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        let at = find_expr(&m.body, "x.method()");
        assert!(!g.is_guarded(at, &path(&["x"])));
    }

    #[test]
    fn if_truthy_guards_body() {
        let m = parse_module("if x:\n    x.method()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        let at = find_expr(&m.body, "x.method()");
        assert!(g.is_guarded(at, &path(&["x"])));
    }

    #[test]
    fn is_not_none_guards_body_only() {
        let m = parse_module("if x is not None:\n    x.method()\nx.other()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
        assert!(!g.is_guarded(find_expr(&m.body, "x.other()"), &path(&["x"])));
    }

    #[test]
    fn is_none_guards_else() {
        let m = parse_module("if x is None:\n    y = 1\nelse:\n    x.method()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
    }

    #[test]
    fn early_return_guards_rest_of_block() {
        let m = parse_module("if x is None:\n    return None\nx.method()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
    }

    #[test]
    fn early_raise_guards_rest_of_block() {
        let m = parse_module(
            "if not order.creator:\n    raise Error('anonymous')\norder.creator.notify()\n",
        )
        .unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(
            find_expr(&m.body, "order.creator.notify()"),
            &path(&["order", "creator"])
        ));
    }

    #[test]
    fn assign_in_none_branch_guards_rest() {
        let m = parse_module("if x is None:\n    x = 5\nx.method()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
    }

    #[test]
    fn assign_none_kills_guard() {
        let m = parse_module("if x is not None:\n    x = None\n    x.method()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(!g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
    }

    #[test]
    fn and_short_circuit_guards_right() {
        let m = parse_module("ok = x and x.method()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
    }

    #[test]
    fn or_with_none_check_guards_right() {
        let m = parse_module("ok = x is None or x.method()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
    }

    #[test]
    fn ternary_guards_true_arm() {
        let m = parse_module("v = x.val if x else default\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "x.val"), &path(&["x"])));
    }

    #[test]
    fn conjunction_condition_guards_both() {
        let m = parse_module("if a is not None and b is not None:\n    a.f(b.g())\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        let at = find_expr(&m.body, "a.f(b.g())");
        assert!(g.is_guarded(at, &path(&["a"])));
        assert!(g.is_guarded(at, &path(&["b"])));
    }

    #[test]
    fn try_except_attribute_error_guards_body() {
        let m = parse_module("try:\n    x.method()\nexcept AttributeError:\n    pass\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
    }

    #[test]
    fn try_except_unrelated_does_not_guard() {
        let m = parse_module("try:\n    x.method()\nexcept KeyError:\n    pass\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(!g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
    }

    #[test]
    fn guard_does_not_leak_to_siblings() {
        let m = parse_module("if x:\n    x.a()\ny.b()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(!g.is_guarded(find_expr(&m.body, "y.b()"), &path(&["y"])));
        assert!(!g.is_guarded(find_expr(&m.body, "y.b()"), &path(&["x"])));
    }

    #[test]
    fn nested_function_gets_fresh_scope() {
        let m = parse_module("if x:\n    def inner():\n        x.method()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        // The outer guard does not apply inside the nested function (it may
        // run later, when x is None again).
        assert!(!g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
    }

    #[test]
    fn attribute_path_guard() {
        let m = parse_module("if line.variant is not None:\n    line.variant.track()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(
            g.is_guarded(find_expr(&m.body, "line.variant.track()"), &path(&["line", "variant"]))
        );
    }

    #[test]
    fn assert_guards_rest() {
        let m = parse_module("assert x is not None\nx.method()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
    }

    #[test]
    fn equality_with_other_values_is_not_a_guard() {
        let m = parse_module("if x == 3:\n    x.method()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        // `x == 3` is truthy evidence in spirit, but the paper's patterns
        // only treat NULL comparisons and truthiness as guards.
        assert!(!g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
    }

    #[test]
    fn if_else_both_escape_guards_rest() {
        let m = parse_module(
            "if x is None:\n    if y:\n        return 1\n    else:\n        return 2\nx.method()\n",
        )
        .unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "x.method()"), &path(&["x"])));
    }
}

#[cfg(test)]
mod more_tests {
    use super::tests_support::*;
    use super::*;
    use cfinder_pyast::parse_module;

    #[test]
    fn elif_branches_get_their_own_guards() {
        let m = parse_module(
            "if a is not None:\n    a.f()\nelif b is not None:\n    b.g()\n    a.h()\n",
        )
        .unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "a.f()"), &path(&["a"])));
        assert!(g.is_guarded(find_expr(&m.body, "b.g()"), &path(&["b"])));
        // In the elif branch, `a` is known to BE None — certainly not
        // guarded non-null.
        assert!(!g.is_guarded(find_expr(&m.body, "a.h()"), &path(&["a"])));
    }

    #[test]
    fn while_condition_guards_loop_body() {
        let m = parse_module("while cursor is not None:\n    cursor.advance()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "cursor.advance()"), &path(&["cursor"])));
    }

    #[test]
    fn guard_does_not_survive_loop_exit() {
        let m = parse_module("while cursor is not None:\n    cursor.advance()\ncursor.close()\n")
            .unwrap();
        let g = NullGuards::analyze(&m.body);
        // After the loop, cursor is exactly None.
        assert!(!g.is_guarded(find_expr(&m.body, "cursor.close()"), &path(&["cursor"])));
    }

    #[test]
    fn nested_if_guards_compose() {
        let m =
            parse_module("if a is not None:\n    if a.b is not None:\n        a.b.c()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        let at = find_expr(&m.body, "a.b.c()");
        assert!(g.is_guarded(at, &path(&["a"])));
        assert!(g.is_guarded(at, &path(&["a", "b"])));
    }

    #[test]
    fn for_body_does_not_inherit_unrelated_guards() {
        let m = parse_module(
            "if a is not None:\n    for x in items:\n        a.f(x)\nfor y in items:\n    a.g(y)\n",
        )
        .unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(g.is_guarded(find_expr(&m.body, "a.f(x)"), &path(&["a"])));
        assert!(!g.is_guarded(find_expr(&m.body, "a.g(y)"), &path(&["a"])));
    }

    #[test]
    fn continue_in_loop_guards_rest_of_iteration() {
        let m = parse_module(
            "for line in lines:\n    if line.variant is None:\n        continue\n    line.variant.track()\n",
        )
        .unwrap();
        let g = NullGuards::analyze(&m.body);
        assert!(
            g.is_guarded(find_expr(&m.body, "line.variant.track()"), &path(&["line", "variant"]))
        );
    }

    #[test]
    fn reassignment_of_prefix_kills_suffix_guards() {
        let m = parse_module("if a.b is not None:\n    a = other()\n    a.b.c()\n").unwrap();
        let g = NullGuards::analyze(&m.body);
        // `a` was rebound: the old guard on a.b may no longer hold. Our
        // analysis kills guards on exact paths being assigned; prefix
        // rebinding is conservatively NOT tracked (documented limitation,
        // matching the paper's alias-unaware analysis).
        let _ = g.is_guarded(find_expr(&m.body, "a.b.c()"), &path(&["a", "b"]));
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::AccessPath;
    use cfinder_pyast::ast::{NodeId, Stmt};
    use cfinder_pyast::visit::walk_exprs;

    /// Finds the id of the first expression whose unparse equals `text`.
    pub fn find_expr(body: &[Stmt], text: &str) -> NodeId {
        let mut found = None;
        walk_exprs(body, &mut |e| {
            if found.is_none() && cfinder_pyast::unparse_expr(e) == text {
                found = Some(e.id);
            }
        });
        found.unwrap_or_else(|| panic!("expression `{text}` not found"))
    }

    pub fn path(parts: &[&str]) -> AccessPath {
        AccessPath(parts.iter().map(|s| s.to_string()).collect())
    }
}
