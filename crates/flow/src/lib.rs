//! # cfinder-flow
//!
//! Flow analyses over [`cfinder_pyast`] trees: statement-level control-flow
//! graphs, reaching definitions / use-def chains, and dominating NULL-check
//! detection.
//!
//! These are the "control and data flow analysis" (§3.2, step 2) and
//! "use-definition chain" (§3.5.1) machinery of the CFinder paper. The
//! analyses are flow-sensitive, field-sensitive (dotted access paths are
//! tracked verbatim), and alias-unaware — the same soundness envelope the
//! paper states for its implementation. The [`interproc`] module extends
//! this one bounded level beyond the paper: summary-based propagation of
//! dominated-on-raise checks through a def-site-resolved call graph,
//! recovering the helper-wrapped false negatives the paper's own error
//! analysis reports.
//!
//! ```
//! use cfinder_flow::UseDefChains;
//! use cfinder_pyast::parse_module;
//!
//! let m = parse_module("wl = WishList.objects.get(key=k)\nlines = wl.lines\n").unwrap();
//! let chains = UseDefChains::compute(&m.body, &[]);
//! let def = chains.unique_def_of(m.body[1].id, "wl").unwrap();
//! assert!(matches!(def.kind, cfinder_flow::DefKind::Assign(_)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cfg;
pub mod interproc;
pub mod nullguard;
pub mod reaching;

pub use cfg::{Cfg, CfgNodeId, CfgNodeKind};
pub use interproc::{
    CallChecks, CheckKind, DegradeReason, FnSummary, InterprocFacts, ParamCheck, SummaryBudget,
    SummaryCmp, SummaryLit, SummaryStats, SummaryTable,
};
pub use nullguard::{AccessPath, NullGuards};
pub use reaching::{Def, DefId, DefKind, UseDefChains};
