//! Statement-level control-flow graphs.
//!
//! One [`Cfg`] is built per function body (or per module top level). Nodes
//! are simple statements and branch headers; edges follow Python control
//! flow including loops, `break`/`continue`, `try`/`except`/`finally`, and
//! early exits via `return`/`raise`.
//!
//! The graph is the substrate for the reaching-definitions analysis in
//! [`crate::reaching`]; CFinder's use-def chains (§3.5.1 of the paper) are
//! computed on top of it.

use std::collections::HashMap;

use cfinder_pyast::ast::{NodeId, Stmt, StmtKind};

/// Index of a node within a [`Cfg`].
pub type CfgNodeId = usize;

/// What a CFG node represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgNodeKind {
    /// Virtual entry node.
    Entry,
    /// Virtual exit node.
    Exit,
    /// A simple statement (assignment, expression, return, …).
    Statement(NodeId),
    /// The header (condition/iterable evaluation) of a branch or loop.
    Branch(NodeId),
    /// A synthetic merge point (after an if/loop/try, or a dead node after
    /// `return`/`break`/`continue`).
    Join,
}

/// A statement-level control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    kinds: Vec<CfgNodeKind>,
    succs: Vec<Vec<CfgNodeId>>,
    preds: Vec<Vec<CfgNodeId>>,
    /// Statement id → CFG node (branch headers map their compound statement).
    by_stmt: HashMap<NodeId, CfgNodeId>,
}

impl Cfg {
    /// Builds the CFG for a statement list (a function body or module).
    pub fn build(body: &[Stmt]) -> Cfg {
        let mut b = Builder::new();
        let entry = b.entry;
        let after = b.lower_block(body, entry, &mut Vec::new());
        let exit = b.exit;
        b.add_edge(after, exit);
        b.finish()
    }

    /// The virtual entry node (always index 0).
    pub fn entry(&self) -> CfgNodeId {
        0
    }

    /// The virtual exit node (always index 1).
    pub fn exit(&self) -> CfgNodeId {
        1
    }

    /// Number of nodes, including entry/exit.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Returns true if the graph has only entry/exit.
    pub fn is_empty(&self) -> bool {
        self.len() <= 2
    }

    /// Node kind.
    pub fn kind(&self, node: CfgNodeId) -> &CfgNodeKind {
        &self.kinds[node]
    }

    /// Successor edges.
    pub fn succs(&self, node: CfgNodeId) -> &[CfgNodeId] {
        &self.succs[node]
    }

    /// Predecessor edges.
    pub fn preds(&self, node: CfgNodeId) -> &[CfgNodeId] {
        &self.preds[node]
    }

    /// Finds the CFG node for a statement id, if the statement is in this
    /// graph (nested function bodies get their own CFGs and are absent).
    pub fn node_of_stmt(&self, stmt: NodeId) -> Option<CfgNodeId> {
        self.by_stmt.get(&stmt).copied()
    }

    /// Iterates all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = CfgNodeId> {
        0..self.kinds.len()
    }
}

struct LoopCtx {
    /// Nodes that jump to the loop header (`continue`).
    header: CfgNodeId,
    /// `break` sources, patched to the loop's after-node when known.
    breaks: Vec<CfgNodeId>,
}

struct Builder {
    kinds: Vec<CfgNodeKind>,
    succs: Vec<Vec<CfgNodeId>>,
    preds: Vec<Vec<CfgNodeId>>,
    by_stmt: HashMap<NodeId, CfgNodeId>,
    entry: CfgNodeId,
    exit: CfgNodeId,
}

impl Builder {
    fn new() -> Builder {
        let mut b = Builder {
            kinds: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            by_stmt: HashMap::new(),
            entry: 0,
            exit: 0,
        };
        b.entry = b.add_node(CfgNodeKind::Entry);
        b.exit = b.add_node(CfgNodeKind::Exit);
        b
    }

    fn add_node(&mut self, kind: CfgNodeKind) -> CfgNodeId {
        let id = self.kinds.len();
        if let CfgNodeKind::Statement(s) | CfgNodeKind::Branch(s) = kind {
            self.by_stmt.insert(s, id);
        }
        self.kinds.push(kind);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    fn add_edge(&mut self, from: CfgNodeId, to: CfgNodeId) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
            self.preds[to].push(from);
        }
    }

    /// Lowers a statement block; returns the node control flows out of
    /// (a fresh join node when branches merge). `prev` is the node control
    /// arrives from.
    fn lower_block(
        &mut self,
        body: &[Stmt],
        mut prev: CfgNodeId,
        loops: &mut Vec<LoopCtx>,
    ) -> CfgNodeId {
        for stmt in body {
            prev = self.lower_stmt(stmt, prev, loops);
        }
        prev
    }

    fn lower_stmt(&mut self, stmt: &Stmt, prev: CfgNodeId, loops: &mut Vec<LoopCtx>) -> CfgNodeId {
        match &stmt.kind {
            StmtKind::If { body, orelse, .. } => {
                let test = self.add_node(CfgNodeKind::Branch(stmt.id));
                self.add_edge(prev, test);
                let then_end = self.lower_block(body, test, loops);
                let else_end = self.lower_block(orelse, test, loops);
                if then_end == test && else_end == test {
                    // Both arms empty (possible only with empty orelse and
                    // empty body from dead ends): the branch is the join.
                    return test;
                }
                let join = self.add_node(CfgNodeKind::Join);
                self.add_edge(then_end, join);
                self.add_edge(else_end, join);
                join
            }
            StmtKind::While { body, orelse, .. } | StmtKind::For { body, orelse, .. } => {
                let header = self.add_node(CfgNodeKind::Branch(stmt.id));
                self.add_edge(prev, header);
                loops.push(LoopCtx { header, breaks: Vec::new() });
                let body_end = self.lower_block(body, header, loops);
                self.add_edge(body_end, header);
                let ctx = loops.pop().expect("pushed above");
                // `else` runs when the loop exits normally.
                let else_end = self.lower_block(orelse, header, loops);
                let join = self.add_node(CfgNodeKind::Join);
                self.add_edge(else_end, join);
                for b in ctx.breaks {
                    self.add_edge(b, join);
                }
                join
            }
            StmtKind::Try { body, handlers, orelse, finalbody } => {
                // Conservative lowering: any statement in the body may raise
                // and transfer to any handler.
                let head = self.add_node(CfgNodeKind::Branch(stmt.id));
                self.add_edge(prev, head);
                let body_end = self.lower_block(body, head, loops);
                let orelse_end = self.lower_block(orelse, body_end, loops);
                let mut ends = vec![orelse_end];
                for h in handlers {
                    // Handler entry from the try head and from every body
                    // node would be most precise; head-entry is a sound
                    // approximation for reaching-defs (defs in the body may
                    // or may not have executed — we also add an edge from
                    // body_end so both extremes flow in).
                    let h_start = self.add_node(CfgNodeKind::Join);
                    self.add_edge(head, h_start);
                    self.add_edge(body_end, h_start);
                    let h_end = self.lower_block(&h.body, h_start, loops);
                    ends.push(h_end);
                }
                let join = self.add_node(CfgNodeKind::Join);
                for e in ends {
                    self.add_edge(e, join);
                }
                if finalbody.is_empty() {
                    join
                } else {
                    self.lower_block(finalbody, join, loops)
                }
            }
            StmtKind::With { body, .. } => {
                let head = self.add_node(CfgNodeKind::Statement(stmt.id));
                self.add_edge(prev, head);
                self.lower_block(body, head, loops)
            }
            StmtKind::Return { .. } | StmtKind::Raise { .. } => {
                let node = self.add_node(CfgNodeKind::Statement(stmt.id));
                self.add_edge(prev, node);
                self.add_edge(node, self.exit);
                // No fall-through: return a fresh unreachable node.
                self.add_node(CfgNodeKind::Join)
            }
            StmtKind::Break => {
                let node = self.add_node(CfgNodeKind::Statement(stmt.id));
                self.add_edge(prev, node);
                if let Some(ctx) = loops.last_mut() {
                    ctx.breaks.push(node);
                }
                self.add_node(CfgNodeKind::Join)
            }
            StmtKind::Continue => {
                let node = self.add_node(CfgNodeKind::Statement(stmt.id));
                self.add_edge(prev, node);
                if let Some(ctx) = loops.last() {
                    let header = ctx.header;
                    self.add_edge(node, header);
                }
                self.add_node(CfgNodeKind::Join)
            }
            // Nested defs/classes: their bodies get separate CFGs; the
            // definition itself is a simple statement here.
            _ => {
                let node = self.add_node(CfgNodeKind::Statement(stmt.id));
                self.add_edge(prev, node);
                node
            }
        }
    }

    fn finish(self) -> Cfg {
        Cfg { kinds: self.kinds, succs: self.succs, preds: self.preds, by_stmt: self.by_stmt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_pyast::parse_module;

    fn cfg_of(src: &str) -> (Cfg, cfinder_pyast::Module) {
        let m = parse_module(src).unwrap();
        (Cfg::build(&m.body), m)
    }

    /// Checks every node except entry is reachable from entry by BFS.
    fn reachable_count(cfg: &Cfg) -> usize {
        let mut seen = vec![false; cfg.len()];
        let mut queue = vec![cfg.entry()];
        seen[cfg.entry()] = true;
        while let Some(n) = queue.pop() {
            for &s in cfg.succs(n) {
                if !seen[s] {
                    seen[s] = true;
                    queue.push(s);
                }
            }
        }
        seen.iter().filter(|b| **b).count()
    }

    #[test]
    fn straight_line() {
        let (cfg, m) = cfg_of("a = 1\nb = 2\nc = 3\n");
        // entry → a → b → c → exit
        let n_a = cfg.node_of_stmt(m.body[0].id).unwrap();
        let n_b = cfg.node_of_stmt(m.body[1].id).unwrap();
        assert_eq!(cfg.succs(n_a), &[n_b]);
        assert_eq!(cfg.preds(n_b), &[n_a]);
        let n_c = cfg.node_of_stmt(m.body[2].id).unwrap();
        assert_eq!(cfg.succs(n_c), &[cfg.exit()]);
    }

    #[test]
    fn if_branches_rejoin() {
        let (cfg, m) = cfg_of("if c:\n    a = 1\nelse:\n    a = 2\nb = 3\n");
        let test = cfg.node_of_stmt(m.body[0].id).unwrap();
        assert_eq!(cfg.succs(test).len(), 2, "two arms");
        // Both arm-ends converge before b.
        let b = cfg.node_of_stmt(m.body[1].id).unwrap();
        assert_eq!(cfg.preds(b).len(), 1, "join node precedes b");
        let join = cfg.preds(b)[0];
        assert_eq!(cfg.preds(join).len(), 2);
    }

    #[test]
    fn if_without_else_falls_through() {
        let (cfg, m) = cfg_of("if c:\n    a = 1\nb = 2\n");
        let test = cfg.node_of_stmt(m.body[0].id).unwrap();
        // test → a and test → join (empty else).
        assert_eq!(cfg.succs(test).len(), 2);
        let b = cfg.node_of_stmt(m.body[1].id).unwrap();
        let join = cfg.preds(b)[0];
        assert!(cfg.preds(join).contains(&test));
    }

    #[test]
    fn while_loop_back_edge() {
        let (cfg, m) = cfg_of("while c:\n    a = 1\nb = 2\n");
        let header = cfg.node_of_stmt(m.body[0].id).unwrap();
        let a_node = cfg
            .node_ids()
            .find(|&n| {
                matches!(cfg.kind(n), CfgNodeKind::Statement(id) if {
                    // find the assignment inside the loop
                    *id != m.body[1].id && cfg.preds(n).contains(&header)
                })
            })
            .unwrap();
        assert!(cfg.succs(a_node).contains(&header), "back edge to header");
    }

    #[test]
    fn return_cuts_fall_through() {
        let (cfg, m) = cfg_of("a = 1\nreturn a\nb = 2\n");
        let ret = cfg.node_of_stmt(m.body[1].id).unwrap();
        assert!(cfg.succs(ret).contains(&cfg.exit()));
        let b = cfg.node_of_stmt(m.body[2].id).unwrap();
        // b is only reachable through the dead node, not from return.
        assert!(!cfg.succs(ret).contains(&b));
    }

    #[test]
    fn break_exits_loop() {
        let (cfg, m) = cfg_of("while c:\n    break\nb = 2\n");
        let b = cfg.node_of_stmt(m.body[1].id).unwrap();
        let join = cfg.preds(b)[0];
        // join has two preds: loop header (normal exit path via empty else)
        // and the break node.
        assert_eq!(cfg.preds(join).len(), 2);
    }

    #[test]
    fn continue_jumps_to_header() {
        let (cfg, m) = cfg_of("for x in xs:\n    continue\n");
        let header = cfg.node_of_stmt(m.body[0].id).unwrap();
        // Some node other than body-end has an edge to header.
        let cont_edges =
            cfg.node_ids().filter(|&n| n != header && cfg.succs(n).contains(&header)).count();
        assert!(cont_edges >= 2, "body fall-through and continue both reach header");
    }

    #[test]
    fn try_handlers_reachable() {
        let (cfg, _) = cfg_of("try:\n    a = f()\nexcept E:\n    a = None\nb = a\n");
        assert_eq!(reachable_count(&cfg), cfg.len(), "all nodes reachable");
    }

    #[test]
    fn nested_function_body_not_in_module_cfg() {
        let (cfg, m) = cfg_of("def f():\n    x = 1\n");
        // The def statement itself is a node…
        assert!(cfg.node_of_stmt(m.body[0].id).is_some());
        // …but its body statement is not.
        let StmtKind::FunctionDef(f) = &m.body[0].kind else { panic!() };
        assert!(cfg.node_of_stmt(f.body[0].id).is_none());
    }

    #[test]
    fn empty_body_cfg() {
        let (cfg, _) = cfg_of("");
        assert!(cfg.is_empty());
        assert_eq!(cfg.succs(cfg.entry()), &[cfg.exit()]);
    }

    #[test]
    fn all_statement_nodes_reachable_in_realistic_function() {
        let (cfg, _) = cfg_of(
            "lines = wishlist.lines.filter(product=product)\nif len(lines) == 0:\n    wishlist.lines.create(product=product)\nelse:\n    raise Error('dup')\ndone = True\n",
        );
        // Join placeholders after `raise` are dead by construction, but every
        // real statement/branch node must be reachable from entry.
        let mut seen = vec![false; cfg.len()];
        let mut queue = vec![cfg.entry()];
        seen[cfg.entry()] = true;
        while let Some(n) = queue.pop() {
            for &s in cfg.succs(n) {
                if !seen[s] {
                    seen[s] = true;
                    queue.push(s);
                }
            }
        }
        for n in cfg.node_ids() {
            if matches!(cfg.kind(n), CfgNodeKind::Statement(_) | CfgNodeKind::Branch(_)) {
                assert!(seen[n], "statement node {n} unreachable");
            }
        }
    }
}
