//! Inter-procedural check summaries over a bounded call graph.
//!
//! The paper's error analysis attributes most false negatives to
//! helper-wrapped checks: `def require(x): if x is None: raise` followed
//! by `require(order.total)` enforces NOT NULL just as surely as an
//! inline check, but every intra-procedural detector is blind to it. This
//! module recovers those sites with *function summaries*:
//!
//! 1. [`InterprocFacts::extract`] scans one module and records, for every
//!    module-level function and every method, which parameters (or
//!    attribute paths below them) are **dominated-on-raise** — on every
//!    normal return the check has passed — plus the calls it delegates its
//!    parameters to.
//! 2. [`SummaryTable::build`] merges the per-file facts app-wide,
//!    resolving callees by unique name (def-site resolution; ambiguous,
//!    rebound, or unknown names are conservatively dropped), and composes
//!    delegation chains to a bounded fixpoint so `def save(o):
//!    require(o.total)` inherits `require`'s checks.
//! 3. [`SummaryTable::resolve_call`] maps a call expression back onto
//!    caller-visible access paths so detectors (and
//!    [`crate::NullGuards`]) can treat the call like an inline check.
//!
//! Everything is bounded by [`SummaryBudget`] — node/edge caps, a
//! fixpoint iteration budget, and an optional deadline — and exceeding a
//! bound degrades to the intra-procedural answer with a typed
//! [`DegradeReason`], never a hang: pathological or cyclic call graphs
//! simply stop composing.
//!
//! Dominance is syntactic and conservative, mirroring the intra detectors:
//! a check establishes only while no earlier statement can `return`
//! normally, only when the raising branch *always* raises, and only for
//! parameters that have not been (possibly) reassigned first. Generators
//! and decorated functions contribute no summary (their bodies do not run
//! at call time / may be wrapped).

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use cfinder_pyast::ast::{
    CmpOp, Constant, Expr, ExprKind, FunctionDef, Keyword, Module, ParamStar, Stmt, StmtKind,
    UnaryOp,
};
use serde::{Deserialize, Serialize};

use crate::nullguard::{guard_paths, AccessPath};

/// Checks recorded per function are capped (deterministic truncation).
pub const MAX_CHECKS_PER_FN: usize = 32;
/// Delegations recorded per function are capped.
pub const MAX_DELEGATIONS_PER_FN: usize = 16;
/// Attribute-path depth below a parameter is capped.
pub const MAX_SUB_PATH: usize = 4;
/// Summarized callables per file are capped.
pub const MAX_FNS_PER_FILE: usize = 256;

/// A literal value a summary can pin (floats and `None` are excluded for
/// the same reasons the intra-procedural CHECK detectors exclude them).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SummaryLit {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
}

/// A scalar comparison operator, as the constraint that *holds* for valid
/// values (already negated relative to the raising guard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SummaryCmp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl SummaryCmp {
    /// Maps a Python comparison operator; identity and membership have no
    /// scalar counterpart.
    pub fn of_cmp(op: &CmpOp) -> Option<SummaryCmp> {
        match op {
            CmpOp::Eq => Some(SummaryCmp::Eq),
            CmpOp::NotEq => Some(SummaryCmp::Ne),
            CmpOp::Lt => Some(SummaryCmp::Lt),
            CmpOp::LtEq => Some(SummaryCmp::Le),
            CmpOp::Gt => Some(SummaryCmp::Gt),
            CmpOp::GtEq => Some(SummaryCmp::Ge),
            CmpOp::In | CmpOp::NotIn | CmpOp::Is | CmpOp::IsNot => None,
        }
    }

    /// Logical negation (`<` ↔ `>=`).
    pub fn negated(&self) -> SummaryCmp {
        match self {
            SummaryCmp::Eq => SummaryCmp::Ne,
            SummaryCmp::Ne => SummaryCmp::Eq,
            SummaryCmp::Lt => SummaryCmp::Ge,
            SummaryCmp::Le => SummaryCmp::Gt,
            SummaryCmp::Gt => SummaryCmp::Le,
            SummaryCmp::Ge => SummaryCmp::Lt,
        }
    }

    /// Operand-swap mirror (`0 < x` is `x > 0`).
    pub fn flipped(&self) -> SummaryCmp {
        match self {
            SummaryCmp::Eq => SummaryCmp::Eq,
            SummaryCmp::Ne => SummaryCmp::Ne,
            SummaryCmp::Lt => SummaryCmp::Gt,
            SummaryCmp::Le => SummaryCmp::Ge,
            SummaryCmp::Gt => SummaryCmp::Lt,
            SummaryCmp::Ge => SummaryCmp::Le,
        }
    }
}

/// What a dominated check establishes about a parameter path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CheckKind {
    /// The value is not `None` on every normal return (`if x is None:
    /// raise`, `if not x: raise`, `assert x`).
    NotNone,
    /// The comparison holds on every normal return (`if x <= 0: raise`
    /// records `Gt 0`).
    Compare {
        /// The operator that holds for valid values.
        op: SummaryCmp,
        /// The compared literal.
        lit: SummaryLit,
    },
    /// The value stays inside a closed literal set (`if x not in ('a',
    /// 'b'): raise`).
    Member {
        /// The allowed values.
        values: Vec<SummaryLit>,
    },
    /// A `None` check controls a constant assignment to an attribute of
    /// the parameter (`if o.status is None: o.status = 'open'`) — the
    /// constant is the intended DEFAULT. Only meaningful for non-empty
    /// sub-paths: rebinding the parameter itself never escapes the callee.
    DefaultAssign {
        /// The assigned constant.
        value: SummaryLit,
    },
}

/// One dominated check inside a summarized function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamCheck {
    /// Index into the function's parameter list (for methods, 0 is the
    /// receiver).
    pub param: usize,
    /// Attribute path below the parameter (`[]` = the parameter's own
    /// value, `["status"]` = `p.status`).
    pub sub_path: Vec<String>,
    /// What the check establishes.
    pub kind: CheckKind,
    /// 1-based line of the check inside its defining function.
    pub line: u32,
}

impl ParamCheck {
    /// Same established fact, ignoring the source line — the dedup the
    /// fixpoint uses so cyclic delegation converges instead of minting
    /// line-variant copies forever.
    pub fn same_fact(&self, other: &ParamCheck) -> bool {
        self.param == other.param && self.sub_path == other.sub_path && self.kind == other.kind
    }
}

/// A call that forwards parameters to another summarizable callable
/// (`def save(o): require(o.total)`), recorded for fixpoint composition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delegation {
    /// Callee name (function name or method attribute).
    pub callee: String,
    /// `true` for `<path>.m(...)` calls resolved in the method namespace.
    pub is_method: bool,
    /// 1-based line of the delegating call.
    pub line: u32,
    /// Per-callee-parameter mapping: `Some((i, sub))` means that callee
    /// parameter is bound to this function's parameter `i` at attribute
    /// path `sub`. For method delegations, slot 0 is the receiver.
    pub args: Vec<Option<(usize, Vec<String>)>>,
}

/// One summarized function or method definition inside a single file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FnDef {
    /// Definition name.
    pub name: String,
    /// Positional parameter names (truncated at the first starred
    /// parameter; methods include the receiver).
    pub params: Vec<String>,
    /// 1-based line of the `def`.
    pub line: u32,
    /// Dominated checks, in source order.
    pub checks: Vec<ParamCheck>,
    /// Dominated delegating calls, in source order.
    pub delegations: Vec<Delegation>,
}

/// Per-file inter-procedural facts: everything [`SummaryTable::build`]
/// needs, extracted once at parse time (and cacheable alongside the
/// parse entry — summaries are a pure function of these).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InterprocFacts {
    /// Module-level function definitions.
    pub functions: Vec<FnDef>,
    /// Method definitions (any class).
    pub methods: Vec<FnDef>,
    /// Module-level names that are rebound (assigned, imported, deleted,
    /// conditionally redefined, …) — excluded from def-site resolution.
    pub rebound: Vec<String>,
    /// Method names declared in this file but not summarizable (decorated,
    /// generator, no params, nothing extractable). They still occupy the
    /// name: a same-named summarizable method elsewhere must not resolve.
    pub opaque_methods: Vec<String>,
}

impl InterprocFacts {
    /// Extracts facts from one parsed module.
    pub fn extract(module: &Module) -> InterprocFacts {
        let mut facts = InterprocFacts::default();
        let mut rebound: BTreeSet<String> = BTreeSet::new();
        let mut defined: BTreeSet<String> = BTreeSet::new();
        for stmt in &module.body {
            match &stmt.kind {
                StmtKind::FunctionDef(f) => {
                    if !defined.insert(f.name.clone()) {
                        rebound.insert(f.name.clone());
                    }
                    match extract_fn(f, stmt.span.start.line) {
                        Some(d) if facts.functions.len() < MAX_FNS_PER_FILE => {
                            facts.functions.push(d)
                        }
                        // Unsummarizable (or over cap): the name still
                        // exists here, so block app-wide resolution of it.
                        _ => {
                            rebound.insert(f.name.clone());
                        }
                    }
                }
                StmtKind::ClassDef(c) => {
                    if !defined.insert(c.name.clone()) {
                        rebound.insert(c.name.clone());
                    }
                    for s in &c.body {
                        if let StmtKind::FunctionDef(f) = &s.kind {
                            match extract_fn(f, s.span.start.line) {
                                Some(d) if facts.methods.len() < MAX_FNS_PER_FILE => {
                                    facts.methods.push(d)
                                }
                                _ => facts.opaque_methods.push(f.name.clone()),
                            }
                        }
                    }
                }
                _ => collect_module_rebinds(stmt, &mut rebound),
            }
        }
        facts.rebound = rebound.into_iter().collect();
        facts
    }

    /// True when the file contributes nothing.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
            && self.methods.is_empty()
            && self.rebound.is_empty()
            && self.opaque_methods.is_empty()
    }
}

/// Resource bounds for [`SummaryTable::build`]. Exceeding any bound
/// degrades (typed) instead of hanging.
#[derive(Debug, Clone, Copy)]
pub struct SummaryBudget {
    /// Maximum summarized callables app-wide.
    pub max_nodes: usize,
    /// Maximum delegation edges app-wide.
    pub max_edges: usize,
    /// Maximum fixpoint rounds (each round composes one more delegation
    /// hop).
    pub max_iterations: usize,
    /// Optional wall-clock deadline checked between rounds.
    pub deadline: Option<Instant>,
}

impl Default for SummaryBudget {
    fn default() -> Self {
        SummaryBudget { max_nodes: 4096, max_edges: 16384, max_iterations: 8, deadline: None }
    }
}

/// Why a summary build degraded (the table still holds everything built
/// so far; affected compositions simply fall back to intra-procedural).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// The app defines more callables than `max_nodes`.
    NodeCap,
    /// The app has more delegation edges than `max_edges`.
    EdgeCap,
    /// Delegation chains did not reach fixpoint within `max_iterations`.
    IterationBudget,
    /// The deadline expired mid-build.
    Deadline,
}

impl DegradeReason {
    /// Short stable label (for incident details and metrics).
    pub fn label(&self) -> &'static str {
        match self {
            DegradeReason::NodeCap => "node-cap",
            DegradeReason::EdgeCap => "edge-cap",
            DegradeReason::IterationBudget => "iteration-budget",
            DegradeReason::Deadline => "deadline",
        }
    }
}

/// One callable's composed summary inside a [`SummaryTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct FnSummary {
    /// Callable name.
    pub name: String,
    /// File that defines it (for provenance and invalidation).
    pub file: String,
    /// 1-based line of the `def`.
    pub line: u32,
    /// Positional parameter names.
    pub params: Vec<String>,
    /// Dominated checks, own plus composed.
    pub checks: Vec<ParamCheck>,
    /// Delegations (kept for diagnostics after the fixpoint consumes
    /// them).
    pub delegations: Vec<Delegation>,
}

/// Size/convergence counters for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Callables admitted into the table.
    pub nodes: usize,
    /// Delegation edges admitted.
    pub edges: usize,
    /// Fixpoint rounds run.
    pub iterations: usize,
    /// Definitions dropped as ambiguous (duplicate or rebound names).
    pub ambiguous: usize,
}

/// App-wide summaries: uniquely-named module-level functions and methods,
/// composed to a bounded fixpoint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SummaryTable {
    /// Module-level functions by (unique) name.
    pub functions: BTreeMap<String, FnSummary>,
    /// Methods by (unique) name.
    pub methods: BTreeMap<String, FnSummary>,
    /// Bounds exceeded during the build (empty = clean).
    pub degraded: Vec<DegradeReason>,
    /// Build counters.
    pub stats: SummaryStats,
}

/// A call site resolved against a [`SummaryTable`]: the callee summary
/// plus every check mapped onto caller-visible dotted paths.
#[derive(Debug)]
pub struct CallChecks<'a> {
    /// The resolved callee.
    pub summary: &'a FnSummary,
    /// `(caller path, check)` for each check whose parameter is bound at
    /// this site.
    pub checks: Vec<(Vec<String>, &'a ParamCheck)>,
}

impl SummaryTable {
    /// Builds the app-wide table from per-file facts, in file order
    /// (deterministic at any thread count: extraction is per-file, the
    /// merge is serial).
    pub fn build(files: &[(&str, &InterprocFacts)], budget: &SummaryBudget) -> SummaryTable {
        let mut table = SummaryTable::default();
        let mut rebound: BTreeSet<&str> = BTreeSet::new();
        let mut opaque_methods: BTreeSet<&str> = BTreeSet::new();
        let mut fn_count: BTreeMap<&str, usize> = BTreeMap::new();
        let mut method_count: BTreeMap<&str, usize> = BTreeMap::new();
        for (_, facts) in files {
            rebound.extend(facts.rebound.iter().map(String::as_str));
            opaque_methods.extend(facts.opaque_methods.iter().map(String::as_str));
            for d in &facts.functions {
                *fn_count.entry(&d.name).or_default() += 1;
            }
            for d in &facts.methods {
                *method_count.entry(&d.name).or_default() += 1;
            }
        }

        'insert: for (file, facts) in files {
            for (is_method, defs) in [(false, &facts.functions), (true, &facts.methods)] {
                for d in defs {
                    let dups = if is_method { &method_count } else { &fn_count };
                    let shadowed = if is_method {
                        opaque_methods.contains(d.name.as_str())
                    } else {
                        rebound.contains(d.name.as_str())
                    };
                    if dups.get(d.name.as_str()).copied().unwrap_or(0) > 1 || shadowed {
                        table.stats.ambiguous += 1;
                        continue;
                    }
                    if table.stats.nodes >= budget.max_nodes {
                        table.push_degraded(DegradeReason::NodeCap);
                        break 'insert;
                    }
                    let mut delegations = d.delegations.clone();
                    if table.stats.edges + delegations.len() > budget.max_edges {
                        delegations.truncate(budget.max_edges - table.stats.edges);
                        table.push_degraded(DegradeReason::EdgeCap);
                    }
                    table.stats.edges += delegations.len();
                    table.stats.nodes += 1;
                    let summary = FnSummary {
                        name: d.name.clone(),
                        file: (*file).to_string(),
                        line: d.line,
                        params: d.params.clone(),
                        checks: d.checks.clone(),
                        delegations,
                    };
                    let map = if is_method { &mut table.methods } else { &mut table.functions };
                    map.insert(d.name.clone(), summary);
                }
            }
        }

        table.fixpoint(budget);
        table
    }

    /// Composes delegated checks until nothing changes, a bound trips, or
    /// the deadline expires. Each round propagates exactly one delegation
    /// hop, so chains of length `k` converge in `k` rounds.
    fn fixpoint(&mut self, budget: &SummaryBudget) {
        let expired = |budget: &SummaryBudget| budget.deadline.is_some_and(|d| Instant::now() >= d);
        for _ in 0..budget.max_iterations {
            if expired(budget) {
                self.push_degraded(DegradeReason::Deadline);
                return;
            }
            self.stats.iterations += 1;
            let updates = self.pending_updates();
            if updates.is_empty() {
                return;
            }
            let mut changed = false;
            for (is_method, name, check) in updates {
                let map = if is_method { &mut self.methods } else { &mut self.functions };
                if let Some(s) = map.get_mut(&name) {
                    if s.checks.len() < MAX_CHECKS_PER_FN
                        && !s.checks.iter().any(|c| c.same_fact(&check))
                    {
                        s.checks.push(check);
                        changed = true;
                    }
                }
            }
            if !changed {
                return;
            }
        }
        // Out of rounds: converged only if one more read-only pass finds
        // nothing new.
        if expired(budget) {
            self.push_degraded(DegradeReason::Deadline);
        } else if !self.pending_updates().is_empty() {
            self.push_degraded(DegradeReason::IterationBudget);
        }
    }

    /// Checks that delegation edges would add, read-only (one hop).
    fn pending_updates(&self) -> Vec<(bool, String, ParamCheck)> {
        let mut updates: Vec<(bool, String, ParamCheck)> = Vec::new();
        for (is_method, map) in [(false, &self.functions), (true, &self.methods)] {
            for (name, s) in map {
                if s.checks.len() >= MAX_CHECKS_PER_FN {
                    continue;
                }
                for d in &s.delegations {
                    let callee = if d.is_method {
                        self.methods.get(&d.callee)
                    } else {
                        self.functions.get(&d.callee)
                    };
                    let Some(callee) = callee else { continue };
                    for c in &callee.checks {
                        let Some(Some((param, sub))) = d.args.get(c.param) else { continue };
                        if sub.len() + c.sub_path.len() > MAX_SUB_PATH {
                            continue;
                        }
                        let mut sub_path = sub.clone();
                        sub_path.extend(c.sub_path.iter().cloned());
                        if matches!(c.kind, CheckKind::DefaultAssign { .. }) && sub_path.is_empty()
                        {
                            continue;
                        }
                        let check = ParamCheck {
                            param: *param,
                            sub_path,
                            kind: c.kind.clone(),
                            line: d.line,
                        };
                        let dup = s.checks.iter().any(|c2| c2.same_fact(&check))
                            || updates.iter().any(|(m, n, c2)| {
                                *m == is_method && n == name && c2.same_fact(&check)
                            });
                        if !dup {
                            updates.push((is_method, name.clone(), check));
                        }
                    }
                }
            }
        }
        updates
    }

    /// True when no callable carries any check (resolution can never
    /// fire).
    pub fn is_empty(&self) -> bool {
        self.functions.values().all(|s| s.checks.is_empty())
            && self.methods.values().all(|s| s.checks.is_empty())
    }

    /// Resolves a call expression: `func(args)` against the function
    /// namespace, `<path>.m(args)` against the method namespace (slot 0 =
    /// receiver). Starred arguments, `**kwargs`, arity overflow, or an
    /// unknown callee return `None` — conservative, never a guess.
    pub fn resolve_call<'a>(
        &'a self,
        func: &Expr,
        args: &[Expr],
        keywords: &[Keyword],
    ) -> Option<CallChecks<'a>> {
        if args.iter().any(|a| matches!(a.kind, ExprKind::Starred(_))) {
            return None;
        }
        if keywords.iter().any(|k| k.name.is_none()) {
            return None;
        }
        let (summary, offset, receiver) = match &func.kind {
            ExprKind::Name(n) => (self.functions.get(n.as_str())?, 0usize, None),
            ExprKind::Attribute { value, attr } => {
                let recv = dotted_parts(value)?;
                (self.methods.get(attr.as_str())?, 1usize, Some(recv))
            }
            _ => return None,
        };
        if args.len() + offset > summary.params.len() {
            return None; // arity mismatch: a different callable at runtime
        }
        let mut bound: Vec<Option<Vec<String>>> = vec![None; summary.params.len()];
        if let Some(recv) = receiver {
            bound[0] = Some(recv);
        }
        for (i, a) in args.iter().enumerate() {
            bound[i + offset] = dotted_parts(a);
        }
        for kw in keywords {
            let name = kw.name.as_deref().expect("** filtered above");
            if let Some(j) = summary.params.iter().position(|p| p == name) {
                bound[j] = dotted_parts(&kw.value);
            }
        }
        let checks: Vec<(Vec<String>, &ParamCheck)> = summary
            .checks
            .iter()
            .filter_map(|c| {
                let base = bound.get(c.param)?.as_ref()?;
                let mut path = base.clone();
                path.extend(c.sub_path.iter().cloned());
                Some((path, c))
            })
            .collect();
        if checks.is_empty() {
            None
        } else {
            Some(CallChecks { summary, checks })
        }
    }

    fn push_degraded(&mut self, reason: DegradeReason) {
        if !self.degraded.contains(&reason) {
            self.degraded.push(reason);
        }
    }
}

// --- extraction -----------------------------------------------------------------

/// Summarizes one `def`, or `None` when it cannot be trusted (decorated,
/// generator, starred-only, or check-free and delegation-free).
fn extract_fn(def: &FunctionDef, line: u32) -> Option<FnDef> {
    if !def.decorators.is_empty() {
        return None;
    }
    let mut params: Vec<String> = Vec::new();
    for p in &def.params {
        if p.star != ParamStar::None {
            break;
        }
        params.push(p.name.clone());
    }
    if params.is_empty() || body_has_own_yield(&def.body) {
        return None;
    }

    let mut checks: Vec<ParamCheck> = Vec::new();
    let mut delegations: Vec<Delegation> = Vec::new();
    let mut reassigned: BTreeSet<usize> = BTreeSet::new();
    let mut exit_possible = false;
    for stmt in &def.body {
        if !exit_possible {
            extract_top_stmt(stmt, &params, &reassigned, &mut checks, &mut delegations);
        }
        if contains_return(stmt) {
            exit_possible = true;
        }
        collect_reassigned(stmt, &params, &mut reassigned);
    }
    checks.truncate(MAX_CHECKS_PER_FN);
    delegations.truncate(MAX_DELEGATIONS_PER_FN);
    if checks.is_empty() && delegations.is_empty() {
        return None;
    }
    Some(FnDef { name: def.name.clone(), params, line, checks, delegations })
}

/// One top-level statement of a function body, while normal exit is still
/// impossible.
fn extract_top_stmt(
    stmt: &Stmt,
    params: &[String],
    reassigned: &BTreeSet<usize>,
    checks: &mut Vec<ParamCheck>,
    delegations: &mut Vec<Delegation>,
) {
    let line = stmt.span.start.line;
    match &stmt.kind {
        StmtKind::If { test, body: then, orelse } => {
            let then_raises = block_always_raises(then);
            let else_raises = !orelse.is_empty() && block_always_raises(orelse);
            if then_raises || else_raises {
                raise_checks(test, then_raises, line, params, reassigned, checks);
            }
            default_checks(test, then, orelse, line, params, reassigned, checks);
        }
        StmtKind::Assert { test, .. } => {
            let (pos, _) = guard_paths(test);
            for p in pos {
                if let Some((param, sub_path)) = param_path_of(&p.0, params, reassigned) {
                    checks.push(ParamCheck { param, sub_path, kind: CheckKind::NotNone, line });
                }
            }
        }
        StmtKind::Expr { value } => {
            if let ExprKind::Call { func, args, keywords } = &value.kind {
                extract_delegation(func, args, keywords, line, params, reassigned, delegations);
            }
        }
        _ => {}
    }
}

/// Checks established by `if test: <raise>` (then_raises) or `if test: …
/// else: <raise>` — NOT-NULL from guard paths, CHECK from comparison and
/// membership forms, mirroring the PA_n2/PA_c1/PA_c2 condition grammar.
fn raise_checks(
    test: &Expr,
    then_raises: bool,
    line: u32,
    params: &[String],
    reassigned: &BTreeSet<usize>,
    checks: &mut Vec<ParamCheck>,
) {
    let (pos, neg) = guard_paths(test);
    let null_paths = if then_raises { &neg } else { &pos };
    for p in null_paths {
        if let Some((param, sub_path)) = param_path_of(&p.0, params, reassigned) {
            checks.push(ParamCheck { param, sub_path, kind: CheckKind::NotNone, line });
        }
    }

    let (test, negated) = unwrap_not(test);
    let ExprKind::Compare { left, ops, comparators } = &test.kind else { return };
    let ([op], [right]) = (ops.as_slice(), comparators.as_slice()) else { return };

    // Comparison against a literal: the negation of the raising side holds.
    if let Some(cmp) = SummaryCmp::of_cmp(op) {
        let sides = if let Some(lit) = literal_of(right) {
            Some((&**left, lit, cmp))
        } else {
            literal_of(left).map(|lit| (right, lit, cmp.flipped()))
        };
        if let Some((subject, lit, cmp)) = sides {
            if let Some(p) = AccessPath::of_expr(subject) {
                if let Some((param, sub_path)) = param_path_of(&p.0, params, reassigned) {
                    let holds = match (then_raises, negated) {
                        (true, false) => cmp.negated(),
                        (true, true) => cmp,
                        (false, false) => cmp,
                        (false, true) => cmp.negated(),
                    };
                    let kind = CheckKind::Compare { op: holds, lit };
                    checks.push(ParamCheck { param, sub_path, kind, line });
                }
            }
        }
    }

    // Membership in a closed literal set: pinned only when the violating
    // branch is the non-member side.
    let is_in = match op {
        CmpOp::In => true,
        CmpOp::NotIn => false,
        _ => return,
    };
    let Some(values) = literal_list_of(right) else { return };
    let Some(p) = AccessPath::of_expr(left) else { return };
    let Some((param, sub_path)) = param_path_of(&p.0, params, reassigned) else { return };
    let cond_is_member = is_in != negated;
    let pinned = if then_raises { !cond_is_member } else { cond_is_member };
    if pinned {
        checks.push(ParamCheck { param, sub_path, kind: CheckKind::Member { values }, line });
    }
}

/// `if p.f is None: p.f = <const>` (and the inverted orelse form) records
/// a DEFAULT for the attribute.
fn default_checks(
    test: &Expr,
    then: &[Stmt],
    orelse: &[Stmt],
    line: u32,
    params: &[String],
    reassigned: &BTreeSet<usize>,
    checks: &mut Vec<ParamCheck>,
) {
    let (pos, neg) = guard_paths(test);
    for (paths, branch) in [(&neg, then), (&pos, orelse)] {
        for p in paths.iter() {
            let Some((param, sub_path)) = param_path_of(&p.0, params, reassigned) else {
                continue;
            };
            if sub_path.is_empty() {
                continue; // rebinding the parameter itself never escapes
            }
            if let Some(value) = branch_assigns_constant(branch, p) {
                let kind = CheckKind::DefaultAssign { value };
                checks.push(ParamCheck { param, sub_path, kind, line });
            }
        }
    }
}

/// A bare call statement forwarding parameter-rooted paths.
fn extract_delegation(
    func: &Expr,
    args: &[Expr],
    keywords: &[Keyword],
    line: u32,
    params: &[String],
    reassigned: &BTreeSet<usize>,
    delegations: &mut Vec<Delegation>,
) {
    if args.iter().any(|a| matches!(a.kind, ExprKind::Starred(_))) || !keywords.is_empty() {
        return; // keyword forwarding needs the callee's signature: punt
    }
    let map_args = |args: &[Expr]| -> Vec<Option<(usize, Vec<String>)>> {
        args.iter()
            .map(|a| AccessPath::of_expr(a).and_then(|p| param_path_of(&p.0, params, reassigned)))
            .collect()
    };
    match &func.kind {
        ExprKind::Name(n) => {
            let mapped = map_args(args);
            if mapped.iter().any(Option::is_some) {
                delegations.push(Delegation {
                    callee: n.clone(),
                    is_method: false,
                    line,
                    args: mapped,
                });
            }
        }
        ExprKind::Attribute { value, attr } => {
            let Some(recv) = AccessPath::of_expr(value) else { return };
            let Some(recv) = param_path_of(&recv.0, params, reassigned) else { return };
            let mut mapped = vec![Some(recv)];
            mapped.extend(map_args(args));
            delegations.push(Delegation {
                callee: attr.clone(),
                is_method: true,
                line,
                args: mapped,
            });
        }
        _ => {}
    }
}

/// Roots a dotted path at an unreassigned parameter:
/// `["order", "total"]` with params `["order"]` → `(0, ["total"])`.
fn param_path_of(
    parts: &[String],
    params: &[String],
    reassigned: &BTreeSet<usize>,
) -> Option<(usize, Vec<String>)> {
    let root = parts.first()?;
    let idx = params.iter().position(|p| p == root)?;
    if reassigned.contains(&idx) || parts.len() - 1 > MAX_SUB_PATH {
        return None;
    }
    Some((idx, parts[1..].to_vec()))
}

fn unwrap_not(test: &Expr) -> (&Expr, bool) {
    match &test.kind {
        ExprKind::UnaryOp { op: UnaryOp::Not, operand } => (operand, true),
        _ => (test, false),
    }
}

/// A constant usable as a summary literal (floats and `None` excluded;
/// negatives arrive as unary minus).
fn literal_of(expr: &Expr) -> Option<SummaryLit> {
    if let ExprKind::UnaryOp { op: UnaryOp::Neg, operand } = &expr.kind {
        if let ExprKind::Constant(Constant::Int(i)) = &operand.kind {
            return Some(SummaryLit::Int(-i));
        }
        return None;
    }
    let ExprKind::Constant(c) = &expr.kind else { return None };
    match c {
        Constant::Int(i) => Some(SummaryLit::Int(*i)),
        Constant::Str(s) => Some(SummaryLit::Str(s.clone())),
        Constant::Bool(b) => Some(SummaryLit::Bool(*b)),
        _ => None,
    }
}

/// A non-empty tuple/list/set display of constants.
fn literal_list_of(expr: &Expr) -> Option<Vec<SummaryLit>> {
    let elements = match &expr.kind {
        ExprKind::Tuple(e) | ExprKind::List(e) | ExprKind::Set(e) => e,
        _ => return None,
    };
    if elements.is_empty() {
        return None;
    }
    elements.iter().map(literal_of).collect()
}

/// The branch assigns a constant to exactly `path` (top-level statements
/// only, mirroring the PA_d1 branch form).
fn branch_assigns_constant(branch: &[Stmt], path: &AccessPath) -> Option<SummaryLit> {
    for s in branch {
        if let StmtKind::Assign { targets, value } = &s.kind {
            if targets.iter().any(|t| AccessPath::of_expr(t).as_ref() == Some(path)) {
                return literal_of(value);
            }
        }
    }
    None
}

/// Every path through `body` ends in `raise` (a `return` does NOT count:
/// the caller's continuation would run unchecked).
fn block_always_raises(body: &[Stmt]) -> bool {
    let Some(last) = body.last() else { return false };
    match &last.kind {
        StmtKind::Raise { .. } => true,
        StmtKind::If { body, orelse, .. } => {
            !orelse.is_empty() && block_always_raises(body) && block_always_raises(orelse)
        }
        _ => false,
    }
}

/// Dotted parts of an expression, if it is a plain name/attribute chain.
fn dotted_parts(expr: &Expr) -> Option<Vec<String>> {
    AccessPath::of_expr(expr).map(|p| p.0)
}

// --- own-scope statement/expression walks ---------------------------------------

/// Visits `body` and nested control-flow blocks, but NOT nested
/// `def`/`class` bodies (those are separate scopes: their `return`s don't
/// exit this function, their assignments don't rebind its locals).
fn walk_own<'a>(body: &'a [Stmt], f: &mut dyn FnMut(&'a Stmt)) {
    for s in body {
        f(s);
        match &s.kind {
            StmtKind::If { body, orelse, .. }
            | StmtKind::For { body, orelse, .. }
            | StmtKind::While { body, orelse, .. } => {
                walk_own(body, f);
                walk_own(orelse, f);
            }
            StmtKind::Try { body, handlers, orelse, finalbody } => {
                walk_own(body, f);
                for h in handlers {
                    walk_own(&h.body, f);
                }
                walk_own(orelse, f);
                walk_own(finalbody, f);
            }
            StmtKind::With { body, .. } => walk_own(body, f),
            _ => {}
        }
    }
}

/// Expressions owned directly by one statement (not those of nested
/// statements).
fn own_exprs(stmt: &Stmt) -> Vec<&Expr> {
    match &stmt.kind {
        StmtKind::If { test, .. } | StmtKind::While { test, .. } => vec![test],
        StmtKind::For { target, iter, .. } => vec![target, iter],
        StmtKind::Assign { targets, value } => {
            let mut v: Vec<&Expr> = targets.iter().collect();
            v.push(value);
            v
        }
        StmtKind::AugAssign { target, value, .. } => vec![target, value],
        StmtKind::Return { value } => value.iter().collect(),
        StmtKind::Raise { exc, cause } => exc.iter().chain(cause.iter()).collect(),
        StmtKind::Expr { value } => vec![value],
        StmtKind::Assert { test, msg } => {
            let mut v = vec![test];
            v.extend(msg.iter());
            v
        }
        StmtKind::Delete { targets } => targets.iter().collect(),
        StmtKind::With { items, .. } => {
            let mut v: Vec<&Expr> = Vec::new();
            for i in items {
                v.push(&i.context);
                v.extend(i.target.iter());
            }
            v
        }
        _ => vec![],
    }
}

fn expr_contains_yield(expr: &Expr) -> bool {
    if matches!(expr.kind, ExprKind::Yield(_)) {
        return true;
    }
    cfinder_pyast::visit::expr_children(expr).into_iter().any(expr_contains_yield)
}

/// The body is a generator (has a `yield` in its own scope), so calling
/// it executes nothing.
fn body_has_own_yield(body: &[Stmt]) -> bool {
    let mut found = false;
    walk_own(body, &mut |s| {
        if !found {
            found = own_exprs(s).into_iter().any(expr_contains_yield);
        }
    });
    found
}

/// The statement can cause a normal return of the enclosing function.
fn contains_return(stmt: &Stmt) -> bool {
    let mut found = false;
    walk_own(std::slice::from_ref(stmt), &mut |s| {
        if matches!(s.kind, StmtKind::Return { .. }) {
            found = true;
        }
    });
    found
}

/// Adds parameter indices that `stmt` may rebind (bare-name assignment
/// anywhere inside, including loop targets and `del`).
fn collect_reassigned(stmt: &Stmt, params: &[String], out: &mut BTreeSet<usize>) {
    let mut add_target = |e: &Expr| collect_target_names(e, params, out);
    walk_own(std::slice::from_ref(stmt), &mut |s| match &s.kind {
        StmtKind::Assign { targets, .. } => targets.iter().for_each(&mut add_target),
        StmtKind::AugAssign { target, .. } => add_target(target),
        StmtKind::For { target, .. } => add_target(target),
        StmtKind::With { items, .. } => {
            for i in items {
                if let Some(t) = &i.target {
                    add_target(t);
                }
            }
        }
        StmtKind::Delete { targets } => targets.iter().for_each(&mut add_target),
        _ => {}
    });
}

fn collect_target_names(target: &Expr, params: &[String], out: &mut BTreeSet<usize>) {
    match &target.kind {
        ExprKind::Name(n) => {
            if let Some(i) = params.iter().position(|p| p == n) {
                out.insert(i);
            }
        }
        ExprKind::Tuple(elements) | ExprKind::List(elements) => {
            for e in elements {
                collect_target_names(e, params, out);
            }
        }
        ExprKind::Starred(inner) => collect_target_names(inner, params, out),
        _ => {}
    }
}

/// Module-level statements outside `def`/`class` that rebind names.
fn collect_module_rebinds(stmt: &Stmt, rebound: &mut BTreeSet<String>) {
    walk_own(std::slice::from_ref(stmt), &mut |s| match &s.kind {
        StmtKind::Assign { targets, .. } => {
            targets.iter().for_each(|t| collect_rebound_names(t, rebound))
        }
        StmtKind::AugAssign { target, .. } => collect_rebound_names(target, rebound),
        StmtKind::For { target, .. } => collect_rebound_names(target, rebound),
        StmtKind::With { items, .. } => {
            for i in items {
                if let Some(t) = &i.target {
                    collect_rebound_names(t, rebound);
                }
            }
        }
        StmtKind::Delete { targets } => {
            targets.iter().for_each(|t| collect_rebound_names(t, rebound))
        }
        StmtKind::Import { names } | StmtKind::ImportFrom { names, .. } => {
            for a in names {
                let local = a
                    .asname
                    .clone()
                    .unwrap_or_else(|| a.name.split('.').next().unwrap_or(&a.name).to_string());
                rebound.insert(local);
            }
        }
        // A def/class nested in control flow is a *conditional* definition:
        // exclude the name rather than guess which branch ran.
        StmtKind::FunctionDef(f) => {
            rebound.insert(f.name.clone());
        }
        StmtKind::ClassDef(c) => {
            rebound.insert(c.name.clone());
        }
        _ => {}
    });
}

fn collect_rebound_names(target: &Expr, rebound: &mut BTreeSet<String>) {
    match &target.kind {
        ExprKind::Name(n) => {
            rebound.insert(n.clone());
        }
        ExprKind::Tuple(elements) | ExprKind::List(elements) => {
            for e in elements {
                collect_rebound_names(e, rebound);
            }
        }
        ExprKind::Starred(inner) => collect_rebound_names(inner, rebound),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfinder_pyast::parse_module;

    fn facts(src: &str) -> InterprocFacts {
        InterprocFacts::extract(&parse_module(src).unwrap())
    }

    fn table(src: &str) -> SummaryTable {
        let f = facts(src);
        SummaryTable::build(&[("app.py", &f)], &SummaryBudget::default())
    }

    fn check_kinds<'a>(t: &'a SummaryTable, f: &str) -> Vec<&'a CheckKind> {
        t.functions[f].checks.iter().map(|c| &c.kind).collect()
    }

    #[test]
    fn none_guard_raise_is_summarized() {
        let t = table("def require(x):\n    if x is None:\n        raise ValueError()\n");
        let s = &t.functions["require"];
        assert_eq!(s.checks.len(), 1);
        assert_eq!(s.checks[0].param, 0);
        assert!(s.checks[0].sub_path.is_empty());
        assert_eq!(s.checks[0].kind, CheckKind::NotNone);
        assert!(t.degraded.is_empty());
    }

    #[test]
    fn truthiness_and_assert_forms() {
        let t = table(concat!(
            "def a(x):\n    if not x:\n        raise E()\n",
            "def b(y):\n    assert y is not None\n",
        ));
        assert_eq!(check_kinds(&t, "a"), vec![&CheckKind::NotNone]);
        assert_eq!(check_kinds(&t, "b"), vec![&CheckKind::NotNone]);
    }

    #[test]
    fn attribute_sub_path_is_recorded() {
        let t = table("def v(order):\n    if order.total is None:\n        raise E()\n");
        let c = &t.functions["v"].checks[0];
        assert_eq!((c.param, c.sub_path.as_slice()), (0, &["total".to_string()][..]));
    }

    #[test]
    fn comparison_guard_records_negated_op() {
        let t = table("def v(x):\n    if x <= 0:\n        raise E()\n");
        assert_eq!(
            check_kinds(&t, "v"),
            vec![&CheckKind::Compare { op: SummaryCmp::Gt, lit: SummaryLit::Int(0) }]
        );
    }

    #[test]
    fn literal_first_comparison_flips() {
        let t = table("def v(x):\n    if 0 >= x:\n        raise E()\n");
        // `0 >= x` is `x <= 0`; raising pins `x > 0`.
        assert_eq!(
            check_kinds(&t, "v"),
            vec![&CheckKind::Compare { op: SummaryCmp::Gt, lit: SummaryLit::Int(0) }]
        );
    }

    #[test]
    fn else_raise_pins_written_condition() {
        let t = table("def v(x):\n    if x > 0:\n        pass\n    else:\n        raise E()\n");
        assert_eq!(
            check_kinds(&t, "v"),
            vec![&CheckKind::Compare { op: SummaryCmp::Gt, lit: SummaryLit::Int(0) }]
        );
    }

    #[test]
    fn membership_guard_records_member_set() {
        let t = table("def v(s):\n    if s not in ('a', 'b'):\n        raise E()\n");
        assert_eq!(
            check_kinds(&t, "v"),
            vec![&CheckKind::Member {
                values: vec![SummaryLit::Str("a".into()), SummaryLit::Str("b".into())]
            }]
        );
    }

    #[test]
    fn positive_membership_raise_is_not_pinned() {
        // `if s in (...): raise` pins exclusion, which IN cannot express.
        let t = table("def v(s):\n    if s in ('a',):\n        raise E()\n");
        assert!(!t.functions.contains_key("v"));
    }

    #[test]
    fn default_assign_records_constant() {
        let t = table("def d(o):\n    if o.status is None:\n        o.status = 'open'\n");
        assert_eq!(
            check_kinds(&t, "d"),
            vec![&CheckKind::DefaultAssign { value: SummaryLit::Str("open".into()) }]
        );
    }

    #[test]
    fn param_rebind_default_does_not_escape() {
        // Rebinding the parameter itself is invisible to the caller.
        let t = table("def d(x):\n    if x is None:\n        x = 5\n");
        assert!(!t.functions.contains_key("d"));
    }

    #[test]
    fn return_before_check_breaks_dominance() {
        let t = table(concat!(
            "def v(x, flag):\n",
            "    if flag:\n        return False\n",
            "    if x is None:\n        raise E()\n",
        ));
        assert!(!t.functions.contains_key("v"));
    }

    #[test]
    fn return_instead_of_raise_is_not_dominating() {
        let t = table("def v(x):\n    if x is None:\n        return None\n");
        assert!(!t.functions.contains_key("v"));
    }

    #[test]
    fn reassigned_param_is_not_checked() {
        let t = table(concat!(
            "def v(x):\n",
            "    x = normalize(x)\n",
            "    if x is None:\n        raise E()\n",
        ));
        assert!(!t.functions.contains_key("v"));
    }

    #[test]
    fn nested_def_return_does_not_break_dominance() {
        let t = table(concat!(
            "def v(x):\n",
            "    def helper():\n        return 1\n",
            "    if x is None:\n        raise E()\n",
        ));
        assert_eq!(check_kinds(&t, "v"), vec![&CheckKind::NotNone]);
    }

    #[test]
    fn generators_and_decorated_functions_are_skipped() {
        let t = table(concat!(
            "def g(x):\n    if x is None:\n        raise E()\n    yield x\n",
            "@cached\ndef d(x):\n    if x is None:\n        raise E()\n",
        ));
        assert!(t.functions.is_empty());
    }

    #[test]
    fn conditional_raise_branch_is_not_dominating() {
        let t = table(concat!(
            "def v(x):\n",
            "    if x is None:\n",
            "        if x != 0:\n            raise E()\n",
        ));
        assert!(!t.functions.contains_key("v"));
    }

    #[test]
    fn methods_are_summarized_with_receiver() {
        let t = table(concat!(
            "class S:\n",
            "    def check(self, v):\n",
            "        if v is None:\n            raise E()\n",
        ));
        let s = &t.methods["check"];
        assert_eq!(s.params, vec!["self".to_string(), "v".to_string()]);
        assert_eq!(s.checks[0].param, 1);
    }

    #[test]
    fn duplicate_names_are_ambiguous() {
        let a = facts("def f(x):\n    if x is None:\n        raise E()\n");
        let b = facts("def f(y):\n    if y is None:\n        raise E()\n");
        let t = SummaryTable::build(&[("a.py", &a), ("b.py", &b)], &SummaryBudget::default());
        assert!(t.functions.is_empty());
        assert_eq!(t.stats.ambiguous, 2);
        assert!(t.degraded.is_empty());
    }

    #[test]
    fn rebound_names_are_excluded() {
        let t = table(concat!("def f(x):\n    if x is None:\n        raise E()\n", "f = mock\n",));
        assert!(t.functions.is_empty());
    }

    #[test]
    fn conditional_redefinition_is_excluded() {
        let t = table(concat!(
            "def f(x):\n    if x is None:\n        raise E()\n",
            "if debug:\n    def f(x):\n        pass\n",
        ));
        assert!(t.functions.is_empty());
    }

    #[test]
    fn import_shadow_is_excluded() {
        let t = table(concat!(
            "from utils import f\n",
            "def f(x):\n    if x is None:\n        raise E()\n",
        ));
        assert!(t.functions.is_empty());
    }

    #[test]
    fn delegation_composes_one_hop() {
        let t = table(concat!(
            "def require(v):\n    if v is None:\n        raise E()\n",
            "def save(order):\n    require(order.total)\n",
        ));
        let s = &t.functions["save"];
        assert_eq!(s.checks.len(), 1);
        assert_eq!(s.checks[0].param, 0);
        assert_eq!(s.checks[0].sub_path, vec!["total".to_string()]);
        assert_eq!(s.checks[0].kind, CheckKind::NotNone);
        assert!(t.degraded.is_empty());
    }

    #[test]
    fn delegation_chains_compose_transitively() {
        let t = table(concat!(
            "def a(v):\n    if v is None:\n        raise E()\n",
            "def b(v):\n    a(v)\n",
            "def c(v):\n    b(v)\n",
        ));
        assert_eq!(check_kinds(&t, "c"), vec![&CheckKind::NotNone]);
        assert!(t.degraded.is_empty());
    }

    #[test]
    fn recursion_and_mutual_cycles_converge() {
        let t = table(concat!(
            "def a(v):\n    if v is None:\n        raise E()\n    b(v)\n",
            "def b(v):\n    a(v)\n",
            "def rec(v):\n    if v is None:\n        raise E()\n    rec(v)\n",
        ));
        assert!(t.degraded.is_empty());
        assert_eq!(check_kinds(&t, "b"), vec![&CheckKind::NotNone]);
        assert_eq!(check_kinds(&t, "rec"), vec![&CheckKind::NotNone]);
    }

    #[test]
    fn long_chain_exceeding_iteration_budget_degrades() {
        let mut src = String::from("def f0(v):\n    if v is None:\n        raise E()\n");
        for i in 1..6 {
            src.push_str(&format!("def f{i}(v):\n    f{}(v)\n", i - 1));
        }
        let f = facts(&src);
        let budget = SummaryBudget { max_iterations: 2, ..SummaryBudget::default() };
        let t = SummaryTable::build(&[("a.py", &f)], &budget);
        assert!(t.degraded.contains(&DegradeReason::IterationBudget));
        // The first two hops still composed.
        assert_eq!(t.functions["f2"].checks.len(), 1);
    }

    #[test]
    fn node_cap_degrades_deterministically() {
        let src = concat!(
            "def f0(v):\n    if v is None:\n        raise E()\n",
            "def f1(v):\n    if v is None:\n        raise E()\n",
            "def f2(v):\n    if v is None:\n        raise E()\n",
        );
        let f = facts(src);
        let budget = SummaryBudget { max_nodes: 2, ..SummaryBudget::default() };
        let t = SummaryTable::build(&[("a.py", &f)], &budget);
        assert!(t.degraded.contains(&DegradeReason::NodeCap));
        assert_eq!(t.stats.nodes, 2);
    }

    #[test]
    fn expired_deadline_degrades() {
        let f = facts("def f(v):\n    if v is None:\n        raise E()\n");
        let budget = SummaryBudget {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..SummaryBudget::default()
        };
        let t = SummaryTable::build(&[("a.py", &f)], &budget);
        assert!(t.degraded.contains(&DegradeReason::Deadline));
    }

    #[test]
    fn resolve_call_maps_argument_paths() {
        let t = table("def require(v):\n    if v.total is None:\n        raise E()\n");
        let m = parse_module("require(order)\n").unwrap();
        let StmtKind::Expr { value } = &m.body[0].kind else { panic!() };
        let ExprKind::Call { func, args, keywords } = &value.kind else { panic!() };
        let cc = t.resolve_call(func, args, keywords).unwrap();
        assert_eq!(cc.summary.name, "require");
        assert_eq!(cc.checks.len(), 1);
        assert_eq!(cc.checks[0].0, vec!["order".to_string(), "total".to_string()]);
    }

    #[test]
    fn resolve_call_by_keyword() {
        let t = table("def require(a, b):\n    if b is None:\n        raise E()\n");
        let m = parse_module("require(x, b=order.total)\n").unwrap();
        let StmtKind::Expr { value } = &m.body[0].kind else { panic!() };
        let ExprKind::Call { func, args, keywords } = &value.kind else { panic!() };
        let cc = t.resolve_call(func, args, keywords).unwrap();
        assert_eq!(cc.checks[0].0, vec!["order".to_string(), "total".to_string()]);
    }

    #[test]
    fn resolve_call_rejects_unknown_and_arity_mismatch() {
        let t = table("def require(v):\n    if v is None:\n        raise E()\n");
        for src in ["unknown(x)\n", "require(x, y)\n"] {
            let m = parse_module(src).unwrap();
            let StmtKind::Expr { value } = &m.body[0].kind else { panic!() };
            let ExprKind::Call { func, args, keywords } = &value.kind else { panic!() };
            assert!(t.resolve_call(func, args, keywords).is_none(), "{src}");
        }
    }

    #[test]
    fn resolve_method_call_binds_receiver() {
        let t = table(concat!(
            "class S:\n",
            "    def ensure(self):\n",
            "        if self.total is None:\n            raise E()\n",
        ));
        let m = parse_module("order.ensure()\n").unwrap();
        let StmtKind::Expr { value } = &m.body[0].kind else { panic!() };
        let ExprKind::Call { func, args, keywords } = &value.kind else { panic!() };
        let cc = t.resolve_call(func, args, keywords).unwrap();
        assert_eq!(cc.checks[0].0, vec!["order".to_string(), "total".to_string()]);
    }

    #[test]
    fn wrong_parameter_trap_maps_only_the_checked_one() {
        // The helper checks its SECOND parameter; the first argument must
        // not be reported checked.
        let t = table("def cmp(a, b):\n    if b is None:\n        raise E()\n");
        let m = parse_module("cmp(x.f, y.g)\n").unwrap();
        let StmtKind::Expr { value } = &m.body[0].kind else { panic!() };
        let ExprKind::Call { func, args, keywords } = &value.kind else { panic!() };
        let cc = t.resolve_call(func, args, keywords).unwrap();
        assert_eq!(cc.checks.len(), 1);
        assert_eq!(cc.checks[0].0, vec!["y".to_string(), "g".to_string()]);
    }

    #[test]
    fn facts_round_trip_serde() {
        let f = facts(concat!(
            "def require(v):\n    if v <= 0:\n        raise E()\n",
            "def save(o):\n    require(o.total)\n",
            "x = 1\n",
        ));
        let json = serde_json::to_string(&f).unwrap();
        let back: InterprocFacts = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
