//! Wall-clock sampling profiler over the tracer's live span stacks.
//!
//! A [`Profiler`] attaches to an enabled [`crate::Tracer`]
//! (via [`crate::Tracer::enabled_with_profiler`]): every open
//! [`crate::SpanGuard`] pushes one frame onto its thread's *live stack*
//! and pops it on drop, and a background **sampler thread** snapshots
//! every live stack at a fixed rate, folding each snapshot into a
//! `stack → sample count` table. The result is a statistical wall-clock
//! profile of exactly the spans the tracer already records — no signal
//! handlers, no unwinding, no platform dependencies — exportable as
//! flamegraph-collapsed text ([`ProfileReport::folded`]) and as a top-N
//! hot-span table ([`ProfileReport::hot_spans`]).
//!
//! Cost model, matching the rest of the crate:
//!
//! * **Disabled** ([`Profiler::disabled`], the default): every hook is a
//!   single `Option` check. A tracer without a profiler pays nothing.
//! * **Enabled**: span open/close additionally clones the span name into
//!   the live stack (one small allocation) and takes one uncontended
//!   per-thread mutex. The sampler wakes `hz` times a second, locks each
//!   registered thread stack for a copy, and sleeps again — bounded by
//!   the ≤5% overhead budget the `obs_overhead` bench enforces.
//!
//! Sampling times are wall-clock and therefore nondeterministic; the
//! *aggregation* is not. [`Profiler::record_sample`] — the exact fold
//! the sampler uses — produces identical [`ProfileReport`]s for the same
//! multiset of stack snapshots regardless of how many threads recorded
//! them, which is what the profiler determinism test pins.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default sampling rate. Prime, so the sampler does not phase-lock with
/// periodic work in the analyzer.
pub const DEFAULT_HZ: u32 = 97;

/// One live frame: the open span's category and name.
#[derive(Debug, Clone)]
struct Frame {
    cat: &'static str,
    name: String,
}

/// One thread's live span stack, shared between the owning thread
/// (push/pop) and the sampler (snapshot). The mutex is uncontended
/// except at the sampling instants.
#[derive(Default)]
struct ThreadStack {
    frames: Mutex<Vec<Frame>>,
}

struct ProfilerInner {
    interval: Duration,
    hz: u32,
    /// Every thread stack ever registered with this profiler. Stacks of
    /// finished threads stay (empty) — the registry is bounded by the
    /// peak thread count, not churn.
    registry: Mutex<Vec<Arc<ThreadStack>>>,
    /// Folded stack (`cat:name;cat:name;…`) → number of samples.
    samples: Mutex<BTreeMap<String, u64>>,
    /// Sampler wake-ups, total.
    ticks: AtomicU64,
    /// Wake-ups that found no open span anywhere.
    idle_ticks: AtomicU64,
    stop: AtomicBool,
    sampler: Mutex<Option<JoinHandle<()>>>,
}

thread_local! {
    /// Per-thread cache of `(profiler identity, this thread's stack)`
    /// pairs, so the steady-state push takes no registry lock. Entries
    /// whose profiler died (strong count collapsed to the cache's own
    /// Arc) are pruned on the next miss.
    static LOCAL_STACKS: RefCell<Vec<(usize, Arc<ThreadStack>)>> = const { RefCell::new(Vec::new()) };
}

/// A cheap-to-clone sampling-profiler handle; `Profiler::default()` is
/// disabled and all hooks are no-ops.
#[derive(Clone, Default)]
pub struct Profiler(Option<Arc<ProfilerInner>>);

impl fmt::Debug for Profiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("Profiler(disabled)"),
            Some(inner) => write!(f, "Profiler(enabled, {} Hz)", inner.hz),
        }
    }
}

impl Profiler {
    /// A disabled profiler: hooks are single-branch no-ops and no
    /// sampler thread exists.
    pub fn disabled() -> Self {
        Profiler(None)
    }

    /// An enabled profiler sampling at `hz` (clamped to 1..=1000),
    /// with the sampler thread started immediately. The sampler holds
    /// only a weak reference, so dropping every handle stops it even
    /// without an explicit [`Profiler::stop`].
    pub fn enabled(hz: u32) -> Self {
        let hz = hz.clamp(1, 1000);
        let inner = Arc::new(ProfilerInner {
            interval: Duration::from_secs_f64(1.0 / f64::from(hz)),
            hz,
            registry: Mutex::new(Vec::new()),
            samples: Mutex::new(BTreeMap::new()),
            ticks: AtomicU64::new(0),
            idle_ticks: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            sampler: Mutex::new(None),
        });
        let weak: Weak<ProfilerInner> = Arc::downgrade(&inner);
        let handle = std::thread::Builder::new()
            .name("cfinder-profiler".to_string())
            .spawn(move || sampler_loop(weak))
            .expect("spawn profiler sampler thread");
        *inner.sampler.lock().expect("profiler lock poisoned") = Some(handle);
        Profiler(Some(inner))
    }

    /// Whether sampling hooks are live.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The configured sampling rate (0 when disabled).
    pub fn hz(&self) -> u32 {
        self.0.as_ref().map_or(0, |inner| inner.hz)
    }

    /// Stops the sampler thread and joins it, so no sample lands after
    /// this call returns. Idempotent; a no-op when disabled.
    pub fn stop(&self) {
        let Some(inner) = &self.0 else { return };
        inner.stop.store(true, Ordering::SeqCst);
        let handle = inner.sampler.lock().expect("profiler lock poisoned").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// Pushes an opened span's frame onto the calling thread's live
    /// stack. Called by the tracer when a [`crate::SpanGuard`] opens.
    pub(crate) fn push_frame(&self, cat: &'static str, name: &str) {
        let Some(inner) = &self.0 else { return };
        let stack = self.thread_stack(inner);
        stack
            .frames
            .lock()
            .expect("profiler stack poisoned")
            .push(Frame { cat, name: name.to_string() });
    }

    /// Pops the calling thread's most recent frame. Span guards are
    /// strictly LIFO per thread (RAII), so the popped frame is the one
    /// the matching push installed.
    pub(crate) fn pop_frame(&self) {
        let Some(inner) = &self.0 else { return };
        let stack = self.thread_stack(inner);
        stack.frames.lock().expect("profiler stack poisoned").pop();
    }

    /// This thread's stack for this profiler, registering (and caching)
    /// it on first use.
    fn thread_stack(&self, inner: &Arc<ProfilerInner>) -> Arc<ThreadStack> {
        let token = Arc::as_ptr(inner) as usize;
        LOCAL_STACKS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, stack)) = cache.iter().find(|(t, _)| *t == token) {
                return stack.clone();
            }
            // Miss: prune cache entries whose profiler is gone (the
            // registry Arc died, leaving ours as the only owner), then
            // register a fresh stack.
            cache.retain(|(_, stack)| Arc::strong_count(stack) > 1);
            let stack = Arc::new(ThreadStack::default());
            inner.registry.lock().expect("profiler lock poisoned").push(stack.clone());
            cache.push((token, stack.clone()));
            stack
        })
    }

    /// Folds one stack snapshot (outermost frame first, `cat:name`
    /// per frame) into the sample table. This is the sampler's own
    /// aggregation path, public so tests can drive it with a known
    /// multiset of stacks: aggregation is commutative, so any thread
    /// interleaving of the same snapshots yields the same report.
    pub fn record_sample<S: AsRef<str>>(&self, stack: &[S]) {
        let Some(inner) = &self.0 else { return };
        if stack.is_empty() {
            return;
        }
        let folded = stack.iter().map(|f| sanitize(f.as_ref())).collect::<Vec<_>>().join(";");
        *inner.samples.lock().expect("profiler lock poisoned").entry(folded).or_insert(0) += 1;
    }

    /// A point-in-time copy of everything sampled so far.
    pub fn report(&self) -> ProfileReport {
        match &self.0 {
            None => ProfileReport::default(),
            Some(inner) => ProfileReport {
                samples: inner.samples.lock().expect("profiler lock poisoned").clone(),
                ticks: inner.ticks.load(Ordering::Relaxed),
                idle_ticks: inner.idle_ticks.load(Ordering::Relaxed),
                hz: inner.hz,
            },
        }
    }
}

/// The sampler thread body: wake at the configured rate, snapshot every
/// registered live stack, fold non-empty ones into the sample table.
/// Holds only a `Weak`, so the loop ends as soon as the last profiler
/// handle drops (or [`Profiler::stop`] raises the flag).
fn sampler_loop(weak: Weak<ProfilerInner>) {
    loop {
        let Some(inner) = weak.upgrade() else { return };
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let snapshots: Vec<Vec<Frame>> = {
            let registry = inner.registry.lock().expect("profiler lock poisoned");
            registry
                .iter()
                .map(|stack| stack.frames.lock().expect("profiler stack poisoned").clone())
                .collect()
        };
        let profiler = Profiler(Some(inner.clone()));
        let mut any = false;
        for frames in &snapshots {
            if frames.is_empty() {
                continue;
            }
            any = true;
            let stack: Vec<String> =
                frames.iter().map(|f| format!("{}:{}", f.cat, f.name)).collect();
            profiler.record_sample(&stack);
        }
        inner.ticks.fetch_add(1, Ordering::Relaxed);
        if !any {
            inner.idle_ticks.fetch_add(1, Ordering::Relaxed);
        }
        let interval = inner.interval;
        // Drop the strong reference before sleeping so a dropped-everywhere
        // profiler dies within one interval.
        drop(profiler);
        drop(inner);
        std::thread::sleep(interval);
    }
}

/// Frame text sanitized for the folded-stack format: `;` separates
/// frames and newlines separate samples, so neither may appear inside a
/// frame.
fn sanitize(frame: &str) -> String {
    frame.replace([';', '\n'], ",")
}

/// Aggregated samples: what the profiler hands to exporters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Folded stack (`cat:name;cat:name`, root first) → sample count.
    pub samples: BTreeMap<String, u64>,
    /// Sampler wake-ups, total (0 for synthetic test reports).
    pub ticks: u64,
    /// Wake-ups that found no open span.
    pub idle_ticks: u64,
    /// Sampling rate the profiler ran at.
    pub hz: u32,
}

/// One row of the top-N hot-span table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSpan {
    /// Frame label (`cat:name`).
    pub frame: String,
    /// Samples where this frame was the innermost open span (time spent
    /// *in* the span, excluding children).
    pub self_samples: u64,
    /// Samples where this frame was open anywhere on the stack (time
    /// spent in the span including children).
    pub total_samples: u64,
}

impl ProfileReport {
    /// Total non-idle samples.
    pub fn total_samples(&self) -> u64 {
        self.samples.values().sum()
    }

    /// Flamegraph-collapsed export: one `stack count` line per distinct
    /// folded stack, sorted by stack text. Feed directly to
    /// `flamegraph.pl` / `inferno-flamegraph`.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.samples {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// The `n` hottest frames by self time (ties broken by total, then
    /// name), with total (inclusive) counts alongside. A frame appearing
    /// multiple times in one stack (recursive spans) is counted once per
    /// sample for `total_samples`.
    pub fn hot_spans(&self, n: usize) -> Vec<HotSpan> {
        let mut table: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for (stack, &count) in &self.samples {
            let frames: Vec<&str> = stack.split(';').collect();
            if let Some(leaf) = frames.last() {
                table.entry(leaf).or_insert((0, 0)).0 += count;
            }
            let mut seen: Vec<&str> = Vec::with_capacity(frames.len());
            for frame in frames {
                if !seen.contains(&frame) {
                    seen.push(frame);
                    table.entry(frame).or_insert((0, 0)).1 += count;
                }
            }
        }
        let mut rows: Vec<HotSpan> = table
            .into_iter()
            .map(|(frame, (self_samples, total_samples))| HotSpan {
                frame: frame.to_string(),
                self_samples,
                total_samples,
            })
            .collect();
        rows.sort_by(|a, b| {
            (b.self_samples, b.total_samples, &a.frame).cmp(&(
                a.self_samples,
                a.total_samples,
                &b.frame,
            ))
        });
        rows.truncate(n);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        assert_eq!(p.hz(), 0);
        p.push_frame("pass", "parse");
        p.pop_frame();
        p.record_sample(&["pass:parse"]);
        p.stop();
        assert_eq!(p.report(), ProfileReport::default());
    }

    #[test]
    fn record_sample_folds_and_exports() {
        let p = Profiler::enabled(1);
        p.stop(); // no background samples — only the synthetic ones below
        p.record_sample(&["pass:detect", "file:detect a.py"]);
        p.record_sample(&["pass:detect", "file:detect a.py"]);
        p.record_sample(&["pass:parse"]);
        p.record_sample::<&str>(&[]); // empty snapshots are idle, not samples
        let report = p.report();
        assert_eq!(report.total_samples(), 3);
        assert_eq!(report.folded(), "pass:detect;file:detect a.py 2\npass:parse 1\n");
        let hot = report.hot_spans(10);
        assert_eq!(hot[0].frame, "file:detect a.py");
        assert_eq!((hot[0].self_samples, hot[0].total_samples), (2, 2));
        let detect = hot.iter().find(|h| h.frame == "pass:detect").unwrap();
        assert_eq!((detect.self_samples, detect.total_samples), (0, 2));
    }

    #[test]
    fn frame_text_is_sanitized_for_the_folded_format() {
        let p = Profiler::enabled(1);
        p.stop();
        p.record_sample(&["file:parse a;b.py", "family:PA_u1\nx"]);
        let folded = p.report().folded();
        assert_eq!(folded, "file:parse a,b.py;family:PA_u1,x 1\n");
    }

    #[test]
    fn hot_spans_counts_recursive_frames_once_per_sample() {
        let p = Profiler::enabled(1);
        p.stop();
        p.record_sample(&["a:x", "b:y", "a:x"]);
        let hot = p.report().hot_spans(10);
        let ax = hot.iter().find(|h| h.frame == "a:x").unwrap();
        assert_eq!((ax.self_samples, ax.total_samples), (1, 1));
    }

    #[test]
    fn live_stacks_are_sampled() {
        let p = Profiler::enabled(997);
        p.push_frame("pass", "busy");
        // Wait until the sampler has provably seen the open span.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while p.report().total_samples() == 0 {
            assert!(std::time::Instant::now() < deadline, "sampler never sampled");
            std::thread::sleep(Duration::from_millis(2));
        }
        p.pop_frame();
        p.stop();
        let report = p.report();
        assert!(report.samples.contains_key("pass:busy"), "{report:?}");
        assert!(report.ticks > 0);
    }

    #[test]
    fn stop_is_idempotent_and_final() {
        let p = Profiler::enabled(500);
        p.stop();
        p.stop();
        let ticks = p.report().ticks;
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(p.report().ticks, ticks, "no tick lands after stop returns");
    }
}
