//! # cfinder-obs
//!
//! The observability substrate of the CFinder reproduction: hierarchical
//! spans, a metrics registry, and nothing else. Both halves share one
//! design rule — **disabled costs (almost) nothing**: a disabled
//! [`Tracer`] or [`Metrics`] is a `None` behind one pointer-sized
//! `Option`, so every instrumentation call in the analyzer collapses to a
//! single branch and no allocation. Production runs of the analyzer pay
//! for observability only when an operator asks for it.
//!
//! * [`trace`] — RAII span guards recorded into sharded, per-thread
//!   buffers (a thread only ever touches its own shard, so pushes never
//!   contend), exported as Chrome trace-event JSON loadable in
//!   `chrome://tracing` or Perfetto.
//! * [`metrics`] — atomic counters and per-family log-linear histograms
//!   with p50/p95/p99 estimation, exported as Prometheus text exposition
//!   or a structured snapshot.
//! * [`profile`] — a wall-clock sampling profiler over the tracer's live
//!   span stacks, exported as flamegraph-collapsed folded stacks and a
//!   top-N hot-span table.
//!
//! The [`Obs`] handle bundles one of each and is what the analyzer
//! plumbing passes around.
//!
//! ```
//! use cfinder_obs::Obs;
//!
//! let obs = Obs::enabled();
//! {
//!     let mut span = obs.tracer.span("pass", || "parse".to_string());
//!     span.arg("files", "3".to_string());
//!     obs.metrics.add("cfinder_source_bytes_total", 1024);
//! }
//! assert_eq!(obs.tracer.events().len(), 1);
//! assert!(obs.tracer.to_chrome_trace().contains("\"name\":\"parse\""));
//! assert!(obs.metrics.to_prometheus_text().contains("cfinder_source_bytes_total 1024"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{HistogramSnapshot, MetricFamily, MetricKind, Metrics, MetricsSnapshot, Sample};
pub use profile::{HotSpan, ProfileReport, Profiler};
pub use trace::{SpanGuard, TraceEvent, Tracer};

/// A bundle of one tracer and one metrics registry — the single handle the
/// analysis pipeline threads through its passes.
///
/// `Obs::default()` is fully disabled: both members are no-op sinks.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Span recorder (Chrome-trace export).
    pub tracer: Tracer,
    /// Metrics registry (Prometheus exposition).
    pub metrics: Metrics,
}

impl Obs {
    /// A fully disabled handle: every instrumentation call is a no-op.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// A fully enabled handle recording spans and metrics (no sampling
    /// profiler — see [`Obs::profiled`]).
    pub fn enabled() -> Self {
        Obs { tracer: Tracer::enabled(), metrics: Metrics::enabled() }
    }

    /// A fully enabled handle whose tracer also feeds a sampling
    /// [`Profiler`] at `hz` samples per second. Retrieve it (to stop the
    /// sampler and export) via [`Obs::profiler`].
    pub fn profiled(hz: u32) -> Self {
        Obs {
            tracer: Tracer::enabled_with_profiler(Profiler::enabled(hz)),
            metrics: Metrics::enabled(),
        }
    }

    /// The sampling profiler attached to the tracer (disabled unless the
    /// handle came from [`Obs::profiled`]).
    pub fn profiler(&self) -> Profiler {
        self.tracer.profiler()
    }

    /// Whether any half of the handle is recording.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled() || self.metrics.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let mut span = obs.tracer.span("pass", || unreachable!("name closure must not run"));
        span.arg("k", "v".to_string());
        drop(span);
        obs.metrics.inc("cfinder_files_total");
        assert!(obs.tracer.events().is_empty());
        assert!(obs.metrics.snapshot().families.is_empty());
    }

    #[test]
    fn enabled_handle_records_both_halves() {
        let obs = Obs::enabled();
        assert!(obs.is_enabled());
        assert!(!obs.profiler().is_enabled(), "plain enabled() has no profiler");
        drop(obs.tracer.span("pass", || "x".to_string()));
        obs.metrics.inc("cfinder_files_total");
        assert_eq!(obs.tracer.events().len(), 1);
        assert_eq!(obs.metrics.snapshot().families.len(), 1);
    }

    #[test]
    fn profiled_handle_carries_a_live_profiler() {
        let obs = Obs::profiled(97);
        assert!(obs.profiler().is_enabled());
        assert_eq!(obs.profiler().hz(), 97);
        obs.profiler().stop();
        drop(obs.tracer.span("pass", || "x".to_string()));
        assert_eq!(obs.tracer.events().len(), 1, "tracing still records after stop");
    }
}
