//! Hierarchical spans with Chrome trace-event export.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s. Creating a guard stamps a
//! monotonic start time; dropping it records one *complete* event
//! (`ph: "X"` in the trace-event format) carrying the span's category,
//! name, thread id, microsecond timestamp, and duration. Parent/child
//! links are positional, exactly as Chrome's trace viewer reconstructs
//! them: a span whose `[ts, ts+dur)` interval lies inside another span's
//! interval *on the same thread* is its child.
//!
//! Recording is contention-free in the steady state: events are pushed
//! into one of [`SHARDS`] buffers selected by the recording thread's id,
//! so two threads only share a buffer (and its uncontended mutex) when
//! their ids collide mod [`SHARDS`] — with the analyzer's worker counts
//! that is rare, and even then the critical section is a `Vec::push`.
//!
//! Determinism contract: for a fixed input, the *structure* of the
//! recorded spans — the multiset of `(category, name)` pairs — is
//! identical at any worker-thread count for every category except
//! `"worker"` (per-chunk spans, whose count is the chunk count by
//! definition). Timestamps, durations, and thread ids are measurements
//! and vary run to run.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::profile::Profiler;

/// Number of event buffers. Threads pick `tid % SHARDS`, so pushes from
/// different worker threads almost never touch the same mutex.
pub const SHARDS: usize = 32;

/// Process-wide monotonic thread-id allocator: the trace format wants
/// small integer `tid`s, and `std::thread::ThreadId` does not expose one.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The small integer id of the calling thread (stable for the thread's
/// lifetime, unique within the process).
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// One recorded span, in Chrome trace-event terms a complete (`"X"`)
/// event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span category (`"pass"`, `"file"`, `"family"`, `"registry"`,
    /// `"worker"`, …). Categories group spans in trace viewers and define
    /// the determinism contract (see module docs).
    pub cat: &'static str,
    /// Span name (e.g. `"parse views.py"`).
    pub name: String,
    /// Start, in microseconds since the tracer was created.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Recording thread (see [`current_tid`]).
    pub tid: u64,
    /// Key/value annotations (`args` in the trace-event format).
    pub args: Vec<(&'static str, String)>,
}

impl TraceEvent {
    /// End of the span in microseconds since tracer creation.
    pub fn end_us(&self) -> u64 {
        self.ts_us + self.dur_us
    }
}

struct TracerInner {
    epoch: Instant,
    shards: Vec<Mutex<Vec<TraceEvent>>>,
    /// Attached sampling profiler. Disabled by default; when enabled,
    /// every [`SpanGuard`] push/pops one live-stack frame so the sampler
    /// can snapshot the open-span stack of every thread.
    profiler: Profiler,
}

impl TracerInner {
    fn push(&self, event: TraceEvent) {
        let shard = (event.tid as usize) % SHARDS;
        self.shards[shard].lock().expect("trace shard poisoned").push(event);
    }
}

/// A cheap-to-clone span recorder; `Tracer::default()` is disabled and
/// records nothing.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TracerInner>>);

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("Tracer(disabled)"),
            Some(_) => f.write_str("Tracer(enabled)"),
        }
    }
}

impl Tracer {
    /// A disabled tracer: spans are no-ops and name closures never run.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// An enabled tracer recording into fresh buffers; its epoch (the
    /// zero of every timestamp) is the moment of this call.
    pub fn enabled() -> Self {
        Tracer::enabled_with_profiler(Profiler::disabled())
    }

    /// An enabled tracer with a sampling [`Profiler`] attached: every
    /// span guard additionally maintains the live span stack the
    /// profiler's sampler thread snapshots. With a disabled profiler
    /// this is exactly [`Tracer::enabled`].
    pub fn enabled_with_profiler(profiler: Profiler) -> Self {
        let shards = (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect();
        Tracer(Some(Arc::new(TracerInner { epoch: Instant::now(), shards, profiler })))
    }

    /// The attached sampling profiler (disabled when the tracer is
    /// disabled or was built without one).
    pub fn profiler(&self) -> Profiler {
        match &self.0 {
            None => Profiler::disabled(),
            Some(inner) => inner.profiler.clone(),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Microseconds since the tracer's epoch (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.0 {
            None => 0,
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
        }
    }

    /// Opens a span; the returned guard records one event when dropped.
    /// The name closure only runs when the tracer is enabled, so call
    /// sites can `format!` freely without paying for it in disabled runs.
    pub fn span<F>(&self, cat: &'static str, name: F) -> SpanGuard
    where
        F: FnOnce() -> String,
    {
        match &self.0 {
            None => SpanGuard(None),
            Some(inner) => {
                let name = name();
                inner.profiler.push_frame(cat, &name);
                SpanGuard(Some(ActiveSpan {
                    inner: Arc::clone(inner),
                    cat,
                    name,
                    start: Instant::now(),
                    args: Vec::new(),
                }))
            }
        }
    }

    /// Records a pre-measured span with an explicit start timestamp (in
    /// microseconds since the epoch, as returned by [`Tracer::now_us`]).
    /// Used for synthetic sub-spans whose duration was accumulated rather
    /// than measured wall-to-wall, e.g. per-pattern-family time within a
    /// file's detection span.
    pub fn record(
        &self,
        cat: &'static str,
        name: String,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(&'static str, String)>,
    ) {
        if let Some(inner) = &self.0 {
            inner.push(TraceEvent { cat, name, ts_us, dur_us, tid: current_tid(), args });
        }
    }

    /// Snapshot of every recorded event, sorted by `(ts, tid, name)` so
    /// the order is reproducible for a given set of measurements.
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.0 else { return Vec::new() };
        let mut all = Vec::new();
        for shard in &inner.shards {
            all.extend(shard.lock().expect("trace shard poisoned").iter().cloned());
        }
        all.sort_by(|a, b| {
            (a.ts_us, a.tid, &a.name, a.dur_us).cmp(&(b.ts_us, b.tid, &b.name, b.dur_us))
        });
        all
    }

    /// Renders every recorded event as Chrome trace-event JSON (the
    /// "JSON Array Format" wrapped in an object), loadable in
    /// `chrome://tracing` and Perfetto. Returns an empty trace when
    /// disabled.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                escape_json(&e.name),
                escape_json(e.cat),
                e.ts_us,
                e.dur_us,
                e.tid
            ));
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct ActiveSpan {
    inner: Arc<TracerInner>,
    cat: &'static str,
    name: String,
    start: Instant,
    args: Vec<(&'static str, String)>,
}

/// RAII guard for an open span; records the event on drop.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Attaches a key/value annotation (no-op on a disabled span).
    pub fn arg(&mut self, key: &'static str, value: String) {
        if let Some(active) = &mut self.0 {
            active.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        // Span guards are strictly LIFO per thread, so this pops the
        // frame the matching `span()` pushed. Synthetic `record()` spans
        // never touch the live stack — they are not "open" time.
        active.inner.profiler.pop_frame();
        // Both endpoints are floored *absolute* microsecond offsets, so
        // `a ≤ b` in real time implies `ts(a) ≤ ts(b)` after truncation —
        // which is what keeps child spans inside their parents even at
        // microsecond granularity.
        let ts_us = active.start.duration_since(active.inner.epoch).as_micros() as u64;
        let end_us = active.inner.epoch.elapsed().as_micros() as u64;
        let dur_us = end_us.saturating_sub(ts_us);
        let event = TraceEvent {
            cat: active.cat,
            name: active.name,
            ts_us,
            dur_us,
            tid: current_tid(),
            args: active.args,
        };
        active.inner.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_skips_name_closure() {
        let t = Tracer::disabled();
        let ran = std::cell::Cell::new(false);
        drop(t.span("pass", || {
            ran.set(true);
            "x".to_string()
        }));
        assert!(!ran.get(), "name closure must not run when disabled");
        assert!(t.events().is_empty());
        assert_eq!(t.to_chrome_trace(), "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let t = Tracer::enabled();
        {
            let _outer = t.span("pass", || "outer".to_string());
            let _inner = t.span("file", || "inner".to_string());
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(outer.tid, inner.tid);
        assert!(outer.ts_us <= inner.ts_us);
        assert!(inner.end_us() <= outer.end_us(), "child ends within parent");
    }

    #[test]
    fn cross_thread_events_are_all_collected() {
        let t = Tracer::enabled();
        std::thread::scope(|scope| {
            for i in 0..8 {
                let t = t.clone();
                scope.spawn(move || {
                    let mut s = t.span("worker", || format!("chunk {i}"));
                    s.arg("items", "1".to_string());
                });
            }
        });
        let events = t.events();
        assert_eq!(events.len(), 8);
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert!(tids.len() > 1, "distinct threads get distinct tids");
    }

    #[test]
    fn chrome_trace_escapes_and_shapes() {
        let t = Tracer::enabled();
        {
            let mut s = t.span("file", || "parse \"a\\b\".py".to_string());
            s.arg("bytes", "12".to_string());
        }
        let json = t.to_chrome_trace();
        assert!(json.contains("\\\"a\\\\b\\\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"bytes\":\"12\"}"));
    }

    #[test]
    fn spans_maintain_the_profiler_live_stack() {
        let t = Tracer::enabled_with_profiler(Profiler::enabled(997));
        let profiler = t.profiler();
        {
            let _outer = t.span("pass", || "detect".to_string());
            let _inner = t.span("file", || "a.py".to_string());
            // record() is synthetic — it must never enter the live stack.
            t.record("family", "PA_u1".to_string(), 0, 1, Vec::new());
            // Hold the nested spans open until the sampler has seen them.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while !profiler.report().samples.contains_key("pass:detect;file:a.py") {
                assert!(std::time::Instant::now() < deadline, "{:?}", profiler.report());
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        profiler.stop();
        // Every sample saw the nested guard stack, never the synthetic span.
        for stack in profiler.report().samples.keys() {
            assert!(
                stack == "pass:detect" || stack == "pass:detect;file:a.py",
                "unexpected sampled stack {stack:?}"
            );
        }
    }

    #[test]
    fn record_places_synthetic_spans() {
        let t = Tracer::enabled();
        t.record("family", "PA_u1 views.py".to_string(), 10, 5, vec![("hits", "2".to_string())]);
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!((events[0].ts_us, events[0].dur_us), (10, 5));
        assert_eq!(events[0].end_us(), 15);
    }
}
