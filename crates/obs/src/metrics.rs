//! Atomic counters and log-linear-bucket histograms with quantile
//! estimation and Prometheus text exposition.
//!
//! The registry is dynamic — families appear on first touch — but the hot
//! path is cheap: an increment takes one `RwLock` *read* lock to find the
//! family's `AtomicU64`, then a relaxed atomic add. The write lock is
//! only taken once per `(family, label)` pair, when it is first seen.
//! Aggregation across worker threads is therefore order-independent,
//! which is what keeps metric values deterministic at any thread count.
//!
//! Histogram bucket bounds are **per family** (see [`bucket_bounds`]):
//! per-file latencies use the parse-sized ladder, whole-request daemon
//! latencies a request-sized one, so neither family saturates its edge
//! buckets. Quantiles (p50/p95/p99) are estimated from the bucket counts
//! by linear interpolation within the enclosing bucket —
//! [`HistogramSnapshot::quantile`] — and surfaced both in
//! [`MetricsSnapshot`] and as summary-style `quantile="…"` lines in the
//! exposition.
//!
//! Known families carry curated `# HELP` text (see [`family_help`]); ad
//! hoc families fall back to a generic line so exposition is always
//! well-formed.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Histogram bucket upper bounds, in seconds — sized for per-file parse
/// and detection latencies (100 µs … 10 s, roughly log-spaced).
pub const LATENCY_BUCKETS_SECONDS: [f64; 12] =
    [0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 1.0, 10.0];

/// Histogram bucket upper bounds, in seconds, for whole-request daemon
/// latencies (queue wait, end-to-end handling): 5 µs … 120 s, log-linear
/// with a 1–2.5–5 progression. Wide enough that a cold full-corpus
/// analyze lands in a finite bucket instead of `+Inf`.
pub const REQUEST_BUCKETS_SECONDS: [f64; 18] = [
    0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.05, 0.25, 1.0, 5.0, 15.0, 60.0, 120.0,
];

/// The bucket ladder a histogram family records into. Daemon request
/// families (`cfinder_serve_*`) measure whole requests — queueing plus a
/// possibly cold multi-file analysis — and get the request-sized ladder;
/// everything else measures per-file work and keeps the parse-sized one.
pub fn bucket_bounds(family: &str) -> &'static [f64] {
    if family.starts_with("cfinder_serve_") {
        &REQUEST_BUCKETS_SECONDS
    } else {
        &LATENCY_BUCKETS_SECONDS
    }
}

/// The quantiles every histogram family reports (p50/p95/p99).
pub const REPORTED_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

/// Registry key: family name plus an optional single label pair.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    family: &'static str,
    label: Option<(&'static str, String)>,
}

/// A fixed-bucket histogram: per-bucket counts plus sum and count, all
/// atomic. The bucket ladder is chosen per family at creation (see
/// [`bucket_bounds`]).
struct Histogram {
    /// Upper bounds of the finite buckets, in seconds.
    bounds: &'static [f64],
    /// One slot per bound, plus a final `+Inf` slot.
    buckets: Vec<AtomicU64>,
    /// Sum of observations in nanoseconds (fits ~584 years).
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, seconds: f64) {
        let idx = self.bounds.iter().position(|&le| seconds <= le).unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct MetricsInner {
    counters: RwLock<BTreeMap<Key, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<Key, Arc<Histogram>>>,
}

/// A cheap-to-clone metrics registry; `Metrics::default()` is disabled
/// and records nothing.
#[derive(Clone, Default)]
pub struct Metrics(Option<Arc<MetricsInner>>);

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("Metrics(disabled)"),
            Some(_) => f.write_str("Metrics(enabled)"),
        }
    }
}

impl Metrics {
    /// A disabled registry: every operation is a no-op.
    pub fn disabled() -> Self {
        Metrics(None)
    }

    /// An enabled, empty registry.
    pub fn enabled() -> Self {
        Metrics(Some(Arc::new(MetricsInner::default())))
    }

    /// Whether metrics are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `v` to an unlabeled counter family.
    pub fn add(&self, family: &'static str, v: u64) {
        self.add_key(Key { family, label: None }, v);
    }

    /// Increments an unlabeled counter family by one.
    pub fn inc(&self, family: &'static str) {
        self.add(family, 1);
    }

    /// Adds `v` to the `{label_key="label_value"}` sample of a counter
    /// family.
    pub fn add_labeled(
        &self,
        family: &'static str,
        label_key: &'static str,
        label_value: &str,
        v: u64,
    ) {
        self.add_key(Key { family, label: Some((label_key, label_value.to_string())) }, v);
    }

    fn add_key(&self, key: Key, v: u64) {
        let Some(inner) = &self.0 else { return };
        {
            let map = inner.counters.read().expect("metrics lock poisoned");
            if let Some(c) = map.get(&key) {
                c.fetch_add(v, Ordering::Relaxed);
                return;
            }
        }
        let mut map = inner.counters.write().expect("metrics lock poisoned");
        map.entry(key)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .fetch_add(v, Ordering::Relaxed);
    }

    /// Records one observation (in seconds) into a histogram family.
    pub fn observe(&self, family: &'static str, seconds: f64) {
        let Some(inner) = &self.0 else { return };
        let key = Key { family, label: None };
        let hist = {
            let map = inner.histograms.read().expect("metrics lock poisoned");
            map.get(&key).cloned()
        };
        let hist = match hist {
            Some(h) => h,
            None => {
                let mut map = inner.histograms.write().expect("metrics lock poisoned");
                Arc::clone(
                    map.entry(key)
                        .or_insert_with(|| Arc::new(Histogram::new(bucket_bounds(family)))),
                )
            }
        };
        hist.observe(seconds);
    }

    /// A structured, deterministic snapshot of everything recorded so far
    /// (families and samples sorted by name/label).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.0 else { return MetricsSnapshot { families: Vec::new() } };
        let mut families: BTreeMap<&'static str, MetricFamily> = BTreeMap::new();
        for (key, counter) in inner.counters.read().expect("metrics lock poisoned").iter() {
            let fam = families.entry(key.family).or_insert_with(|| MetricFamily {
                name: key.family.to_string(),
                help: family_help(key.family).to_string(),
                kind: MetricKind::Counter,
                samples: Vec::new(),
            });
            fam.samples.push(Sample {
                label: key.label.as_ref().map(|(k, v)| (k.to_string(), v.clone())),
                value: counter.load(Ordering::Relaxed),
                histogram: None,
            });
        }
        for (key, hist) in inner.histograms.read().expect("metrics lock poisoned").iter() {
            let fam = families.entry(key.family).or_insert_with(|| MetricFamily {
                name: key.family.to_string(),
                help: family_help(key.family).to_string(),
                kind: MetricKind::Histogram,
                samples: Vec::new(),
            });
            fam.kind = MetricKind::Histogram;
            let mut buckets = Vec::new();
            let mut cumulative = 0;
            for (i, &le) in hist.bounds.iter().enumerate() {
                cumulative += hist.buckets[i].load(Ordering::Relaxed);
                buckets.push((le, cumulative));
            }
            cumulative += hist.buckets[hist.bounds.len()].load(Ordering::Relaxed);
            buckets.push((f64::INFINITY, cumulative));
            fam.samples.push(Sample {
                label: key.label.as_ref().map(|(k, v)| (k.to_string(), v.clone())),
                value: hist.count.load(Ordering::Relaxed),
                histogram: Some(HistogramSnapshot {
                    buckets,
                    sum_seconds: hist.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
                    count: hist.count.load(Ordering::Relaxed),
                }),
            });
        }
        MetricsSnapshot { families: families.into_values().collect() }
    }

    /// Renders the registry in Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers followed by samples,
    /// histogram families as `_bucket`/`_sum`/`_count` series.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for fam in self.snapshot().families {
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind));
            for sample in &fam.samples {
                match &sample.histogram {
                    None => {
                        let labels = match &sample.label {
                            Some((k, v)) => format!("{{{}=\"{}\"}}", k, escape_label(v)),
                            None => String::new(),
                        };
                        out.push_str(&format!("{}{} {}\n", fam.name, labels, sample.value));
                    }
                    Some(hist) => {
                        for (le, cumulative) in &hist.buckets {
                            let le =
                                if le.is_infinite() { "+Inf".to_string() } else { format!("{le}") };
                            out.push_str(&format!(
                                "{}_bucket{{le=\"{}\"}} {}\n",
                                fam.name, le, cumulative
                            ));
                        }
                        out.push_str(&format!("{}_sum {}\n", fam.name, hist.sum_seconds));
                        out.push_str(&format!("{}_count {}\n", fam.name, hist.count));
                        for q in REPORTED_QUANTILES {
                            out.push_str(&format!(
                                "{}{{quantile=\"{}\"}} {}\n",
                                fam.name,
                                q,
                                hist.quantile(q)
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Curated `# HELP` text for the analyzer's metric catalog; unknown
/// families get a generic line.
pub fn family_help(family: &str) -> &'static str {
    match family {
        "cfinder_analyses_total" => "Completed CFinder::analyze runs.",
        "cfinder_files_total" => "Source files submitted to the parser.",
        "cfinder_files_parsed_total" => "Source files that produced a (possibly partial) module.",
        "cfinder_files_dropped_total" => {
            "Source files that contributed nothing (guards, parse failure, panic)."
        }
        "cfinder_source_bytes_total" => "Bytes of source text submitted.",
        "cfinder_source_lines_total" => "Lines of analyzed source.",
        "cfinder_tokens_total" => "Lexer tokens produced.",
        "cfinder_ast_nodes_total" => "AST nodes allocated by the parser.",
        "cfinder_statements_total" => "Statements in parsed modules (deep count).",
        "cfinder_models_total" => "Model classes in the extracted registry.",
        "cfinder_resolutions_total" => {
            "Top-level expression resolutions served by the data-dependency resolver."
        }
        "cfinder_model_fields_total" => "Fields across all extracted models.",
        "cfinder_detections_total" => "Pattern matches, by PA_* pattern.",
        "cfinder_incidents_total" => "Degradation incidents, by kind.",
        "cfinder_missing_constraints_total" => {
            "Inferred constraints absent from the declared schema, by type."
        }
        "cfinder_existing_covered_total" => {
            "Inferred constraints already present in the declared schema."
        }
        "cfinder_stage_duration_microseconds_total" => "Pipeline stage wall-clock time, by stage.",
        "cfinder_cache_hits_total" => "Incremental-cache lookups that replayed a valid entry.",
        "cfinder_cache_misses_total" => {
            "Incremental-cache lookups that missed (absent, corrupt, or stale entries)."
        }
        "cfinder_cache_writes_total" => "Incremental-cache entries written back.",
        "cfinder_cache_write_errors_total" => {
            "Incremental-cache writes skipped on I/O or encode failure, by cause."
        }
        "cfinder_cache_corrupt_total" => {
            "Damaged (truncated, corrupt, stale) incremental-cache entries encountered."
        }
        "cfinder_file_parse_seconds" => "Per-file parse latency.",
        "cfinder_file_detect_seconds" => "Per-file pattern-detection latency.",
        "cfinder_serve_requests_total" => "Daemon request frames handled, by command.",
        "cfinder_serve_errors_total" => "Daemon typed error frames returned, by code.",
        "cfinder_serve_rejected_total" => "Daemon requests rejected by queue backpressure.",
        "cfinder_serve_queue_wait_seconds" => "Daemon request time spent queued before a worker.",
        "cfinder_serve_handle_seconds" => "Daemon request handling latency, by command.",
        "cfinder_serve_slow_requests_total" => {
            "Daemon requests slower end-to-end than the slow-request threshold."
        }
        "cfinder_profile_samples_total" => "Sampling-profiler stack samples captured.",
        "cfinder_query_executions_total" => "minidb query-plan executions.",
        "cfinder_query_rows_scanned_total" => "Base-table rows visited by minidb scans.",
        "cfinder_query_rows_returned_total" => "Rows returned by minidb query executions.",
        "cfinder_query_rewrites_total" => {
            "Constraint-driven plan rewrites applied by the minidb optimizer, by rule."
        }
        "cfinder_query_seconds" => "minidb query execution latency.",
        _ => "cfinder metric.",
    }
}

/// What a family's samples mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Fixed-bucket histogram.
    Histogram,
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
        })
    }
}

/// Point-in-time copy of one metric family.
#[derive(Debug, Clone)]
pub struct MetricFamily {
    /// Family name (`cfinder_*`).
    pub name: String,
    /// `# HELP` text.
    pub help: String,
    /// Counter or histogram.
    pub kind: MetricKind,
    /// Samples, sorted by label.
    pub samples: Vec<Sample>,
}

/// One sample of a family.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The single label pair, if the family is labeled.
    pub label: Option<(String, String)>,
    /// Counter value, or observation count for histograms.
    pub value: u64,
    /// Bucket data for histogram samples.
    pub histogram: Option<HistogramSnapshot>,
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// `(upper bound in seconds, cumulative count)` pairs ending with
    /// `+Inf`.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of observations in seconds.
    pub sum_seconds: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (q in `[0, 1]`) from the bucket counts,
    /// Prometheus `histogram_quantile` style: find the first bucket whose
    /// cumulative count reaches rank `q·count`, then interpolate linearly
    /// between the bucket's edges. Guarantees, pinned by the proptests:
    /// the estimate is monotone in `q`, lies within the enclosing
    /// bucket's `(lower, upper]` edges, and mass above the last finite
    /// bound clamps to that bound (`+Inf` has no width to interpolate).
    /// An empty histogram estimates 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut prev_bound = 0.0;
        let mut prev_cum = 0u64;
        for &(le, cum) in &self.buckets {
            if cum > prev_cum && cum as f64 >= rank {
                if le.is_infinite() {
                    return prev_bound;
                }
                let frac = ((rank - prev_cum as f64) / (cum - prev_cum) as f64).clamp(0.0, 1.0);
                return prev_bound + frac * (le - prev_bound);
            }
            prev_cum = prev_cum.max(cum);
            if le.is_finite() {
                prev_bound = le;
            }
        }
        prev_bound
    }
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Families sorted by name.
    pub families: Vec<MetricFamily>,
}

impl MetricsSnapshot {
    /// The value of an unlabeled counter (0 when absent).
    pub fn counter(&self, family: &str) -> u64 {
        self.sample(family, None)
    }

    /// The value of one labeled counter sample (0 when absent).
    pub fn labeled_counter(&self, family: &str, label_value: &str) -> u64 {
        self.sample(family, Some(label_value))
    }

    /// Sum of every sample of a family (0 when absent).
    pub fn family_total(&self, family: &str) -> u64 {
        self.families
            .iter()
            .filter(|f| f.name == family)
            .flat_map(|f| f.samples.iter())
            .map(|s| s.value)
            .sum()
    }

    /// The histogram snapshot of an unlabeled histogram family, when
    /// present and observed at least once.
    pub fn histogram(&self, family: &str) -> Option<&HistogramSnapshot> {
        self.families
            .iter()
            .filter(|f| f.name == family)
            .flat_map(|f| f.samples.iter())
            .find(|s| s.label.is_none())
            .and_then(|s| s.histogram.as_ref())
    }

    /// `[p50, p95, p99]` estimates for a histogram family, or `None`
    /// when the family is absent or empty.
    pub fn quantiles(&self, family: &str) -> Option<[f64; 3]> {
        let hist = self.histogram(family)?;
        if hist.count == 0 {
            return None;
        }
        Some(REPORTED_QUANTILES.map(|q| hist.quantile(q)))
    }

    fn sample(&self, family: &str, label_value: Option<&str>) -> u64 {
        self.families
            .iter()
            .filter(|f| f.name == family)
            .flat_map(|f| f.samples.iter())
            .find(|s| match (label_value, &s.label) {
                (None, None) => true,
                (Some(v), Some((_, sv))) => v == sv,
                _ => false,
            })
            .map(|s| s.value)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let m = Metrics::disabled();
        m.inc("cfinder_files_total");
        m.observe("cfinder_file_parse_seconds", 0.001);
        assert!(m.snapshot().families.is_empty());
        assert_eq!(m.to_prometheus_text(), "");
    }

    #[test]
    fn counters_accumulate_and_expose() {
        let m = Metrics::enabled();
        m.inc("cfinder_files_total");
        m.add("cfinder_files_total", 2);
        m.add_labeled("cfinder_detections_total", "pattern", "PA_u1", 4);
        m.add_labeled("cfinder_detections_total", "pattern", "PA_n1", 1);
        let snap = m.snapshot();
        assert_eq!(snap.counter("cfinder_files_total"), 3);
        assert_eq!(snap.labeled_counter("cfinder_detections_total", "PA_u1"), 4);
        assert_eq!(snap.family_total("cfinder_detections_total"), 5);
        let text = m.to_prometheus_text();
        assert!(text.contains("# TYPE cfinder_files_total counter"), "{text}");
        assert!(text.contains("cfinder_files_total 3"), "{text}");
        assert!(text.contains("cfinder_detections_total{pattern=\"PA_u1\"} 4"), "{text}");
        assert!(text.contains("# HELP cfinder_detections_total Pattern matches"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::enabled();
        m.observe("cfinder_file_parse_seconds", 0.0002); // ≤ 0.00025
        m.observe("cfinder_file_parse_seconds", 0.002); // ≤ 0.0025
        m.observe("cfinder_file_parse_seconds", 99.0); // +Inf
        let snap = m.snapshot();
        let fam = &snap.families[0];
        assert_eq!(fam.kind, MetricKind::Histogram);
        let hist = fam.samples[0].histogram.as_ref().unwrap();
        assert_eq!(hist.count, 3);
        assert!((hist.sum_seconds - 99.0022).abs() < 1e-3, "{}", hist.sum_seconds);
        let last = hist.buckets.last().unwrap();
        assert!(last.0.is_infinite());
        assert_eq!(last.1, 3, "+Inf bucket is the total count");
        // Cumulative monotone.
        for pair in hist.buckets.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        let text = m.to_prometheus_text();
        assert!(text.contains("cfinder_file_parse_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("cfinder_file_parse_seconds_count 3"), "{text}");
    }

    #[test]
    fn serve_families_use_request_scaled_buckets() {
        assert_eq!(bucket_bounds("cfinder_serve_handle_seconds"), &REQUEST_BUCKETS_SECONDS);
        assert_eq!(bucket_bounds("cfinder_serve_queue_wait_seconds"), &REQUEST_BUCKETS_SECONDS);
        assert_eq!(bucket_bounds("cfinder_file_parse_seconds"), &LATENCY_BUCKETS_SECONDS);
        let m = Metrics::enabled();
        // 30 s saturates the parse ladder (+Inf) but must land in a
        // finite request bucket.
        m.observe("cfinder_serve_handle_seconds", 30.0);
        let snap = m.snapshot();
        let hist = snap.histogram("cfinder_serve_handle_seconds").unwrap();
        let infinite = hist.buckets.last().unwrap();
        let before_inf = hist.buckets[hist.buckets.len() - 2];
        assert_eq!(infinite.1 - before_inf.1, 0, "30s must not overflow to +Inf");
        let text = m.to_prometheus_text();
        assert!(text.contains("cfinder_serve_handle_seconds_bucket{le=\"60\"} 1"), "{text}");
    }

    #[test]
    fn quantile_known_answers() {
        // All mass in (1.0, 2.0]: interpolation stays inside that bucket.
        let hist = HistogramSnapshot {
            buckets: vec![(1.0, 0), (2.0, 10), (f64::INFINITY, 10)],
            sum_seconds: 15.0,
            count: 10,
        };
        assert_eq!(hist.quantile(0.0), 1.0);
        assert_eq!(hist.quantile(0.5), 1.5);
        assert_eq!(hist.quantile(1.0), 2.0);

        // Mass split across two buckets.
        let hist = HistogramSnapshot {
            buckets: vec![(1.0, 10), (2.0, 20), (f64::INFINITY, 20)],
            sum_seconds: 0.0,
            count: 20,
        };
        assert_eq!(hist.quantile(0.25), 0.5);
        assert_eq!(hist.quantile(0.5), 1.0);
        assert_eq!(hist.quantile(0.75), 1.5);

        // All mass above the last finite bound clamps to it.
        let hist = HistogramSnapshot {
            buckets: vec![(1.0, 0), (f64::INFINITY, 5)],
            sum_seconds: 50.0,
            count: 5,
        };
        assert_eq!(hist.quantile(0.5), 1.0);
        assert_eq!(hist.quantile(0.99), 1.0);

        // Empty histogram estimates 0.
        let hist = HistogramSnapshot {
            buckets: vec![(1.0, 0), (f64::INFINITY, 0)],
            sum_seconds: 0.0,
            count: 0,
        };
        assert_eq!(hist.quantile(0.5), 0.0);
    }

    #[test]
    fn snapshot_and_exposition_surface_quantiles() {
        let m = Metrics::enabled();
        for _ in 0..100 {
            m.observe("cfinder_file_parse_seconds", 0.0002); // (0.0001, 0.00025]
        }
        let snap = m.snapshot();
        let [p50, p95, p99] = snap.quantiles("cfinder_file_parse_seconds").unwrap();
        assert!((p50 - 0.000175).abs() < 1e-12, "{p50}");
        assert!(p50 <= p95 && p95 <= p99, "monotone: {p50} {p95} {p99}");
        assert!((0.0001..=0.00025).contains(&p99), "within the bucket: {p99}");
        assert!(snap.quantiles("cfinder_no_such_family").is_none());
        let text = m.to_prometheus_text();
        assert!(text.contains("cfinder_file_parse_seconds{quantile=\"0.5\"} 0.000175"), "{text}");
        assert!(text.contains("cfinder_file_parse_seconds{quantile=\"0.99\"}"), "{text}");
    }

    #[test]
    fn concurrent_adds_are_summed() {
        let m = Metrics::enabled();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.inc("cfinder_tokens_total");
                    }
                });
            }
        });
        assert_eq!(m.snapshot().counter("cfinder_tokens_total"), 8000);
    }

    #[test]
    fn label_escaping() {
        let m = Metrics::enabled();
        m.add_labeled("weird", "k", "a\"b\\c", 1);
        let text = m.to_prometheus_text();
        assert!(text.contains("weird{k=\"a\\\"b\\\\c\"} 1"), "{text}");
    }
}
