//! Property tests for histogram quantile estimation.
//!
//! Three guarantees the estimator advertises ([`HistogramSnapshot::quantile`]):
//! monotone in `q`, bounded by the enclosing bucket's edges, and exact
//! (within the bucket) when all mass sits in a single bucket.

use cfinder_obs::metrics::{HistogramSnapshot, LATENCY_BUCKETS_SECONDS, REQUEST_BUCKETS_SECONDS};
use proptest::prelude::*;

/// Builds a snapshot over the given ladder from per-bucket (non-cumulative)
/// counts; `counts` has one entry per finite bound plus the `+Inf` slot.
fn snapshot(bounds: &[f64], counts: &[u64]) -> HistogramSnapshot {
    assert_eq!(counts.len(), bounds.len() + 1);
    let mut buckets = Vec::new();
    let mut cumulative = 0;
    for (i, &le) in bounds.iter().enumerate() {
        cumulative += counts[i];
        buckets.push((le, cumulative));
    }
    cumulative += counts[bounds.len()];
    buckets.push((f64::INFINITY, cumulative));
    HistogramSnapshot { buckets, sum_seconds: 0.0, count: cumulative }
}

/// Per-bucket counts for the parse ladder (12 bounds + `+Inf`).
fn counts_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..40, 13..14)
}

/// The `(lower, upper]` edges of the bucket holding rank `q·count`
/// (`upper` is `+Inf` for overflow mass).
fn enclosing_bucket(hist: &HistogramSnapshot, q: f64) -> (f64, f64) {
    let rank = q * hist.count as f64;
    let mut prev_bound = 0.0;
    let mut prev_cum = 0u64;
    for &(le, cum) in &hist.buckets {
        if cum > prev_cum && cum as f64 >= rank {
            return (prev_bound, le);
        }
        prev_cum = prev_cum.max(cum);
        if le.is_finite() {
            prev_bound = le;
        }
    }
    (prev_bound, f64::INFINITY)
}

proptest! {
    /// Quantile estimates never decrease as q grows.
    #[test]
    fn quantiles_are_monotone_in_q(counts in counts_strategy(), a in 0u32..=1000, b in 0u32..=1000) {
        let hist = snapshot(&LATENCY_BUCKETS_SECONDS, &counts);
        let (lo, hi) = (a.min(b), a.max(b));
        let ql = hist.quantile(f64::from(lo) / 1000.0);
        let qh = hist.quantile(f64::from(hi) / 1000.0);
        prop_assert!(ql <= qh, "q={lo}/1000 -> {ql} but q={hi}/1000 -> {qh}");
    }

    /// Every estimate lies within the edges of the bucket its rank lands
    /// in; mass beyond the last finite bound clamps to that bound.
    #[test]
    fn quantiles_stay_within_the_enclosing_bucket(counts in counts_strategy(), qi in 0u32..=1000) {
        let hist = snapshot(&LATENCY_BUCKETS_SECONDS, &counts);
        let q = f64::from(qi) / 1000.0;
        let est = hist.quantile(q);
        if hist.count == 0 {
            prop_assert_eq!(est, 0.0);
        } else {
            let (lower, upper) = enclosing_bucket(&hist, q);
            if upper.is_infinite() {
                prop_assert_eq!(est, lower, "overflow mass clamps to the last finite bound");
            } else {
                prop_assert!(est >= lower && est <= upper, "{est} outside ({lower}, {upper}]");
            }
        }
    }

    /// With all mass in one bucket the estimate is exactly the linear
    /// interpolation across that bucket: q=0 gives the lower edge, q=1
    /// the upper, and everything stays inside.
    #[test]
    fn single_bucket_mass_is_exact(idx in 0usize..12, n in 1u64..100, qi in 0u32..=1000) {
        let mut counts = vec![0u64; 13];
        counts[idx] = n;
        let hist = snapshot(&LATENCY_BUCKETS_SECONDS, &counts);
        let lower = if idx == 0 { 0.0 } else { LATENCY_BUCKETS_SECONDS[idx - 1] };
        let upper = LATENCY_BUCKETS_SECONDS[idx];
        let q = f64::from(qi) / 1000.0;
        let expected = lower + (q * n as f64).clamp(0.0, n as f64) / n as f64 * (upper - lower);
        let est = hist.quantile(q);
        prop_assert!((est - expected).abs() < 1e-12, "q={q}: {est} != {expected}");
        prop_assert_eq!(hist.quantile(0.0), lower);
        prop_assert_eq!(hist.quantile(1.0), upper);
    }

    /// The request ladder honors the same properties (the bounds differ,
    /// the estimator must not care).
    #[test]
    fn request_ladder_quantiles_hold(idx in 0usize..18, n in 1u64..50) {
        let mut counts = vec![0u64; 19];
        counts[idx] = n;
        let hist = snapshot(&REQUEST_BUCKETS_SECONDS, &counts);
        let lower = if idx == 0 { 0.0 } else { REQUEST_BUCKETS_SECONDS[idx - 1] };
        let upper = REQUEST_BUCKETS_SECONDS[idx];
        let p50 = hist.quantile(0.5);
        prop_assert!(p50 > lower && p50 <= upper, "{p50} outside ({lower}, {upper}]");
    }
}
