//! Profiler aggregation determinism.
//!
//! Wall-clock sampling is inherently nondeterministic, so the profiler's
//! contract is pinned one level down: folding the *same multiset* of
//! stack snapshots produces the identical report no matter how the
//! snapshots were distributed across recording threads. This is what
//! makes profiles comparable run to run once the sampled stacks agree.

use cfinder_obs::Profiler;

/// A fixed, deterministic multiset of stack snapshots, roughly shaped
/// like the analyzer's span hierarchy (pass → file → family).
fn fixed_snapshots() -> Vec<Vec<String>> {
    let mut stacks = Vec::new();
    for i in 0..120u32 {
        let file = format!("file:parse f{}.py", i % 7);
        match i % 4 {
            0 => stacks.push(vec!["pass:parse".to_string(), file]),
            1 => {
                stacks.push(vec!["pass:detect".to_string(), file, format!("family:PA_u{}", i % 3)])
            }
            2 => stacks.push(vec!["pass:detect".to_string(), file]),
            _ => stacks.push(vec!["pass:diff".to_string()]),
        }
    }
    stacks
}

/// Records the snapshots from `threads` worker threads (round-robin
/// partition) and returns the folded report.
fn fold_with_threads(threads: usize) -> String {
    let profiler = Profiler::enabled(1);
    profiler.stop(); // aggregation only — no background sampling
    let snapshots = fixed_snapshots();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let profiler = profiler.clone();
            let share: Vec<Vec<String>> =
                snapshots.iter().skip(t).step_by(threads).cloned().collect();
            scope.spawn(move || {
                for stack in &share {
                    profiler.record_sample(stack);
                }
            });
        }
    });
    profiler.report().folded()
}

#[test]
fn folded_report_is_identical_across_thread_counts() {
    let one = fold_with_threads(1);
    assert!(!one.is_empty());
    assert_eq!(one, fold_with_threads(2), "2 threads diverge from 1");
    assert_eq!(one, fold_with_threads(4), "4 threads diverge from 1");
}

#[test]
fn hot_spans_are_identical_across_thread_counts() {
    let reports: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let profiler = Profiler::enabled(1);
            profiler.stop();
            let snapshots = fixed_snapshots();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let profiler = profiler.clone();
                    let share: Vec<Vec<String>> =
                        snapshots.iter().skip(t).step_by(threads).cloned().collect();
                    scope.spawn(move || {
                        for stack in &share {
                            profiler.record_sample(stack);
                        }
                    });
                }
            });
            profiler.report()
        })
        .collect();
    assert_eq!(reports[0].total_samples(), 120);
    assert_eq!(reports[0].hot_spans(10), reports[1].hot_spans(10));
    assert_eq!(reports[0].hot_spans(10), reports[2].hot_spans(10));
    // The ranking itself is meaningful: self-time sorted descending.
    let hot = reports[0].hot_spans(10);
    for pair in hot.windows(2) {
        assert!(pair[0].self_samples >= pair[1].self_samples);
    }
}
