//! Vendored `rand` shim.
//!
//! Provides the subset the workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool}` over
//! integer ranges. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic for a fixed seed, but **not** stream-compatible with
//! upstream rand's ChaCha12 `StdRng`.

/// Seeding interface (only the `u64` entry point is needed here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value interface over a core u64 generator.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 high-quality bits -> uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

/// A range that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the integer types the workspace draws.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sample via 128-bit multiply-shift; bias is
/// negligible (< 2^-64) for the small spans used here.
fn bounded(rng: &mut (impl Rng + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + bounded(rng, span + 1) as i128) as $ty
            }
        }
    )*};
}

sample_range_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (seeded through SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0..8);
            assert!((0..8).contains(&v));
            let w = rng.gen_range(1..=10i64);
            assert!((1..=10).contains(&w));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.15)).count();
        assert!((1000..2000).contains(&hits), "p=0.15 frequency off: {hits}");
    }
}
