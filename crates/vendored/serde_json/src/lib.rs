//! Vendored `serde_json` shim.
//!
//! Provides the workspace's JSON surface — `to_string`, `to_string_pretty`,
//! `from_str`, `from_slice`, a dynamic [`Value`] — on top of the vendored
//! `serde` value model. Maps preserve insertion order (like serde_json with
//! `preserve_order`), which keeps struct field order stable in output.

pub use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes an instance of `T` from a JSON string.
pub fn from_str<'de, T: serde::Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes an instance of `T` from JSON bytes.
pub fn from_slice<'de, T: serde::Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// --- printer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats so the text
                // re-parses as a float, matching serde_json.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser -----------------------------------------------------------------

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for non-BMP characters.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate in string"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let src = r#"{"a": [1, -2, 3.5, true, null], "b": {"c": "x\ny"}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"].as_seq().unwrap().len(), 5);
        assert_eq!(v["b"]["c"].as_str(), Some("x\ny"));
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(to_string(&back).unwrap(), compact);
    }

    #[test]
    fn pretty_matches_compact_semantics() {
        let v: Value = from_str(r#"{"k":[{"x":1}]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(to_string(&reparsed).unwrap(), to_string(&v).unwrap());
        assert!(pretty.contains("\n  "));
    }
}
