//! Vendored `serde` shim.
//!
//! A value-model take on serde's API: `Serialize` lowers a Rust value to a
//! dynamic [`Value`], `Deserialize` lifts one back. The generic
//! `Serializer`/`Deserializer` traits exist so code written against real
//! serde (custom `#[serde(with = "...")]` modules, generic bounds)
//! compiles unchanged; both are implemented by transporting a [`Value`].
//!
//! Only the API surface this workspace uses is provided.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The dynamic data model every (de)serialization round-trips through.
///
/// Re-exported by the vendored `serde_json` as its `Value` type.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer outside the `i64` range.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered so output is deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// `serde_json`-compatible alias for [`Value::as_seq`].
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        self.as_seq()
    }

    /// Borrows the entries if this is an object.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as a signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The value as a float (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_seq().and_then(|s| s.get(idx)).unwrap_or(&NULL)
    }
}

/// The single error type used on both the serialize and deserialize paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// serde's `ser::Error`/`de::Error` construction hook, shared by both
/// directions here.
pub trait CustomError: Sized {
    /// Builds an error from a display-able message.
    fn custom<M: fmt::Display>(msg: M) -> Self;
}

impl CustomError for Error {
    fn custom<M: fmt::Display>(msg: M) -> Self {
        Error::new(msg.to_string())
    }
}

/// Alias kept for generated code readability.
pub type DeError = Error;

/// A data format that can consume a [`Value`].
pub trait Serializer: Sized {
    /// Successful output.
    type Ok;
    /// Error type.
    type Error: CustomError;

    /// Consumes a fully-lowered value.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can produce a [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: CustomError;

    /// Produces the transported value.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can lower itself to the [`Value`] data model.
pub trait Serialize {
    /// Lowers `self` to a [`Value`].
    fn to_value(&self) -> Value;

    /// serde-compatible entry point.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A type that can lift itself from the [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    /// Lifts a value into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// serde-compatible entry point.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.take_value()?;
        Self::from_value(&v).map_err(<D::Error as CustomError>::custom)
    }
}

/// Transport serializer/deserializer used by generated code to call
/// `#[serde(with = "...")]` modules.
pub mod value {
    use super::*;

    /// A [`Serializer`] whose output is the lowered [`Value`] itself.
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = Error;

        fn serialize_value(self, v: Value) -> Result<Value, Error> {
            Ok(v)
        }
    }

    /// A [`Deserializer`] over an owned [`Value`].
    pub struct ValueDeserializer {
        value: Value,
    }

    impl ValueDeserializer {
        /// Wraps a value.
        pub fn new(value: Value) -> Self {
            ValueDeserializer { value }
        }
    }

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = Error;

        fn take_value(self) -> Result<Value, Error> {
            Ok(self.value)
        }
    }

    /// Field lookup used by generated `Deserialize` impls; absent keys
    /// read as `Null` so `Option` fields default cleanly.
    pub fn get_field<'a>(m: &'a [(String, Value)], key: &str) -> &'a Value {
        m.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&NULL)
    }
}

// --- Serialize impls for std types -----------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}

ser_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

// --- Deserialize impls for std types ---------------------------------------

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::new(format!("expected {expected}, got {got:?}")))
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v.as_i64() {
                    Some(i) => <$t>::try_from(i)
                        .map_err(|_| Error::new(format!("integer {i} out of range for {}", stringify!($t)))),
                    None => type_err("integer", v),
                }
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl<'de> Deserialize<'de> for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64().ok_or_else(|| Error::new(format!("expected unsigned integer, got {v:?}")))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::new(format!("expected number, got {v:?}")))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::new(format!("expected boolean, got {v:?}")))
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new(format!("expected string, got {v:?}")))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some(s) => s.iter().map(T::from_value).collect(),
            None => type_err("sequence", v),
        }
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some(s) => s.iter().map(T::from_value).collect(),
            None => type_err("sequence", v),
        }
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_map() {
            Some(m) => m.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect(),
            None => type_err("object", v),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+)),+) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::new(format!("expected {}-tuple, got {v:?}", $len)))?;
                if s.len() != $len {
                    return Err(Error::new(format!("expected {}-tuple, got {} elements", $len, s.len())));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )+};
}

de_tuple!((1; 0 A), (2; 0 A, 1 B), (3; 0 A, 1 B, 2 C), (4; 0 A, 1 B, 2 C, 3 D));

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => type_err("null", other),
        }
    }
}
