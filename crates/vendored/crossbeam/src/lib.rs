//! Vendored `crossbeam` shim.
//!
//! Implements `crossbeam::scope` / `crossbeam::thread::scope` on top of
//! `std::thread::scope` (stable since Rust 1.63). The crossbeam API differs
//! from std in two ways this shim preserves:
//!
//! * the spawn closure receives the scope again (`scope.spawn(|s| ...)`),
//!   allowing nested spawns;
//! * `scope()` returns `Err(panic payload)` instead of propagating a child
//!   panic, so callers write `crossbeam::scope(...).expect("...")`.

pub use thread::{scope, Scope, ScopedJoinHandle};

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope or of joining one scoped thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to a scoped thread; joined implicitly at scope exit if not
    /// joined explicitly.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Crossbeam-style scope: a `Copy` wrapper over std's scope handle so a
    /// spawned closure can carry it by value and hand `&Scope` back to its
    /// own body.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let this = *self;
            ScopedJoinHandle { inner: this.inner.spawn(move || f(&this)) }
        }
    }

    /// Runs `f` with a scope handle; all threads spawned in the scope are
    /// joined before this returns. A child panic is returned as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawn_and_collect() {
        let data = vec![1, 2, 3, 4];
        let total: i32 = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&n| s.spawn(move |_| n * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn() {
        let r = super::scope(|s| s.spawn(|s2| s2.spawn(|_| 7).join().unwrap()).join().unwrap())
            .unwrap();
        assert_eq!(r, 7);
    }

    #[test]
    fn child_panic_is_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
