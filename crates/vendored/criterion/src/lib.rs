//! Vendored `criterion` shim.
//!
//! A minimal wall-clock benchmark harness exposing the API subset the
//! `cfinder-bench` targets use. Each benchmark warms up briefly, then runs
//! until a small time budget or iteration cap is reached, and prints the
//! mean iteration time (plus throughput when configured). There are no
//! statistical analyses or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark. Deliberately small: these benches run
/// in CI-adjacent environments where statistical rigor matters less than
/// finishing quickly while still exercising the measured code.
const WARMUP_ITERS: u64 = 2;
const TIME_BUDGET: Duration = Duration::from_millis(300);
const MAX_ITERS: u64 = 1_000_000;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, None, &mut f);
        self.benchmarks_run += 1;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    /// Prints a closing line; called by `criterion_main!`.
    pub fn final_summary(&self) {
        println!("benchmarks complete: {} run", self.benchmarks_run);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-boxed here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, &mut f);
        self.criterion.benchmarks_run += 1;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Benchmark identifier; constructed from labels or parameters.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }

    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units for reported throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How much setup output to batch per measurement (ignored: every
/// iteration gets a fresh setup value).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let budget_start = Instant::now();
        while self.iters < MAX_ITERS && budget_start.elapsed() < TIME_BUDGET {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm = setup();
        black_box(routine(warm));
        let budget_start = Instant::now();
        while self.iters < MAX_ITERS && budget_start.elapsed() < TIME_BUDGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut bencher = Bencher { iters: 0, elapsed: Duration::ZERO };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label:<50} (no iterations recorded)");
        return;
    }
    let mean = bencher.elapsed / bencher.iters as u32;
    let mut line = format!("{label:<50} {mean:>12?}/iter  ({} iters)", bencher.iters);
    if let Some(t) = throughput {
        let per_sec = |units: u64| units as f64 / mean.as_secs_f64();
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}
