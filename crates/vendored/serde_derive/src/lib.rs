//! Vendored `serde_derive` shim.
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored value-model
//! `serde` crate. The input item is parsed directly from the proc-macro token
//! stream (no `syn`/`quote` — they are unavailable offline), which is
//! practical because the generated code only needs field/variant *names*:
//! field types are recovered by inference in the emitted code.
//!
//! Supported shapes (everything this workspace derives on):
//! * structs with named fields, including `#[serde(with = "module")]` fields;
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde's default);
//! * lifetime-generic structs (`Serialize` only).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: name plus optional `#[serde(with = "...")]` module path.
struct Field {
    name: String,
    with: Option<String>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// Raw generics tokens including the angle brackets (e.g. `< 'a >`),
    /// or empty.
    generics: String,
    kind: Kind,
}

/// Derives the value-model `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = match &input.kind {
        Kind::Struct(fields) => serialize_struct_body(fields),
        Kind::Enum(variants) => serialize_enum_body(&input.name, variants),
    };
    let code = format!(
        "impl{g} ::serde::Serialize for {n}{g} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        g = input.generics,
        n = input.name,
    );
    code.parse().expect("serde_derive: generated Serialize impl parses")
}

/// Derives the value-model `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    assert!(
        input.generics.is_empty(),
        "serde_derive shim: Deserialize on generic types is not supported (deriving on `{}`)",
        input.name
    );
    let body = match &input.kind {
        Kind::Struct(fields) => deserialize_struct_body(&input.name, fields),
        Kind::Enum(variants) => deserialize_enum_body(&input.name, variants),
    };
    let code = format!(
        "impl<'de> ::serde::Deserialize<'de> for {n} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}",
        n = input.name,
    );
    code.parse().expect("serde_derive: generated Deserialize impl parses")
}

// --- code generation --------------------------------------------------------

fn serialize_struct_body(fields: &[Field]) -> String {
    let mut out = String::from("let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        match &f.with {
            Some(path) => out.push_str(&format!(
                "__m.push((\"{n}\".to_string(), match {path}::serialize(&self.{n}, \
                 ::serde::value::ValueSerializer) {{ Ok(__v) => __v, Err(__e) => \
                 ::std::panic!(\"with-serializer failed: {{}}\", __e) }}));\n",
                n = f.name,
            )),
            None => out.push_str(&format!(
                "__m.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                n = f.name,
            )),
        }
    }
    out.push_str("::serde::Value::Map(__m)");
    out
}

fn deserialize_struct_body(name: &str, fields: &[Field]) -> String {
    let mut out = format!(
        "let __m = __v.as_map().ok_or_else(|| ::serde::Error::new(\
         \"expected object for struct {name}\"))?;\n\
         ::std::result::Result::Ok({name} {{\n"
    );
    for f in fields {
        match &f.with {
            Some(path) => out.push_str(&format!(
                "{n}: {path}::deserialize(::serde::value::ValueDeserializer::new(\
                 ::serde::value::get_field(__m, \"{n}\").clone()))?,\n",
                n = f.name,
            )),
            None => out.push_str(&format!(
                "{n}: ::serde::Deserialize::from_value(::serde::value::get_field(__m, \"{n}\"))?,\n",
                n = f.name,
            )),
        }
    }
    out.push_str("})");
    out
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut out = String::from("match self {\n");
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => out
                .push_str(&format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n")),
            VariantKind::Tuple(1) => out.push_str(&format!(
                "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                 ::serde::Serialize::to_value(__f0))]),\n"
            )),
            VariantKind::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let elems: Vec<String> =
                    binds.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
                out.push_str(&format!(
                    "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                     ::serde::Value::Seq(vec![{}]))]),\n",
                    binds.join(", "),
                    elems.join(", "),
                ));
            }
            VariantKind::Struct(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                            n = f.name
                        )
                    })
                    .collect();
                out.push_str(&format!(
                    "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                     ::serde::Value::Map(vec![{}]))]),\n",
                    binds.join(", "),
                    entries.join(", "),
                ));
            }
        }
    }
    out.push_str("}");
    out
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => unit_arms
                .push_str(&format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n")),
            VariantKind::Tuple(1) => data_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                 ::serde::Deserialize::from_value(__inner)?)),\n"
            )),
            VariantKind::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __s = __inner.as_seq().ok_or_else(|| ::serde::Error::new(\
                     \"expected sequence for variant {name}::{vn}\"))?;\n\
                     if __s.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::Error::new(\"wrong arity for variant {name}::{vn}\")); }}\n\
                     ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                    elems.join(", "),
                ));
            }
            VariantKind::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{n}: ::serde::Deserialize::from_value(\
                             ::serde::value::get_field(__fm, \"{n}\"))?",
                            n = f.name
                        )
                    })
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __fm = __inner.as_map().ok_or_else(|| ::serde::Error::new(\
                     \"expected object for variant {name}::{vn}\"))?;\n\
                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n}}\n",
                    inits.join(", "),
                ));
            }
        }
    }
    format!(
        "match __v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
         \"unknown variant `{{}}` for enum {name}\", __other))),\n\
         }},\n\
         ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
         let (__k, __inner) = &__m[0];\n\
         match __k.as_str() {{\n\
         {data_arms}\
         __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
         \"unknown variant `{{}}` for enum {name}\", __other))),\n\
         }}\n\
         }},\n\
         __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
         \"cannot deserialize enum {name} from {{:?}}\", __other))),\n\
         }}"
    )
}

// --- token-stream parsing ---------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility until `struct` / `enum`.
    let mut is_enum = false;
    loop {
        assert!(i < tokens.len(), "serde_derive shim: no struct/enum keyword found");
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            TokenTree::Ident(id) if *id.to_string() == *"struct" => {
                i += 1;
                break;
            }
            TokenTree::Ident(id) if *id.to_string() == *"enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            _ => i += 1, // visibility etc.
        }
    }

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;

    // Raw generics capture: from `<` to the matching `>`.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            loop {
                let t = tokens.get(i).unwrap_or_else(|| {
                    panic!("serde_derive shim: unterminated generics on {name}")
                });
                let mut space_after = true;
                if let TokenTree::Punct(p) = t {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                    // A joint punct (e.g. the `'` of a lifetime) must stay
                    // glued to the next token or re-parsing breaks.
                    if p.spacing() == proc_macro::Spacing::Joint {
                        space_after = false;
                    }
                }
                generics.push_str(&t.to_string());
                if space_after {
                    generics.push(' ');
                }
                i += 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }

    // Skip a where-clause if present (not used in this workspace).
    while i < tokens.len() {
        if let TokenTree::Group(g) = &tokens[i] {
            if g.delimiter() == Delimiter::Brace {
                break;
            }
        }
        i += 1;
    }
    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive shim: expected braced body for {name}, got {other}"),
    };

    let kind =
        if is_enum { Kind::Enum(parse_variants(body)) } else { Kind::Struct(parse_fields(body)) };
    Input { name, generics: generics.trim().to_string(), kind }
}

/// Parses `#[serde(with = "path")]` out of one attribute group, if present.
fn serde_with_attr(group: &proc_macro::Group) -> Option<String> {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(args)] if *id.to_string() == *"serde" => {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            match args.as_slice() {
                [TokenTree::Ident(k), TokenTree::Punct(eq), TokenTree::Literal(lit)]
                    if *k.to_string() == *"with" && eq.as_char() == '=' =>
                {
                    Some(lit.to_string().trim_matches('"').to_string())
                }
                _ => panic!(
                    "serde_derive shim: only #[serde(with = \"...\")] is supported, got #[serde({})]",
                    args.iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
                ),
            }
        }
        _ => None, // doc comments and other tool attributes
    }
}

/// Parses named fields from a brace-group stream.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Leading attributes.
        let mut with = None;
        loop {
            match (&tokens.get(i), &tokens.get(i + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    if let Some(w) = serde_with_attr(g) {
                        with = Some(w);
                    }
                    i += 2;
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if let TokenTree::Ident(id) = &tokens[i] {
            if *id.to_string() == *"pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other}"),
        };
        i += 1;
        // `:` then the type, up to a top-level comma (angle-depth aware:
        // commas inside `<...>` belong to the type).
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive shim: expected `:` after field `{name}`"
        );
        i += 1;
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, with });
    }
    fields
}

/// Parses enum variants from a brace-group stream.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Leading attributes (doc comments).
        while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(_))) =
            (&tokens.get(i), &tokens.get(i + 1))
        {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Trailing comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Counts top-level (angle-depth zero) comma-separated types in a tuple
/// variant's parenthesized field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    saw_tokens_since_comma = false;
                    count += 1;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    // Trailing comma doesn't introduce a field.
    if !saw_tokens_since_comma {
        count -= 1;
    }
    count
}
