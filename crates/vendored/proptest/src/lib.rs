//! Vendored `proptest` shim.
//!
//! Random-sampling property testing with the API subset this workspace
//! uses: `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! `Strategy` with `prop_map`/`prop_recursive`/`boxed`, `Just`, integer
//! ranges, regex-subset `&str` strategies, `collection::{vec, btree_set}`,
//! and `option::of`.
//!
//! Differences from upstream: cases are sampled with a per-test
//! deterministic seed (derived from the test name) and failures report the
//! generated inputs, but there is **no shrinking**.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet`s that aims for a cardinality drawn from
    /// `size` (best effort when the element domain is small).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(!size.is_empty(), "collection::btree_set: empty size range");
        BTreeSetStrategy { element, size }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.usize_in(self.size.clone());
            let mut out = BTreeSet::new();
            // Bounded retries in case the element domain is smaller than
            // the requested cardinality.
            let mut attempts = 0;
            while out.len() < target && attempts < 10 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`: `Some` three times out of four.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { element }
    }

    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.element.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

// --- macros -----------------------------------------------------------------

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run_cases(
                    ::std::stringify!($name),
                    __config.cases,
                    |__rng, __repr| {
                        let __vals =
                            ($( $crate::strategy::Strategy::generate(&($strat), __rng), )*);
                        *__repr = ::std::format!("{:?}", __vals);
                        let __run = move || -> ::std::result::Result<(), ::std::string::String> {
                            let ($($arg,)*) = __vals;
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __run()
                    },
                );
            }
        )*
    };
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(
            vec![$($crate::strategy::Strategy::boxed($strat)),+]
        )
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the case's
/// generated inputs are reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                ::std::stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l, __r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}
