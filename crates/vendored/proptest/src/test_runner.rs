//! Deterministic test-case runner and RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Per-`proptest!` configuration (only the case count is configurable).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// RNG handed to strategies; deterministic per (test name, case index).
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Direct access for strategies that sample typed ranges.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Uniform in a half-open range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.inner.gen_range(range)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }
}

/// Runs `cases` iterations of `f`. The callback writes a debug rendering of
/// the generated inputs into its second argument *before* running the body,
/// so both assertion failures and panics can report the offending inputs.
pub fn run_cases<F>(name: &str, cases: u32, mut f: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), String>,
{
    let base = fnv1a(name.as_bytes());
    for case in 0..cases {
        let seed = base ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        let mut repr = String::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut rng, &mut repr)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => {
                panic!("proptest `{name}` failed at case {case}/{cases}: {msg}\n    inputs: {repr}")
            }
            Err(payload) => {
                eprintln!("proptest `{name}` panicked at case {case}/{cases}; inputs: {repr}");
                resume_unwind(payload);
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
