//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::rc::Rc;

/// A generator of random values. Unlike upstream proptest there is no
/// value tree: strategies sample directly and nothing shrinks.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive structures: at each of `depth` levels the result is
    /// an even choice between stopping at the previous level and recursing
    /// once more via `recurse`. (`_desired_size` and `_expected_branch` are
    /// accepted for upstream signature compatibility and ignored.)
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(current.clone()).boxed();
            current = Union::new(vec![current, deeper]).boxed();
        }
        current
    }
}

/// Type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice between strategies sharing a value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_below(self.options.len());
        self.options[i].generate(rng)
    }
}

// --- tuples -----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// --- integer ranges ---------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// --- regex-subset string strategies ----------------------------------------

/// `&'static str` patterns act as generators for matching strings, using a
/// regex subset: literal chars, `.`, `[...]` classes with ranges, and
/// `{n}` / `{m,n}` quantifiers.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count =
                if atom.min == atom.max { atom.min } else { rng.usize_in(atom.min..atom.max + 1) };
            for _ in 0..count {
                let i = rng.usize_below(atom.chars.len());
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = unescape(&chars, &mut i, pattern);
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1; // consume `-`
                        let hi = unescape(&chars, &mut i, pattern);
                        assert!(lo <= hi, "bad range in class: {pattern}");
                        set.extend(lo..=hi);
                    } else {
                        set.push(lo);
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern: {pattern}");
                i += 1; // consume `]`
                set
            }
            _ => {
                vec![unescape(&chars, &mut i, pattern)]
            }
        };
        assert!(!set.is_empty(), "empty character set in pattern: {pattern}");
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern: {pattern}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.parse().unwrap_or_else(|_| panic!("bad quantifier in {pattern}")),
                    n.parse().unwrap_or_else(|_| panic!("bad quantifier in {pattern}")),
                ),
                None => {
                    let n = body.parse().unwrap_or_else(|_| panic!("bad quantifier in {pattern}"));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern: {pattern}");
        atoms.push(Atom { chars: set, min, max });
    }
    atoms
}

/// Reads one (possibly `\`-escaped) literal char, advancing the cursor.
fn unescape(chars: &[char], i: &mut usize, pattern: &str) -> char {
    let c = chars[*i];
    *i += 1;
    if c != '\\' {
        return c;
    }
    let esc = *chars.get(*i).unwrap_or_else(|| panic!("dangling escape in pattern: {pattern}"));
    *i += 1;
    match esc {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!((1..=7).contains(&s.chars().count()), "bad len: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
        for _ in 0..50 {
            let s = "[ -~\n]{0,120}".generate(&mut rng);
            assert!(s.chars().count() <= 120);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        let exact = "[a-d]".generate(&mut rng);
        assert_eq!(exact.len(), 1);
    }

    #[test]
    fn union_and_map_compose() {
        let mut rng = TestRng::new(2);
        let strat =
            crate::prop_oneof![(0i64..10).prop_map(|n| n.to_string()), Just("x".to_string()),];
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v == "x" || v.parse::<i64>().map(|n| (0..10).contains(&n)) == Ok(true));
        }
    }

    #[test]
    fn recursive_terminates() {
        let leaf = Just(1u32).boxed();
        let tree =
            leaf.prop_recursive(3, 24, 4, |inner| (inner.clone(), inner).prop_map(|(a, b)| a + b));
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = tree.generate(&mut rng);
            assert!((1..=16).contains(&v));
        }
    }
}
