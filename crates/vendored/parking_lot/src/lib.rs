//! Vendored `parking_lot` shim: non-poisoning `Mutex`/`RwLock` wrappers
//! around `std::sync`. A poisoned std lock is recovered transparently,
//! matching parking_lot's no-poisoning semantics.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock with parking_lot's signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
