//! Hand-written lexer for the Python subset.
//!
//! Implements the interesting parts of Python's lexical structure that the
//! parser needs: significant indentation (`INDENT`/`DEDENT` tokens driven by
//! an indent stack), implicit line joining inside brackets, explicit joining
//! with a trailing backslash, comments, string literals (single/double/
//! triple-quoted, raw and f-string prefixes), adjacent string-literal
//! concatenation is left to the parser, and the full operator set.

use crate::error::{ParseError, Result};
use crate::span::{Pos, Span};
use crate::token::{Token, TokenKind};

/// Converts `source` into a token stream terminated by a single
/// [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input: inconsistent dedents,
/// unterminated strings, stray characters, or tabs mixed into indentation
/// in a way that cannot be resolved (tabs count as 8 columns, like CPython's
/// default).
///
/// # Examples
///
/// ```
/// use cfinder_pyast::lexer::lex;
/// use cfinder_pyast::token::TokenKind;
///
/// let tokens = lex("x = 1\n").unwrap();
/// assert!(matches!(tokens[0].kind, TokenKind::Name(ref n) if n == "x"));
/// assert_eq!(tokens[1].kind, TokenKind::Eq);
/// assert_eq!(tokens[2].kind, TokenKind::Int(1));
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let mut lexer = Lexer::new(source);
    lexer.run()?;
    Ok(lexer.tokens)
}

/// The output of [`lex_recovering`]: a usable token stream plus every
/// lexical error that was tolerated while producing it.
#[derive(Debug)]
pub struct LexRecovery {
    /// The token stream, always terminated by [`TokenKind::Eof`] and with
    /// balanced `Indent`/`Dedent` pairs, exactly like strict [`lex`]
    /// output.
    pub tokens: Vec<Token>,
    /// Errors recorded and recovered from, in source order.
    pub errors: Vec<ParseError>,
}

/// Error-tolerant variant of [`lex`]: never fails, recording each lexical
/// error and continuing from the character after it.
///
/// Recovery actions per error class:
///
/// * inconsistent dedent — the offending width is adopted as a new
///   indentation level so block structure stays balanced;
/// * unterminated string — the partial literal collected so far is
///   emitted (terminated at the newline for single-quoted strings, at
///   end of input otherwise);
/// * invalid numeric literal — an `Int(0)` placeholder is emitted;
/// * stray character — the character is skipped.
///
/// # Examples
///
/// ```
/// use cfinder_pyast::lexer::lex_recovering;
///
/// let out = lex_recovering("a $ b\n");
/// assert_eq!(out.errors.len(), 1);
/// assert_eq!(out.tokens.len(), 4); // a, b, NEWLINE, EOF
/// ```
pub fn lex_recovering(source: &str) -> LexRecovery {
    let mut lexer = Lexer::new(source);
    lexer.recover = true;
    if let Err(e) = lexer.run() {
        // Unreachable: every error site records instead of returning when
        // `recover` is set. Degrade gracefully all the same.
        lexer.errors.push(e);
        while lexer.indents.len() > 1 {
            lexer.indents.pop();
            lexer.emit_here(TokenKind::Dedent);
        }
        lexer.emit_here(TokenKind::Eof);
    }
    LexRecovery { tokens: lexer.tokens, errors: lexer.errors }
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: Pos,
    tokens: Vec<Token>,
    indents: Vec<u32>,
    /// Depth of open `(`/`[`/`{` brackets; newlines inside are ignored.
    bracket_depth: u32,
    /// True when we are at the start of a logical line and must measure
    /// indentation.
    at_line_start: bool,
    /// True once a non-structural token has been emitted on the current
    /// logical line (controls whether `Newline` is emitted).
    line_has_content: bool,
    /// When set, lexical errors are recorded in `errors` and lexing
    /// continues instead of aborting.
    recover: bool,
    /// Errors tolerated so far (recover mode only).
    errors: Vec<ParseError>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: Pos::START,
            tokens: Vec::new(),
            indents: vec![0],
            bracket_depth: 0,
            at_line_start: true,
            line_has_content: false,
            recover: false,
            errors: Vec::new(),
        }
    }

    fn run(&mut self) -> Result<()> {
        while !self.at_eof() {
            if self.at_line_start && self.bracket_depth == 0 {
                self.handle_indentation()?;
                if self.at_eof() {
                    break;
                }
            }
            self.lex_line_tokens()?;
        }
        // Close the final logical line and drain the indent stack.
        if self.line_has_content {
            self.emit_here(TokenKind::Newline);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.emit_here(TokenKind::Dedent);
        }
        self.emit_here(TokenKind::Eof);
        Ok(())
    }

    // --- low-level cursor -------------------------------------------------

    fn at_eof(&self) -> bool {
        self.pos.offset as usize >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos.offset as usize).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos.offset as usize + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.bytes.get(self.pos.offset as usize + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos.offset += 1;
        if b == b'\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(b)
    }

    /// Consumes one full UTF-8 scalar and returns it.
    fn bump_char(&mut self) -> Option<char> {
        let start = self.pos.offset as usize;
        let ch = self.src.get(start..)?.chars().next()?;
        for _ in 0..ch.len_utf8() {
            self.bump();
        }
        Some(ch)
    }

    fn emit(&mut self, kind: TokenKind, start: Pos) {
        self.tokens.push(Token::new(kind, Span::new(start, self.pos)));
    }

    fn emit_here(&mut self, kind: TokenKind) {
        self.tokens.push(Token::new(kind, Span::new(self.pos, self.pos)));
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, Span::new(self.pos, self.pos))
    }

    /// In recover mode records `err` and yields `fallback`; otherwise fails.
    fn tolerate<T>(&mut self, err: ParseError, fallback: T) -> Result<T> {
        if self.recover {
            self.errors.push(err);
            Ok(fallback)
        } else {
            Err(err)
        }
    }

    // --- indentation ------------------------------------------------------

    /// Measures leading whitespace of the current physical line; skips blank
    /// and comment-only lines entirely; emits `Indent`/`Dedent` as needed.
    fn handle_indentation(&mut self) -> Result<()> {
        loop {
            let line_start = self.pos;
            let mut width: u32 = 0;
            loop {
                match self.peek() {
                    Some(b' ') => {
                        width += 1;
                        self.bump();
                    }
                    Some(b'\t') => {
                        // CPython default tab size: advance to next multiple of 8.
                        width = (width / 8 + 1) * 8;
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                // Blank line or comment-only line: consume to (and incl.) the
                // newline and re-measure from the next line.
                Some(b'\n') => {
                    self.bump();
                    continue;
                }
                Some(b'\r') => {
                    self.bump();
                    if self.peek() == Some(b'\n') {
                        self.bump();
                    }
                    continue;
                }
                Some(b'#') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                None => return Ok(()),
                _ => {}
            }
            let current = *self.indents.last().expect("indent stack never empty");
            if width > current {
                self.indents.push(width);
                self.emit(TokenKind::Indent, line_start);
            } else if width < current {
                while *self.indents.last().unwrap() > width {
                    self.indents.pop();
                    self.emit(TokenKind::Dedent, line_start);
                }
                if *self.indents.last().unwrap() != width {
                    let err = self.error(format!(
                        "unindent (width {width}) does not match any outer indentation level"
                    ));
                    if !self.recover {
                        return Err(err);
                    }
                    // Adopt the offending width as a new indentation level
                    // so the Indent/Dedent stream stays balanced.
                    self.errors.push(err);
                    self.indents.push(width);
                    self.emit(TokenKind::Indent, line_start);
                }
            }
            self.at_line_start = false;
            self.line_has_content = false;
            return Ok(());
        }
    }

    // --- main token loop for one logical line ------------------------------

    fn lex_line_tokens(&mut self) -> Result<()> {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' => {
                    self.bump();
                }
                b'\r' => {
                    self.bump();
                }
                b'\n' => {
                    let nl_start = self.pos;
                    self.bump();
                    if self.bracket_depth == 0 {
                        if self.line_has_content {
                            self.emit(TokenKind::Newline, nl_start);
                            self.line_has_content = false;
                        }
                        self.at_line_start = true;
                        return Ok(());
                    }
                    // Inside brackets: newline is just whitespace.
                }
                b'#' => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'\\'
                    if self.peek2() == Some(b'\n')
                        || (self.peek2() == Some(b'\r') && self.peek3() == Some(b'\n')) =>
                {
                    // Explicit line joining.
                    self.bump(); // backslash
                    if self.peek() == Some(b'\r') {
                        self.bump();
                    }
                    self.bump(); // newline
                }
                b'"' | b'\'' => {
                    self.lex_string(StringPrefix::default())?;
                    self.line_has_content = true;
                }
                b'0'..=b'9' => {
                    self.lex_number()?;
                    self.line_has_content = true;
                }
                b if b.is_ascii_alphabetic() || b == b'_' => {
                    self.lex_word()?;
                    self.line_has_content = true;
                }
                _ => {
                    self.lex_operator()?;
                    self.line_has_content = true;
                }
            }
        }
        Ok(())
    }

    // --- words: keywords, identifiers, string prefixes ----------------------

    fn lex_word(&mut self) -> Result<()> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let word = &self.src[start.offset as usize..self.pos.offset as usize];
        // String prefixes: r, f, b, u and two-letter combinations, when
        // immediately followed by a quote.
        if word.len() <= 2 && matches!(self.peek(), Some(b'"') | Some(b'\'')) {
            if let Some(prefix) = StringPrefix::parse(word) {
                return self.lex_string_at(start, prefix);
            }
        }
        if let Some(kw) = TokenKind::keyword(word) {
            self.emit(kw, start);
        } else {
            self.emit(TokenKind::Name(word.to_string()), start);
        }
        Ok(())
    }

    // --- numbers ------------------------------------------------------------

    fn lex_number(&mut self) -> Result<()> {
        let start = self.pos;
        // Hex / octal / binary.
        if self.peek() == Some(b'0')
            && matches!(
                self.peek2(),
                Some(b'x') | Some(b'X') | Some(b'o') | Some(b'O') | Some(b'b') | Some(b'B')
            )
        {
            let radix_char = self.peek2().unwrap().to_ascii_lowercase();
            self.bump();
            self.bump();
            let digits_start = self.pos.offset as usize;
            while let Some(b) = self.peek() {
                if b.is_ascii_alphanumeric() || b == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let digits: String = self.src[digits_start..self.pos.offset as usize]
                .chars()
                .filter(|c| *c != '_')
                .collect();
            let radix = match radix_char {
                b'x' => 16,
                b'o' => 8,
                _ => 2,
            };
            let value = match i64::from_str_radix(&digits, radix) {
                Ok(v) => v,
                Err(_) => {
                    let err = self.error(format!("invalid integer literal `{digits}`"));
                    self.tolerate(err, 0)?
                }
            };
            self.emit(TokenKind::Int(value), start);
            return Ok(());
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => {
                    self.bump();
                }
                b'.' if !is_float && matches!(self.peek2(), Some(b'0'..=b'9')) => {
                    is_float = true;
                    self.bump();
                }
                b'e' | b'E'
                    if matches!(self.peek2(), Some(b'0'..=b'9') | Some(b'+') | Some(b'-')) =>
                {
                    is_float = true;
                    self.bump(); // e
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        // Trailing `.` with no digit (e.g. `1.`): also a float.
        if !is_float && self.peek() == Some(b'.') && !matches!(self.peek2(), Some(b'.')) {
            // Careful not to eat attribute access on an int (`1 .real` is rare;
            // `1.method()` is invalid Python anyway). Only treat as float when
            // the next char is not an identifier start.
            if !matches!(self.peek2(), Some(c) if c.is_ascii_alphabetic() || c == b'_') {
                is_float = true;
                self.bump();
            }
        }
        let text: String = self.src[start.offset as usize..self.pos.offset as usize]
            .chars()
            .filter(|c| *c != '_')
            .collect();
        if is_float {
            let v: f64 = match text.parse() {
                Ok(v) => v,
                Err(_) => {
                    let err = self.error(format!("invalid float literal `{text}`"));
                    self.tolerate(err, 0.0)?
                }
            };
            self.emit(TokenKind::Float(v), start);
        } else {
            let v: i64 = match text.parse() {
                Ok(v) => v,
                Err(_) => {
                    let err = self.error(format!("invalid integer literal `{text}`"));
                    self.tolerate(err, 0)?
                }
            };
            self.emit(TokenKind::Int(v), start);
        }
        Ok(())
    }

    // --- strings ------------------------------------------------------------

    fn lex_string(&mut self, prefix: StringPrefix) -> Result<()> {
        let start = self.pos;
        self.lex_string_at(start, prefix)
    }

    /// Lexes a string whose token span should begin at `start` (which may be
    /// before the quote when there is a prefix like `f"`).
    fn lex_string_at(&mut self, start: Pos, prefix: StringPrefix) -> Result<()> {
        let quote = self.peek().expect("caller ensured a quote is next");
        debug_assert!(quote == b'"' || quote == b'\'');
        self.bump();
        let triple = self.peek() == Some(quote) && self.peek2() == Some(quote);
        if triple {
            self.bump();
            self.bump();
        }
        let mut value = String::new();
        loop {
            let Some(b) = self.peek() else {
                let err =
                    ParseError::new("unterminated string literal", Span::new(start, self.pos));
                if !self.recover {
                    return Err(err);
                }
                // Emit the partial literal so the line still parses.
                self.errors.push(err);
                break;
            };
            if b == quote {
                if triple {
                    if self.peek2() == Some(quote) && self.peek3() == Some(quote) {
                        self.bump();
                        self.bump();
                        self.bump();
                        break;
                    }
                    value.push(b as char);
                    self.bump();
                } else {
                    self.bump();
                    break;
                }
            } else if b == b'\n' && !triple {
                let err = ParseError::new(
                    "newline in single-quoted string literal",
                    Span::new(start, self.pos),
                );
                if !self.recover {
                    return Err(err);
                }
                // Terminate at the newline (left for line handling) and
                // emit what was collected so far.
                self.errors.push(err);
                break;
            } else if b == b'\\' && !prefix.raw {
                self.bump();
                let Some(esc) = self.bump_char() else {
                    let err =
                        ParseError::new("unterminated string literal", Span::new(start, self.pos));
                    if !self.recover {
                        return Err(err);
                    }
                    self.errors.push(err);
                    break;
                };
                match esc {
                    'n' => value.push('\n'),
                    't' => value.push('\t'),
                    'r' => value.push('\r'),
                    '0' => value.push('\0'),
                    '\\' => value.push('\\'),
                    '\'' => value.push('\''),
                    '"' => value.push('"'),
                    '\n' => {} // line continuation inside string
                    other => {
                        // Unknown escape: keep both characters, like Python.
                        value.push('\\');
                        value.push(other);
                    }
                }
            } else if b == b'\\' && prefix.raw {
                // Raw string: backslash is literal, but still escapes the
                // quote for termination purposes — `r'\''` keeps both chars
                // and does not terminate.
                value.push('\\');
                self.bump();
                if let Some(ch) = self.bump_char() {
                    value.push(ch);
                }
            } else {
                // Multi-byte UTF-8: copy the full scalar.
                let ch = self.bump_char().expect("peeked byte implies a char");
                value.push(ch);
            }
        }
        let kind = if prefix.fstring { TokenKind::FStr(value) } else { TokenKind::Str(value) };
        self.emit(kind, start);
        Ok(())
    }

    // --- operators ----------------------------------------------------------

    fn lex_operator(&mut self) -> Result<()> {
        use TokenKind::*;
        let start = self.pos;
        let b = self.bump().expect("caller ensured non-eof");
        let two = |lexer: &Lexer<'_>| lexer.peek();
        let kind = match b {
            b'(' => {
                self.bracket_depth += 1;
                LParen
            }
            b')' => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                RParen
            }
            b'[' => {
                self.bracket_depth += 1;
                LBracket
            }
            b']' => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                RBracket
            }
            b'{' => {
                self.bracket_depth += 1;
                LBrace
            }
            b'}' => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1);
                RBrace
            }
            b',' => Comma,
            b':' => Colon,
            b';' => Semi,
            b'.' => Dot,
            b'~' => Tilde,
            b'@' => At,
            b'=' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    EqEq
                } else {
                    Eq
                }
            }
            b'!' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    NotEq
                } else {
                    let err = self.error("unexpected character `!`");
                    return self.tolerate(err, ());
                }
            }
            b'<' => match two(self) {
                Some(b'=') => {
                    self.bump();
                    LtEq
                }
                Some(b'<') => {
                    self.bump();
                    Shl
                }
                _ => Lt,
            },
            b'>' => match two(self) {
                Some(b'=') => {
                    self.bump();
                    GtEq
                }
                Some(b'>') => {
                    self.bump();
                    Shr
                }
                _ => Gt,
            },
            b'+' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    PlusEq
                } else {
                    Plus
                }
            }
            b'-' => match two(self) {
                Some(b'=') => {
                    self.bump();
                    MinusEq
                }
                Some(b'>') => {
                    self.bump();
                    Arrow
                }
                _ => Minus,
            },
            b'*' => match two(self) {
                Some(b'*') => {
                    self.bump();
                    StarStar
                }
                Some(b'=') => {
                    self.bump();
                    StarEq
                }
                _ => Star,
            },
            b'/' => match two(self) {
                Some(b'/') => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        SlashSlashEq
                    } else {
                        SlashSlash
                    }
                }
                Some(b'=') => {
                    self.bump();
                    SlashEq
                }
                _ => Slash,
            },
            b'%' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    PercentEq
                } else {
                    Percent
                }
            }
            b'&' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    AmpEq
                } else {
                    Amp
                }
            }
            b'|' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    PipeEq
                } else {
                    Pipe
                }
            }
            b'^' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    CaretEq
                } else {
                    Caret
                }
            }
            other => {
                let err = self.error(format!(
                    "unexpected character `{}` (0x{other:02x})",
                    if other.is_ascii_graphic() { (other as char).to_string() } else { "?".into() }
                ));
                // Recovery: the character was already consumed, just skip it.
                return self.tolerate(err, ());
            }
        };
        self.emit(kind, start);
        Ok(())
    }
}

/// String-literal prefix flags (`r"…"`, `f"…"`, `rb`, …).
#[derive(Debug, Default, Clone, Copy)]
struct StringPrefix {
    raw: bool,
    fstring: bool,
}

impl StringPrefix {
    fn parse(word: &str) -> Option<StringPrefix> {
        let mut p = StringPrefix::default();
        for c in word.chars() {
            match c.to_ascii_lowercase() {
                'r' => p.raw = true,
                'f' => p.fstring = true,
                'b' | 'u' => {}
                _ => return None,
            }
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_input_yields_eof() {
        assert_eq!(kinds(""), vec![Eof]);
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(kinds("x = 1\n"), vec![Name("x".into()), Eq, Int(1), Newline, Eof]);
    }

    #[test]
    fn no_trailing_newline_still_closes_line() {
        assert_eq!(kinds("x"), vec![Name("x".into()), Newline, Eof]);
    }

    #[test]
    fn indentation_blocks() {
        let src = "if a:\n    b = 1\nc = 2\n";
        assert_eq!(
            kinds(src),
            vec![
                If,
                Name("a".into()),
                Colon,
                Newline,
                Indent,
                Name("b".into()),
                Eq,
                Int(1),
                Newline,
                Dedent,
                Name("c".into()),
                Eq,
                Int(2),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn nested_dedents_drain_at_eof() {
        let src = "if a:\n    if b:\n        c\n";
        let k = kinds(src);
        let dedents = k.iter().filter(|t| **t == Dedent).count();
        assert_eq!(dedents, 2);
        assert_eq!(*k.last().unwrap(), Eof);
    }

    #[test]
    fn blank_and_comment_lines_do_not_affect_indent() {
        let src = "if a:\n    b\n\n    # comment\n    c\n";
        let k = kinds(src);
        let indents = k.iter().filter(|t| **t == Indent).count();
        let dedents = k.iter().filter(|t| **t == Dedent).count();
        assert_eq!(indents, 1);
        assert_eq!(dedents, 1);
    }

    #[test]
    fn inconsistent_dedent_is_error() {
        let src = "if a:\n        b\n    c\n";
        assert!(lex(src).is_err());
    }

    #[test]
    fn implicit_line_join_in_brackets() {
        let src = "f(a,\n  b)\n";
        assert_eq!(
            kinds(src),
            vec![
                Name("f".into()),
                LParen,
                Name("a".into()),
                Comma,
                Name("b".into()),
                RParen,
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn explicit_backslash_join() {
        let src = "a = 1 + \\\n    2\n";
        let k = kinds(src);
        assert!(!k.contains(&Indent));
        assert_eq!(k.iter().filter(|t| **t == Newline).count(), 1);
    }

    #[test]
    fn comment_to_eol() {
        assert_eq!(kinds("x  # a comment\n"), vec![Name("x".into()), Newline, Eof]);
    }

    #[test]
    fn string_literals() {
        assert_eq!(kinds("'a'"), vec![Str("a".into()), Newline, Eof]);
        assert_eq!(kinds("\"b\""), vec![Str("b".into()), Newline, Eof]);
        assert_eq!(kinds(r#"'a\'b'"#), vec![Str("a'b".into()), Newline, Eof]);
        assert_eq!(kinds(r#""x\ny""#), vec![Str("x\ny".into()), Newline, Eof]);
    }

    #[test]
    fn triple_quoted_string_spans_lines() {
        let src = "s = \"\"\"line1\nline2\"\"\"\n";
        assert_eq!(
            kinds(src),
            vec![Name("s".into()), Eq, Str("line1\nline2".into()), Newline, Eof]
        );
    }

    #[test]
    fn triple_quoted_with_embedded_quote() {
        let src = "s = '''it's'''\n";
        assert_eq!(kinds(src), vec![Name("s".into()), Eq, Str("it's".into()), Newline, Eof]);
    }

    #[test]
    fn raw_string_keeps_backslashes() {
        assert_eq!(kinds(r#"r'a\nb'"#), vec![Str(r"a\nb".into()), Newline, Eof]);
    }

    #[test]
    fn fstring_token() {
        assert_eq!(kinds("f'v={x}'"), vec![FStr("v={x}".into()), Newline, Eof]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'abc").is_err());
        assert!(lex("'''abc").is_err());
        assert!(lex("'ab\ncd'").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![Int(42), Newline, Eof]);
        assert_eq!(kinds("3.5"), vec![Float(3.5), Newline, Eof]);
        assert_eq!(kinds("1_000"), vec![Int(1000), Newline, Eof]);
        assert_eq!(kinds("0xff"), vec![Int(255), Newline, Eof]);
        assert_eq!(kinds("0b101"), vec![Int(5), Newline, Eof]);
        assert_eq!(kinds("0o17"), vec![Int(15), Newline, Eof]);
        assert_eq!(kinds("1e3"), vec![Float(1000.0), Newline, Eof]);
        assert_eq!(kinds("2.5e-1"), vec![Float(0.25), Newline, Eof]);
    }

    #[test]
    fn int_followed_by_dot_call_is_not_float() {
        // `x[1].foo` style: the dot belongs to the attribute, not the number,
        // when followed by an identifier.
        assert_eq!(kinds("1 .x"), vec![Int(1), Dot, Name("x".into()), Newline, Eof]);
    }

    #[test]
    fn operators_two_char() {
        assert_eq!(
            kinds("a == b != c <= d >= e"),
            vec![
                Name("a".into()),
                EqEq,
                Name("b".into()),
                NotEq,
                Name("c".into()),
                LtEq,
                Name("d".into()),
                GtEq,
                Name("e".into()),
                Newline,
                Eof
            ]
        );
        assert_eq!(
            kinds("a ** b // c"),
            vec![
                Name("a".into()),
                StarStar,
                Name("b".into()),
                SlashSlash,
                Name("c".into()),
                Newline,
                Eof
            ]
        );
        assert_eq!(kinds("x += 1"), vec![Name("x".into()), PlusEq, Int(1), Newline, Eof]);
        assert_eq!(kinds("x //= 2"), vec![Name("x".into()), SlashSlashEq, Int(2), Newline, Eof]);
    }

    #[test]
    fn arrow_and_decorator() {
        assert_eq!(
            kinds("@deco\ndef f() -> int:\n    pass\n"),
            vec![
                At,
                Name("deco".into()),
                Newline,
                Def,
                Name("f".into()),
                LParen,
                RParen,
                Arrow,
                Name("int".into()),
                Colon,
                Newline,
                Indent,
                Pass,
                Newline,
                Dedent,
                Eof
            ]
        );
    }

    #[test]
    fn keywords_vs_names() {
        assert_eq!(kinds("not_a_kw = None"), vec![Name("not_a_kw".into()), Eq, None, Newline, Eof]);
        assert_eq!(kinds("is_valid"), vec![Name("is_valid".into()), Newline, Eof]);
    }

    #[test]
    fn stray_character_is_error() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn crlf_lines() {
        let src = "a = 1\r\nb = 2\r\n";
        let k = kinds(src);
        assert_eq!(k.iter().filter(|t| **t == Newline).count(), 2);
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab = 12\n").unwrap();
        assert_eq!(toks[0].span.start.col, 1);
        assert_eq!(toks[0].span.end.col, 3);
        assert_eq!(toks[1].span.start.col, 4);
        assert_eq!(toks[2].span.start.col, 6);
        assert_eq!(toks[2].span.end.col, 8);
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("'héllo'"), vec![Str("héllo".into()), Newline, Eof]);
    }

    #[test]
    fn semicolons_tokenize() {
        assert_eq!(kinds("a; b\n"), vec![Name("a".into()), Semi, Name("b".into()), Newline, Eof]);
    }

    // --- recovering mode ----------------------------------------------------

    #[test]
    fn recovering_matches_strict_on_clean_input() {
        let src = "if a:\n    b = f(x,\n          y)\nc = 'done'\n";
        let strict = lex(src).unwrap();
        let recovered = lex_recovering(src);
        assert!(recovered.errors.is_empty());
        assert_eq!(strict, recovered.tokens);
    }

    #[test]
    fn recovering_skips_stray_characters() {
        let out = lex_recovering("a $ b\n");
        assert_eq!(out.errors.len(), 1);
        let k: Vec<TokenKind> = out.tokens.into_iter().map(|t| t.kind).collect();
        assert_eq!(k, vec![Name("a".into()), Name("b".into()), Newline, Eof]);
    }

    #[test]
    fn recovering_emits_partial_unterminated_string() {
        let out = lex_recovering("x = 'abc");
        assert_eq!(out.errors.len(), 1);
        assert!(out.tokens.iter().any(|t| t.kind == Str("abc".into())));
        assert_eq!(out.tokens.last().unwrap().kind, Eof);
    }

    #[test]
    fn recovering_terminates_string_at_newline() {
        let out = lex_recovering("x = 'ab\ny = 1\n");
        assert_eq!(out.errors.len(), 1);
        let k: Vec<TokenKind> = out.tokens.into_iter().map(|t| t.kind).collect();
        // Both logical lines survive.
        assert_eq!(k.iter().filter(|t| **t == Newline).count(), 2);
        assert!(k.contains(&Str("ab".into())));
        assert!(k.contains(&Name("y".into())));
    }

    #[test]
    fn recovering_realigns_inconsistent_dedent() {
        let src = "if a:\n        b\n      c\nd\n";
        let out = lex_recovering(src);
        assert_eq!(out.errors.len(), 1);
        let k: Vec<TokenKind> = out.tokens.into_iter().map(|t| t.kind).collect();
        // Indent/Dedent pairs stay balanced and the stream is Eof-terminated.
        let indents = k.iter().filter(|t| **t == Indent).count();
        let dedents = k.iter().filter(|t| **t == Dedent).count();
        assert_eq!(indents, dedents);
        assert_eq!(*k.last().unwrap(), Eof);
        assert!(k.contains(&Name("d".into())));
    }

    #[test]
    fn recovering_never_loses_later_lines() {
        let out = lex_recovering("q = 3 ! 4\nafter = 1\n");
        assert_eq!(out.errors.len(), 1);
        let k: Vec<TokenKind> = out.tokens.into_iter().map(|t| t.kind).collect();
        assert!(k.contains(&Name("after".into())));
    }
}
