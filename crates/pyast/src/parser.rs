//! Recursive-descent parser for the Python subset.
//!
//! Grammar coverage: module / class / function definitions with decorators
//! and default or starred parameters, the full simple- and compound-statement
//! set used by Django-style applications, and expressions with Python's
//! operator precedence, chained comparisons, ternaries, lambdas, slices,
//! comprehensions, and f-strings (holes are parsed so data-flow sees the
//! uses).

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::{lex, lex_recovering, LexRecovery};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Maximum nesting depth the parser accepts, counted in guard activations
/// (one per statement, expression, unary chain, or prefix-operator level —
/// a parenthesis level costs about three).
///
/// Recursive-descent parsing consumes native stack proportionally to input
/// nesting, so pathological inputs (`((((…`) could otherwise overflow the
/// stack. Exceeding the limit produces a [`ParseError`] with
/// [`crate::error::ParseErrorKind::DepthLimit`] in both strict and
/// recovering modes. The value admits ~32 parenthesis levels — far above
/// anything real code reaches (CPython's own compiler caps around 100
/// nested blocks) — while keeping worst-case stack usage bounded even on
/// threads with reduced stacks.
pub const MAX_DEPTH: u32 = 96;

/// Maximum number of links in an iteratively-built expression chain
/// (binary operators like `a + a + …`, or postfix trailers like
/// `a.b.c…`/`f()()…`).
///
/// These chains cost no parse-time recursion, so [`MAX_DEPTH`] never sees
/// them — but each link deepens the resulting left-leaning tree, and a
/// tree tens of thousands of nodes deep overflows the stack later, in the
/// AST's *recursive drop and traversal*, which no `catch_unwind` can
/// intercept. Capping the links keeps every tree the parser can produce
/// shallow enough to walk and free safely. Real code stays orders of
/// magnitude below this; exceeding it yields a
/// [`crate::error::ParseErrorKind::DepthLimit`] error.
pub const MAX_CHAIN: usize = 1024;

/// Parses a module (a full source file).
///
/// # Errors
///
/// Returns the first lexing or parsing error with its source location.
///
/// # Examples
///
/// ```
/// use cfinder_pyast::parser::parse_module;
///
/// let module = parse_module("x = a.filter(email=email).exists()\n").unwrap();
/// assert_eq!(module.body.len(), 1);
/// ```
pub fn parse_module(source: &str) -> Result<Module> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let body = parser.parse_block_until_eof()?;
    Ok(Module { body, node_count: parser.next_id })
}

/// Parses a single expression (must consume the whole input).
///
/// # Errors
///
/// Returns an error if the input is not exactly one expression.
pub fn parse_expr(source: &str) -> Result<Expr> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.expression()?;
    parser.eat(&TokenKind::Newline)?;
    parser.eat(&TokenKind::Eof)?;
    Ok(expr)
}

/// The output of [`parse_module_recovering`]: the parts of the module that
/// parsed cleanly plus every error that was recovered from.
#[derive(Debug)]
pub struct Recovered {
    /// Partial module containing every statement that parsed. When
    /// `errors` is empty this is identical to strict [`parse_module`]
    /// output.
    pub module: Module,
    /// Lexing errors first, then parsing errors, each group in source
    /// order. Empty means the input was fully valid.
    pub errors: Vec<ParseError>,
}

/// Error-tolerant variant of [`parse_module`]: never fails.
///
/// On a syntax error the parser records the error with its span, then
/// resynchronizes at the next statement boundary *at the same indentation
/// level* — it skips tokens (balancing `Indent`/`Dedent` pairs so an
/// enclosing suite is never abandoned) up to the next `Newline`, and
/// resumes statement parsing there. One broken function body therefore no
/// longer loses a file's other definitions.
///
/// # Examples
///
/// ```
/// use cfinder_pyast::parser::parse_module_recovering;
///
/// let out = parse_module_recovering("class A:\n    pass\nbad = = syntax\nclass B:\n    pass\n");
/// assert_eq!(out.module.body.len(), 2); // A and B both survive
/// assert_eq!(out.errors.len(), 1);
/// ```
pub fn parse_module_recovering(source: &str) -> Recovered {
    let LexRecovery { tokens, errors } = lex_recovering(source);
    parse_tokens_recovering(tokens, errors)
}

/// Recovering parse over an existing token stream (the output of
/// [`crate::lexer::lex_recovering`]), seeded with the lexer's recorded
/// errors. Lets callers inspect or cap the token stream before parsing.
pub fn parse_tokens_recovering(tokens: Vec<Token>, lex_errors: Vec<ParseError>) -> Recovered {
    let mut parser = Parser::new(tokens);
    parser.recover = true;
    parser.errors = lex_errors;
    let body = match parser.parse_block_until_eof() {
        Ok(body) => body,
        // Unreachable: in recover mode every statement error is caught in
        // the block loop. Degrade to an empty module all the same.
        Err(e) => {
            parser.errors.push(e);
            Vec::new()
        }
    };
    Recovered { module: Module { body, node_count: parser.next_id }, errors: parser.errors }
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
    next_id: u32,
    /// Current statement/expression nesting depth, capped at [`MAX_DEPTH`].
    depth: u32,
    /// When set, statement-level errors are recorded in `errors` and
    /// parsing resumes at the next statement boundary.
    recover: bool,
    /// Errors tolerated so far (recover mode only).
    errors: Vec<ParseError>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, idx: 0, next_id: 0, depth: 0, recover: false, errors: Vec::new() }
    }

    // --- token plumbing -----------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.idx.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.idx + n).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.idx.min(self.tokens.len() - 1)].clone();
        if self.idx < self.tokens.len() - 1 {
            self.idx += 1;
        }
        t
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> Result<Token> {
        if self.check(kind) {
            Ok(self.advance())
        } else {
            Err(self.unexpected(&format!("expected {}", kind.describe())))
        }
    }

    fn eat_name(&mut self) -> Result<(String, Span)> {
        match self.peek_kind().clone() {
            TokenKind::Name(n) => {
                let t = self.advance();
                Ok((n, t.span))
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    fn unexpected(&self, msg: &str) -> ParseError {
        ParseError::new(format!("{msg}, found {}", self.peek_kind().describe()), self.peek().span)
    }

    fn id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn expr(&mut self, span: Span, kind: ExprKind) -> Expr {
        Expr { id: self.id(), span, kind }
    }

    fn stmt(&mut self, span: Span, kind: StmtKind) -> Stmt {
        Stmt { id: self.id(), span, kind }
    }

    /// Runs `f` one nesting level deeper, failing with a
    /// [`crate::error::ParseErrorKind::DepthLimit`] error once
    /// [`MAX_DEPTH`] is reached. Wraps every recursion cycle of the
    /// grammar (statements, expressions, unary chains) so input nesting —
    /// not the OS stack — is the binding limit.
    fn with_depth<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        if self.depth >= MAX_DEPTH {
            return Err(ParseError::depth_limit(MAX_DEPTH, self.peek().span));
        }
        self.depth += 1;
        let out = f(self);
        self.depth -= 1;
        out
    }

    // --- blocks and statements ----------------------------------------------

    /// In recover mode: parses one statement, recording the error and
    /// resynchronizing on failure. Returns the statements that parsed.
    fn statement_recovering(&mut self) -> Vec<Stmt> {
        let before = self.idx;
        match self.statement() {
            Ok(stmts) => stmts,
            Err(e) => {
                self.errors.push(e);
                self.synchronize(before);
                Vec::new()
            }
        }
    }

    /// Skips tokens up to the next statement boundary at the same
    /// indentation level: the next `Newline` outside any `Indent`/`Dedent`
    /// pairs opened during the skip. A `Dedent` belonging to an enclosing
    /// suite is left unconsumed so the caller's block loop sees it.
    fn synchronize(&mut self, before: usize) {
        let mut depth = 0usize;
        loop {
            match self.peek_kind() {
                TokenKind::Eof => break,
                TokenKind::Newline if depth == 0 => {
                    self.advance();
                    break;
                }
                TokenKind::Dedent if depth == 0 => break,
                TokenKind::Indent => {
                    depth += 1;
                    self.advance();
                }
                TokenKind::Dedent => {
                    depth -= 1;
                    self.advance();
                    if depth == 0 {
                        // A balanced Indent..Dedent group just closed: we
                        // are back at a statement boundary at the original
                        // indentation level.
                        break;
                    }
                }
                _ => {
                    self.advance();
                }
            }
        }
        // Guarantee progress even on a stray structural token.
        if self.idx == before && !self.check(&TokenKind::Eof) {
            self.advance();
        }
    }

    fn parse_block_until_eof(&mut self) -> Result<Vec<Stmt>> {
        let mut body = Vec::new();
        while !self.check(&TokenKind::Eof) {
            if self.recover {
                let stmts = self.statement_recovering();
                body.extend(stmts);
            } else {
                body.extend(self.statement()?);
            }
        }
        Ok(body)
    }

    /// Parses an indented suite after a colon, or a simple-statement list on
    /// the same line (`if x: pass`).
    fn suite(&mut self) -> Result<Vec<Stmt>> {
        self.eat(&TokenKind::Colon)?;
        if self.eat_if(&TokenKind::Newline) {
            self.eat(&TokenKind::Indent)?;
            let mut body = Vec::new();
            while !self.check(&TokenKind::Dedent) && !self.check(&TokenKind::Eof) {
                if self.recover {
                    let stmts = self.statement_recovering();
                    body.extend(stmts);
                } else {
                    body.extend(self.statement()?);
                }
            }
            // The Dedent is absent only when input ends inside the suite,
            // which strict lexing never produces (the indent stack is
            // drained before Eof).
            self.eat_if(&TokenKind::Dedent);
            Ok(body)
        } else {
            // Inline suite: one or more `;`-separated simple statements.
            self.simple_statement_line()
        }
    }

    /// Parses one statement; simple statements may expand to several via `;`.
    fn statement(&mut self) -> Result<Vec<Stmt>> {
        self.with_depth(Self::statement_impl)
    }

    fn statement_impl(&mut self) -> Result<Vec<Stmt>> {
        match self.peek_kind() {
            TokenKind::Def | TokenKind::Class | TokenKind::At => Ok(vec![self.definition()?]),
            TokenKind::If => Ok(vec![self.if_statement()?]),
            TokenKind::For => Ok(vec![self.for_statement()?]),
            TokenKind::While => Ok(vec![self.while_statement()?]),
            TokenKind::Try => Ok(vec![self.try_statement()?]),
            TokenKind::With => Ok(vec![self.with_statement()?]),
            _ => self.simple_statement_line(),
        }
    }

    /// A physical line of `;`-separated simple statements ended by `Newline`.
    fn simple_statement_line(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = vec![self.simple_statement()?];
        while self.eat_if(&TokenKind::Semi) {
            if self.check(&TokenKind::Newline) {
                break;
            }
            stmts.push(self.simple_statement()?);
        }
        self.eat(&TokenKind::Newline)?;
        Ok(stmts)
    }

    fn simple_statement(&mut self) -> Result<Stmt> {
        let start = self.peek().span;
        match self.peek_kind() {
            TokenKind::Return => {
                self.advance();
                let value = if self.check(&TokenKind::Newline) || self.check(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expression_list()?)
                };
                let span = value.as_ref().map_or(start, |v| start.to(v.span));
                Ok(self.stmt(span, StmtKind::Return { value }))
            }
            TokenKind::Raise => {
                self.advance();
                let (exc, cause) = if self.check(&TokenKind::Newline)
                    || self.check(&TokenKind::Semi)
                {
                    (None, None)
                } else {
                    let exc = self.expression()?;
                    let cause =
                        if self.eat_if(&TokenKind::From) { Some(self.expression()?) } else { None };
                    (Some(exc), cause)
                };
                let end = cause
                    .as_ref()
                    .map(|c| c.span)
                    .or_else(|| exc.as_ref().map(|e| e.span))
                    .unwrap_or(start);
                Ok(self.stmt(start.to(end), StmtKind::Raise { exc, cause }))
            }
            TokenKind::Pass => {
                self.advance();
                Ok(self.stmt(start, StmtKind::Pass))
            }
            TokenKind::Break => {
                self.advance();
                Ok(self.stmt(start, StmtKind::Break))
            }
            TokenKind::Continue => {
                self.advance();
                Ok(self.stmt(start, StmtKind::Continue))
            }
            TokenKind::Import => {
                self.advance();
                let names = self.import_aliases()?;
                Ok(self.stmt(start, StmtKind::Import { names }))
            }
            TokenKind::From => {
                self.advance();
                let mut module = String::new();
                while self.eat_if(&TokenKind::Dot) {
                    module.push('.');
                }
                if let TokenKind::Name(_) = self.peek_kind() {
                    let (first, _) = self.eat_name()?;
                    module.push_str(&first);
                    while self.check(&TokenKind::Dot) {
                        self.advance();
                        let (part, _) = self.eat_name()?;
                        module.push('.');
                        module.push_str(&part);
                    }
                }
                self.eat(&TokenKind::Import)?;
                let names = if self.check(&TokenKind::Star) {
                    self.advance();
                    vec![ImportAlias { name: "*".to_string(), asname: None }]
                } else if self.eat_if(&TokenKind::LParen) {
                    let names = self.import_aliases()?;
                    self.eat(&TokenKind::RParen)?;
                    names
                } else {
                    self.import_aliases()?
                };
                Ok(self.stmt(start, StmtKind::ImportFrom { module, names }))
            }
            TokenKind::Assert => {
                self.advance();
                let test = self.expression()?;
                let msg =
                    if self.eat_if(&TokenKind::Comma) { Some(self.expression()?) } else { None };
                let span = start.to(msg.as_ref().map_or(test.span, |m| m.span));
                Ok(self.stmt(span, StmtKind::Assert { test, msg }))
            }
            TokenKind::Global | TokenKind::Nonlocal => {
                self.advance();
                let mut names = vec![self.eat_name()?.0];
                while self.eat_if(&TokenKind::Comma) {
                    names.push(self.eat_name()?.0);
                }
                Ok(self.stmt(start, StmtKind::Global { names }))
            }
            TokenKind::Del => {
                self.advance();
                let mut targets = vec![self.expression()?];
                while self.eat_if(&TokenKind::Comma) {
                    targets.push(self.expression()?);
                }
                Ok(self.stmt(start, StmtKind::Delete { targets }))
            }
            _ => self.expression_statement(),
        }
    }

    fn import_aliases(&mut self) -> Result<Vec<ImportAlias>> {
        let mut names = Vec::new();
        loop {
            let (mut name, _) = self.eat_name()?;
            while self.eat_if(&TokenKind::Dot) {
                let (part, _) = self.eat_name()?;
                name.push('.');
                name.push_str(&part);
            }
            let asname = if self.eat_if(&TokenKind::As) { Some(self.eat_name()?.0) } else { None };
            names.push(ImportAlias { name, asname });
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
            // Allow trailing comma before `)` in parenthesized form.
            if self.check(&TokenKind::RParen) {
                break;
            }
        }
        Ok(names)
    }

    /// Assignment (plain, chained, augmented, annotated) or bare expression.
    fn expression_statement(&mut self) -> Result<Stmt> {
        let first = self.expression_list()?;
        let start = first.span;
        // Annotated assignment `x: T = v` / bare annotation `x: T`.
        if self.check(&TokenKind::Colon)
            && matches!(first.kind, ExprKind::Name(_) | ExprKind::Attribute { .. })
        {
            self.advance();
            let _annotation = self.expression()?;
            if self.eat_if(&TokenKind::Eq) {
                let value = self.expression_list()?;
                let span = start.to(value.span);
                return Ok(self.stmt(span, StmtKind::Assign { targets: vec![first], value }));
            }
            // A bare annotation declares the name without a value; model it
            // as an expression statement so the name use is still visible.
            return Ok(self.stmt(start, StmtKind::Expr { value: first }));
        }
        if let Some(op) = self.augmented_op() {
            self.advance();
            let value = self.expression_list()?;
            let span = start.to(value.span);
            return Ok(self.stmt(span, StmtKind::AugAssign { target: first, op, value }));
        }
        if self.check(&TokenKind::Eq) {
            let mut targets = vec![first];
            let mut value = None;
            while self.eat_if(&TokenKind::Eq) {
                let e = self.expression_list()?;
                if self.check(&TokenKind::Eq) {
                    targets.push(e);
                } else {
                    value = Some(e);
                }
            }
            let value = value.expect("loop sets value on exit");
            let span = start.to(value.span);
            return Ok(self.stmt(span, StmtKind::Assign { targets, value }));
        }
        Ok(self.stmt(start, StmtKind::Expr { value: first }))
    }

    fn augmented_op(&self) -> Option<BinOp> {
        Some(match self.peek_kind() {
            TokenKind::PlusEq => BinOp::Add,
            TokenKind::MinusEq => BinOp::Sub,
            TokenKind::StarEq => BinOp::Mul,
            TokenKind::SlashEq => BinOp::Div,
            TokenKind::SlashSlashEq => BinOp::FloorDiv,
            TokenKind::PercentEq => BinOp::Mod,
            TokenKind::AmpEq => BinOp::BitAnd,
            TokenKind::PipeEq => BinOp::BitOr,
            TokenKind::CaretEq => BinOp::BitXor,
            _ => return None,
        })
    }

    // --- compound statements --------------------------------------------------

    fn definition(&mut self) -> Result<Stmt> {
        let start = self.peek().span;
        let mut decorators = Vec::new();
        while self.check(&TokenKind::At) {
            self.advance();
            decorators.push(self.expression()?);
            self.eat(&TokenKind::Newline)?;
        }
        match self.peek_kind() {
            TokenKind::Def => self.function_def(decorators, start),
            TokenKind::Class => self.class_def(decorators, start),
            _ => Err(self.unexpected("expected `def` or `class` after decorators")),
        }
    }

    fn function_def(&mut self, decorators: Vec<Expr>, start: Span) -> Result<Stmt> {
        self.eat(&TokenKind::Def)?;
        let (name, _) = self.eat_name()?;
        self.eat(&TokenKind::LParen)?;
        let params = self.parameters(&TokenKind::RParen, true)?;
        self.eat(&TokenKind::RParen)?;
        if self.eat_if(&TokenKind::Arrow) {
            let _return_annotation = self.expression()?;
        }
        let body = self.suite()?;
        let span = start.to(body.last().map_or(start, |s| s.span));
        Ok(self.stmt(span, StmtKind::FunctionDef(FunctionDef { name, params, decorators, body })))
    }

    /// `allow_annotations` is false for lambdas, whose `:` terminates the
    /// parameter list instead of introducing an annotation.
    fn parameters(
        &mut self,
        terminator: &TokenKind,
        allow_annotations: bool,
    ) -> Result<Vec<Param>> {
        let mut params = Vec::new();
        while !self.check(terminator) && !self.check(&TokenKind::Colon) {
            let star = if self.eat_if(&TokenKind::StarStar) {
                ParamStar::Kwargs
            } else if self.eat_if(&TokenKind::Star) {
                // A bare `*` marks keyword-only params; skip the marker.
                if self.check(&TokenKind::Comma) {
                    self.advance();
                    continue;
                }
                ParamStar::Args
            } else {
                ParamStar::None
            };
            let (name, span) = self.eat_name()?;
            if allow_annotations && self.eat_if(&TokenKind::Colon) {
                let _annotation = self.expression()?;
            }
            let default = if self.eat_if(&TokenKind::Eq) { Some(self.expression()?) } else { None };
            params.push(Param { name, default, star, span });
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        Ok(params)
    }

    fn class_def(&mut self, decorators: Vec<Expr>, start: Span) -> Result<Stmt> {
        self.eat(&TokenKind::Class)?;
        let (name, _) = self.eat_name()?;
        let mut bases = Vec::new();
        let mut keywords = Vec::new();
        if self.eat_if(&TokenKind::LParen) {
            while !self.check(&TokenKind::RParen) {
                if matches!(self.peek_kind(), TokenKind::Name(_))
                    && *self.peek_ahead(1) == TokenKind::Eq
                {
                    let (kw, _) = self.eat_name()?;
                    self.eat(&TokenKind::Eq)?;
                    let value = self.expression()?;
                    keywords.push(Keyword { name: Some(kw), value });
                } else {
                    bases.push(self.expression()?);
                }
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
            self.eat(&TokenKind::RParen)?;
        }
        let body = self.suite()?;
        let span = start.to(body.last().map_or(start, |s| s.span));
        Ok(self
            .stmt(span, StmtKind::ClassDef(ClassDef { name, bases, keywords, decorators, body })))
    }

    fn if_statement(&mut self) -> Result<Stmt> {
        let start = self.peek().span;
        self.advance(); // `if` or `elif`
        let test = self.expression()?;
        let body = self.suite()?;
        let orelse = if self.check(&TokenKind::Elif) {
            vec![self.if_statement_from_elif()?]
        } else if self.eat_if(&TokenKind::Else) {
            self.suite()?
        } else {
            Vec::new()
        };
        let end = orelse.last().or(body.last()).map_or(start, |s| s.span);
        Ok(self.stmt(start.to(end), StmtKind::If { test, body, orelse }))
    }

    fn if_statement_from_elif(&mut self) -> Result<Stmt> {
        // `elif` behaves exactly like a nested `if`.
        self.if_statement()
    }

    fn for_statement(&mut self) -> Result<Stmt> {
        let start = self.peek().span;
        self.eat(&TokenKind::For)?;
        let target = self.target_list()?;
        self.eat(&TokenKind::In)?;
        let iter = self.expression_list()?;
        let body = self.suite()?;
        let orelse = if self.eat_if(&TokenKind::Else) { self.suite()? } else { Vec::new() };
        let end = orelse.last().or(body.last()).map_or(start, |s| s.span);
        Ok(self.stmt(start.to(end), StmtKind::For { target, iter, body, orelse }))
    }

    fn while_statement(&mut self) -> Result<Stmt> {
        let start = self.peek().span;
        self.eat(&TokenKind::While)?;
        let test = self.expression()?;
        let body = self.suite()?;
        let orelse = if self.eat_if(&TokenKind::Else) { self.suite()? } else { Vec::new() };
        let end = orelse.last().or(body.last()).map_or(start, |s| s.span);
        Ok(self.stmt(start.to(end), StmtKind::While { test, body, orelse }))
    }

    fn try_statement(&mut self) -> Result<Stmt> {
        let start = self.peek().span;
        self.eat(&TokenKind::Try)?;
        let body = self.suite()?;
        let mut handlers = Vec::new();
        while self.check(&TokenKind::Except) {
            let hstart = self.peek().span;
            self.advance();
            let (typ, name) = if self.check(&TokenKind::Colon) {
                (None, None)
            } else {
                let t = self.expression()?;
                let n = if self.eat_if(&TokenKind::As) { Some(self.eat_name()?.0) } else { None };
                (Some(t), n)
            };
            let hbody = self.suite()?;
            handlers.push(ExceptHandler { typ, name, body: hbody, span: hstart });
        }
        let orelse = if self.eat_if(&TokenKind::Else) { self.suite()? } else { Vec::new() };
        let finalbody = if self.eat_if(&TokenKind::Finally) { self.suite()? } else { Vec::new() };
        if handlers.is_empty() && finalbody.is_empty() {
            return Err(self.unexpected("expected `except` or `finally` after try block"));
        }
        Ok(self.stmt(start, StmtKind::Try { body, handlers, orelse, finalbody }))
    }

    fn with_statement(&mut self) -> Result<Stmt> {
        let start = self.peek().span;
        self.eat(&TokenKind::With)?;
        let mut items = Vec::new();
        loop {
            let context = self.expression()?;
            let target = if self.eat_if(&TokenKind::As) { Some(self.postfix()?) } else { None };
            items.push(WithItem { context, target });
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        let body = self.suite()?;
        Ok(self.stmt(start, StmtKind::With { items, body }))
    }

    /// `for` targets: `a`, `a, b`, `(a, b)` — comma builds a tuple.
    fn target_list(&mut self) -> Result<Expr> {
        let first = self.postfix()?;
        if !self.check(&TokenKind::Comma) {
            return Ok(first);
        }
        let start = first.span;
        let mut elems = vec![first];
        while self.eat_if(&TokenKind::Comma) {
            if self.check(&TokenKind::In) {
                break;
            }
            elems.push(self.postfix()?);
        }
        let span = start.to(elems.last().unwrap().span);
        Ok(self.expr(span, ExprKind::Tuple(elems)))
    }

    // --- expressions ------------------------------------------------------------

    /// `expression_list`: `a, b, c` builds a tuple (as in `return a, b`).
    fn expression_list(&mut self) -> Result<Expr> {
        let first = self.expression()?;
        if !self.check(&TokenKind::Comma) {
            return Ok(first);
        }
        let start = first.span;
        let mut elems = vec![first];
        while self.eat_if(&TokenKind::Comma) {
            if self.expression_cannot_start() {
                break; // trailing comma
            }
            elems.push(self.expression()?);
        }
        let span = start.to(elems.last().unwrap().span);
        Ok(self.expr(span, ExprKind::Tuple(elems)))
    }

    fn expression_cannot_start(&self) -> bool {
        matches!(
            self.peek_kind(),
            TokenKind::Newline
                | TokenKind::Eof
                | TokenKind::Eq
                | TokenKind::RParen
                | TokenKind::RBracket
                | TokenKind::RBrace
                | TokenKind::Colon
                | TokenKind::Semi
        )
    }

    /// Top-level expression: ternary / lambda / or-chain.
    fn expression(&mut self) -> Result<Expr> {
        self.with_depth(Self::expression_impl)
    }

    fn expression_impl(&mut self) -> Result<Expr> {
        if self.check(&TokenKind::Lambda) {
            return self.lambda();
        }
        if self.check(&TokenKind::Yield) {
            let start = self.advance().span;
            let value = if self.expression_cannot_start() || self.check(&TokenKind::From) {
                // `yield from` — treat the whole thing as a yield of the inner
                // expression; the distinction is irrelevant to the analysis.
                if self.eat_if(&TokenKind::From) {
                    Some(Box::new(self.expression()?))
                } else {
                    None
                }
            } else {
                Some(Box::new(self.expression()?))
            };
            let span = value.as_ref().map_or(start, |v| start.to(v.span));
            return Ok(self.expr(span, ExprKind::Yield(value)));
        }
        let cond = self.or_expr()?;
        if self.check(&TokenKind::If) {
            // `body if test else orelse`
            self.advance();
            let test = self.or_expr()?;
            self.eat(&TokenKind::Else)?;
            let orelse = self.expression()?;
            let span = cond.span.to(orelse.span);
            return Ok(self.expr(
                span,
                ExprKind::IfExp {
                    test: Box::new(test),
                    body: Box::new(cond),
                    orelse: Box::new(orelse),
                },
            ));
        }
        Ok(cond)
    }

    fn lambda(&mut self) -> Result<Expr> {
        let start = self.eat(&TokenKind::Lambda)?.span;
        let params = self.parameters(&TokenKind::Colon, false)?;
        self.eat(&TokenKind::Colon)?;
        let body = self.expression()?;
        let span = start.to(body.span);
        Ok(self.expr(span, ExprKind::Lambda { params, body: Box::new(body) }))
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let first = self.and_expr()?;
        if !self.check(&TokenKind::Or) {
            return Ok(first);
        }
        let mut values = vec![first];
        while self.eat_if(&TokenKind::Or) {
            values.push(self.and_expr()?);
        }
        let span = values[0].span.to(values.last().unwrap().span);
        Ok(self.expr(span, ExprKind::BoolOp { op: BoolOpKind::Or, values }))
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let first = self.not_expr()?;
        if !self.check(&TokenKind::And) {
            return Ok(first);
        }
        let mut values = vec![first];
        while self.eat_if(&TokenKind::And) {
            values.push(self.not_expr()?);
        }
        let span = values[0].span.to(values.last().unwrap().span);
        Ok(self.expr(span, ExprKind::BoolOp { op: BoolOpKind::And, values }))
    }

    fn not_expr(&mut self) -> Result<Expr> {
        self.with_depth(Self::not_expr_impl)
    }

    fn not_expr_impl(&mut self) -> Result<Expr> {
        if self.check(&TokenKind::Not) {
            let start = self.advance().span;
            let operand = self.not_expr()?;
            let span = start.to(operand.span);
            return Ok(
                self.expr(span, ExprKind::UnaryOp { op: UnaryOp::Not, operand: Box::new(operand) })
            );
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.bit_or()?;
        let mut ops = Vec::new();
        let mut comparators = Vec::new();
        loop {
            let op = match self.peek_kind() {
                TokenKind::EqEq => CmpOp::Eq,
                TokenKind::NotEq => CmpOp::NotEq,
                TokenKind::Lt => CmpOp::Lt,
                TokenKind::LtEq => CmpOp::LtEq,
                TokenKind::Gt => CmpOp::Gt,
                TokenKind::GtEq => CmpOp::GtEq,
                TokenKind::In => CmpOp::In,
                TokenKind::Is => {
                    if *self.peek_ahead(1) == TokenKind::Not {
                        self.advance();
                        CmpOp::IsNot
                    } else {
                        CmpOp::Is
                    }
                }
                TokenKind::Not if *self.peek_ahead(1) == TokenKind::In => {
                    self.advance();
                    CmpOp::NotIn
                }
                _ => break,
            };
            self.advance();
            ops.push(op);
            comparators.push(self.bit_or()?);
        }
        if ops.is_empty() {
            return Ok(left);
        }
        let span = left.span.to(comparators.last().unwrap().span);
        Ok(self.expr(span, ExprKind::Compare { left: Box::new(left), ops, comparators }))
    }

    fn bit_or(&mut self) -> Result<Expr> {
        self.binary_chain(&[(TokenKind::Pipe, BinOp::BitOr)], Self::bit_xor)
    }

    fn bit_xor(&mut self) -> Result<Expr> {
        self.binary_chain(&[(TokenKind::Caret, BinOp::BitXor)], Self::bit_and)
    }

    fn bit_and(&mut self) -> Result<Expr> {
        self.binary_chain(&[(TokenKind::Amp, BinOp::BitAnd)], Self::shift)
    }

    fn shift(&mut self) -> Result<Expr> {
        self.binary_chain(
            &[(TokenKind::Shl, BinOp::Shl), (TokenKind::Shr, BinOp::Shr)],
            Self::arith,
        )
    }

    fn arith(&mut self) -> Result<Expr> {
        self.binary_chain(
            &[(TokenKind::Plus, BinOp::Add), (TokenKind::Minus, BinOp::Sub)],
            Self::term,
        )
    }

    fn term(&mut self) -> Result<Expr> {
        self.binary_chain(
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::SlashSlash, BinOp::FloorDiv),
                (TokenKind::Percent, BinOp::Mod),
            ],
            Self::factor,
        )
    }

    fn binary_chain(
        &mut self,
        ops: &[(TokenKind, BinOp)],
        next: fn(&mut Self) -> Result<Expr>,
    ) -> Result<Expr> {
        let mut left = next(self)?;
        let mut links = 0usize;
        'outer: loop {
            for (tok, op) in ops {
                if self.check(tok) {
                    links += 1;
                    if links > MAX_CHAIN {
                        return Err(ParseError::chain_limit(MAX_CHAIN, self.peek().span));
                    }
                    self.advance();
                    let right = next(self)?;
                    let span = left.span.to(right.span);
                    left = self.expr(
                        span,
                        ExprKind::BinOp { left: Box::new(left), op: *op, right: Box::new(right) },
                    );
                    continue 'outer;
                }
            }
            break;
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr> {
        self.with_depth(Self::factor_impl)
    }

    fn factor_impl(&mut self) -> Result<Expr> {
        let op = match self.peek_kind() {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Plus => Some(UnaryOp::Pos),
            TokenKind::Tilde => Some(UnaryOp::Invert),
            _ => None,
        };
        if let Some(op) = op {
            let start = self.advance().span;
            let operand = self.factor()?;
            let span = start.to(operand.span);
            return Ok(self.expr(span, ExprKind::UnaryOp { op, operand: Box::new(operand) }));
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr> {
        let base = self.postfix()?;
        if self.eat_if(&TokenKind::StarStar) {
            let exp = self.factor()?; // right-associative
            let span = base.span.to(exp.span);
            return Ok(self.expr(
                span,
                ExprKind::BinOp { left: Box::new(base), op: BinOp::Pow, right: Box::new(exp) },
            ));
        }
        Ok(base)
    }

    /// Postfix: calls, attribute access, subscripts.
    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.atom()?;
        let mut links = 0usize;
        loop {
            match self.peek_kind() {
                TokenKind::Dot | TokenKind::LParen | TokenKind::LBracket if links >= MAX_CHAIN => {
                    return Err(ParseError::chain_limit(MAX_CHAIN, self.peek().span));
                }
                TokenKind::Dot => {
                    links += 1;
                    self.advance();
                    let (attr, aspan) = self.eat_name()?;
                    let span = e.span.to(aspan);
                    e = self.expr(span, ExprKind::Attribute { value: Box::new(e), attr });
                }
                TokenKind::LParen => {
                    links += 1;
                    self.advance();
                    let (args, keywords) = self.call_arguments()?;
                    let rp = self.eat(&TokenKind::RParen)?;
                    let span = e.span.to(rp.span);
                    e = self.expr(span, ExprKind::Call { func: Box::new(e), args, keywords });
                }
                TokenKind::LBracket => {
                    links += 1;
                    self.advance();
                    let index = self.subscript_index()?;
                    let rb = self.eat(&TokenKind::RBracket)?;
                    let span = e.span.to(rb.span);
                    e = self.expr(
                        span,
                        ExprKind::Subscript { value: Box::new(e), index: Box::new(index) },
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn subscript_index(&mut self) -> Result<Expr> {
        let start = self.peek().span;
        // Slice with missing lower bound, e.g. `a[:5]`.
        let lower = if self.check(&TokenKind::Colon) { None } else { Some(self.expression()?) };
        if self.eat_if(&TokenKind::Colon) {
            let upper = if self.check(&TokenKind::RBracket) || self.check(&TokenKind::Colon) {
                None
            } else {
                Some(self.expression()?)
            };
            let step = if self.eat_if(&TokenKind::Colon) {
                if self.check(&TokenKind::RBracket) {
                    None
                } else {
                    Some(self.expression()?)
                }
            } else {
                None
            };
            let span = start.to(self.peek().span);
            return Ok(self.expr(
                span,
                ExprKind::Slice {
                    lower: lower.map(Box::new),
                    upper: upper.map(Box::new),
                    step: step.map(Box::new),
                },
            ));
        }
        let mut index = lower.expect("non-slice subscript has an index");
        // Tuple index `a[x, y]`.
        if self.check(&TokenKind::Comma) {
            let mut elems = vec![index];
            while self.eat_if(&TokenKind::Comma) {
                if self.check(&TokenKind::RBracket) {
                    break;
                }
                elems.push(self.expression()?);
            }
            let span = elems[0].span.to(elems.last().unwrap().span);
            index = self.expr(span, ExprKind::Tuple(elems));
        }
        Ok(index)
    }

    fn call_arguments(&mut self) -> Result<(Vec<Expr>, Vec<Keyword>)> {
        let mut args = Vec::new();
        let mut keywords = Vec::new();
        while !self.check(&TokenKind::RParen) {
            if self.eat_if(&TokenKind::StarStar) {
                let value = self.expression()?;
                keywords.push(Keyword { name: None, value });
            } else if self.eat_if(&TokenKind::Star) {
                let inner = self.expression()?;
                let span = inner.span;
                let starred = self.expr(span, ExprKind::Starred(Box::new(inner)));
                args.push(starred);
            } else if matches!(self.peek_kind(), TokenKind::Name(_))
                && *self.peek_ahead(1) == TokenKind::Eq
            {
                let (name, _) = self.eat_name()?;
                self.eat(&TokenKind::Eq)?;
                let value = self.expression()?;
                keywords.push(Keyword { name: Some(name), value });
            } else {
                let e = self.expression()?;
                // Generator argument: `f(x for x in y)`.
                if self.check(&TokenKind::For) {
                    let gens = self.comprehension_clauses()?;
                    let span = e.span;
                    let comp = self.expr(
                        span,
                        ExprKind::Comprehension {
                            kind: ComprehensionKind::Generator,
                            element: Box::new(e),
                            value: None,
                            generators: gens,
                        },
                    );
                    args.push(comp);
                } else {
                    args.push(e);
                }
            }
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        Ok((args, keywords))
    }

    fn comprehension_clauses(&mut self) -> Result<Vec<Comprehension>> {
        let mut gens = Vec::new();
        while self.check(&TokenKind::For) {
            self.advance();
            let target = self.target_list()?;
            self.eat(&TokenKind::In)?;
            let iter = self.or_expr()?;
            let mut ifs = Vec::new();
            while self.eat_if(&TokenKind::If) {
                ifs.push(self.or_expr()?);
            }
            gens.push(Comprehension { target, iter, ifs });
        }
        Ok(gens)
    }

    fn atom(&mut self) -> Result<Expr> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Name(n) => {
                self.advance();
                Ok(self.expr(tok.span, ExprKind::Name(n)))
            }
            TokenKind::Int(v) => {
                self.advance();
                Ok(self.expr(tok.span, ExprKind::Constant(Constant::Int(v))))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(self.expr(tok.span, ExprKind::Constant(Constant::Float(v))))
            }
            TokenKind::Str(s) => {
                self.advance();
                // Adjacent string literals concatenate.
                let mut full = s;
                let mut span = tok.span;
                while let TokenKind::Str(next) = self.peek_kind().clone() {
                    span = span.to(self.peek().span);
                    full.push_str(&next);
                    self.advance();
                }
                Ok(self.expr(span, ExprKind::Constant(Constant::Str(full))))
            }
            TokenKind::FStr(raw) => {
                self.advance();
                let parts = self.parse_fstring_holes(&raw, tok.span)?;
                Ok(self.expr(tok.span, ExprKind::FString { raw, parts }))
            }
            TokenKind::True => {
                self.advance();
                Ok(self.expr(tok.span, ExprKind::Constant(Constant::Bool(true))))
            }
            TokenKind::False => {
                self.advance();
                Ok(self.expr(tok.span, ExprKind::Constant(Constant::Bool(false))))
            }
            TokenKind::None => {
                self.advance();
                Ok(self.expr(tok.span, ExprKind::Constant(Constant::None)))
            }
            TokenKind::LParen => self.paren_atom(),
            TokenKind::LBracket => self.list_atom(),
            TokenKind::LBrace => self.brace_atom(),
            TokenKind::Lambda => self.lambda(),
            _ => Err(self.unexpected("expected expression")),
        }
    }

    fn paren_atom(&mut self) -> Result<Expr> {
        let start = self.eat(&TokenKind::LParen)?.span;
        if self.check(&TokenKind::RParen) {
            let end = self.advance().span;
            return Ok(self.expr(start.to(end), ExprKind::Tuple(Vec::new())));
        }
        let first = self.expression()?;
        if self.check(&TokenKind::For) {
            let gens = self.comprehension_clauses()?;
            let end = self.eat(&TokenKind::RParen)?.span;
            return Ok(self.expr(
                start.to(end),
                ExprKind::Comprehension {
                    kind: ComprehensionKind::Generator,
                    element: Box::new(first),
                    value: None,
                    generators: gens,
                },
            ));
        }
        if self.check(&TokenKind::Comma) {
            let mut elems = vec![first];
            while self.eat_if(&TokenKind::Comma) {
                if self.check(&TokenKind::RParen) {
                    break;
                }
                elems.push(self.expression()?);
            }
            let end = self.eat(&TokenKind::RParen)?.span;
            return Ok(self.expr(start.to(end), ExprKind::Tuple(elems)));
        }
        self.eat(&TokenKind::RParen)?;
        // Parenthesized expression: keep the inner node (spans stay inner).
        Ok(first)
    }

    fn list_atom(&mut self) -> Result<Expr> {
        let start = self.eat(&TokenKind::LBracket)?.span;
        if self.check(&TokenKind::RBracket) {
            let end = self.advance().span;
            return Ok(self.expr(start.to(end), ExprKind::List(Vec::new())));
        }
        let first = self.expression()?;
        if self.check(&TokenKind::For) {
            let gens = self.comprehension_clauses()?;
            let end = self.eat(&TokenKind::RBracket)?.span;
            return Ok(self.expr(
                start.to(end),
                ExprKind::Comprehension {
                    kind: ComprehensionKind::List,
                    element: Box::new(first),
                    value: None,
                    generators: gens,
                },
            ));
        }
        let mut elems = vec![first];
        while self.eat_if(&TokenKind::Comma) {
            if self.check(&TokenKind::RBracket) {
                break;
            }
            elems.push(self.expression()?);
        }
        let end = self.eat(&TokenKind::RBracket)?.span;
        Ok(self.expr(start.to(end), ExprKind::List(elems)))
    }

    fn brace_atom(&mut self) -> Result<Expr> {
        let start = self.eat(&TokenKind::LBrace)?.span;
        if self.check(&TokenKind::RBrace) {
            let end = self.advance().span;
            return Ok(self.expr(start.to(end), ExprKind::Dict { keys: vec![], values: vec![] }));
        }
        if self.eat_if(&TokenKind::StarStar) {
            // `{**a, …}` — model the splat value as both key and value slot.
            let splat = self.expression()?;
            let mut keys = vec![];
            let mut values = vec![splat];
            while self.eat_if(&TokenKind::Comma) {
                if self.check(&TokenKind::RBrace) {
                    break;
                }
                if self.eat_if(&TokenKind::StarStar) {
                    values.push(self.expression()?);
                } else {
                    let k = self.expression()?;
                    self.eat(&TokenKind::Colon)?;
                    keys.push(k);
                    values.push(self.expression()?);
                }
            }
            let end = self.eat(&TokenKind::RBrace)?.span;
            return Ok(self.expr(start.to(end), ExprKind::Dict { keys, values }));
        }
        let first = self.expression()?;
        if self.eat_if(&TokenKind::Colon) {
            let fval = self.expression()?;
            if self.check(&TokenKind::For) {
                let gens = self.comprehension_clauses()?;
                let end = self.eat(&TokenKind::RBrace)?.span;
                return Ok(self.expr(
                    start.to(end),
                    ExprKind::Comprehension {
                        kind: ComprehensionKind::Dict,
                        element: Box::new(first),
                        value: Some(Box::new(fval)),
                        generators: gens,
                    },
                ));
            }
            let mut keys = vec![first];
            let mut values = vec![fval];
            while self.eat_if(&TokenKind::Comma) {
                if self.check(&TokenKind::RBrace) {
                    break;
                }
                if self.eat_if(&TokenKind::StarStar) {
                    values.push(self.expression()?);
                    continue;
                }
                let k = self.expression()?;
                self.eat(&TokenKind::Colon)?;
                let v = self.expression()?;
                keys.push(k);
                values.push(v);
            }
            let end = self.eat(&TokenKind::RBrace)?.span;
            return Ok(self.expr(start.to(end), ExprKind::Dict { keys, values }));
        }
        if self.check(&TokenKind::For) {
            let gens = self.comprehension_clauses()?;
            let end = self.eat(&TokenKind::RBrace)?.span;
            return Ok(self.expr(
                start.to(end),
                ExprKind::Comprehension {
                    kind: ComprehensionKind::Set,
                    element: Box::new(first),
                    value: None,
                    generators: gens,
                },
            ));
        }
        let mut elems = vec![first];
        while self.eat_if(&TokenKind::Comma) {
            if self.check(&TokenKind::RBrace) {
                break;
            }
            elems.push(self.expression()?);
        }
        let end = self.eat(&TokenKind::RBrace)?.span;
        Ok(self.expr(start.to(end), ExprKind::Set(elems)))
    }

    /// Parses `{expr}` holes inside an f-string so name uses remain visible
    /// to data-flow analysis. Format specs after `:` and conversions after
    /// `!` are ignored.
    fn parse_fstring_holes(&mut self, raw: &str, span: Span) -> Result<Vec<Expr>> {
        let mut parts = Vec::new();
        let bytes = raw.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'{' if i + 1 < bytes.len() && bytes[i + 1] == b'{' => i += 2,
                b'}' if i + 1 < bytes.len() && bytes[i + 1] == b'}' => i += 2,
                b'{' => {
                    let start = i + 1;
                    let mut depth = 1;
                    let mut j = start;
                    let mut expr_end = None;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'{' => depth += 1,
                            b'}' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            b':' | b'!' if depth == 1 && expr_end.is_none() => {
                                expr_end = Some(j);
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if j >= bytes.len() {
                        return Err(ParseError::new("unbalanced `{` in f-string", span));
                    }
                    let end = expr_end.unwrap_or(j);
                    let inner = raw[start..end].trim();
                    if !inner.is_empty() && !inner.ends_with('=') {
                        // Sub-parse the hole; ids continue from our counter.
                        let tokens = lex(inner)
                            .map_err(|e| ParseError::new(format!("in f-string hole: {e}"), span))?;
                        let mut sub = Parser::new(tokens);
                        sub.next_id = self.next_id;
                        // Nested f-strings share the depth budget so hole
                        // sub-parses cannot exceed MAX_DEPTH either.
                        sub.depth = self.depth;
                        let e = sub
                            .expression()
                            .map_err(|e| ParseError::new(format!("in f-string hole: {e}"), span))?;
                        self.next_id = sub.next_id;
                        parts.push(e);
                    }
                    i = j + 1;
                }
                _ => i += 1,
            }
        }
        Ok(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Stmt {
        let m = parse_module(src).unwrap();
        assert_eq!(m.body.len(), 1, "expected one statement in {src:?}");
        m.body.into_iter().next().unwrap()
    }

    #[test]
    fn parses_assignment() {
        let s = parse_one("x = 1\n");
        match s.kind {
            StmtKind::Assign { targets, value } => {
                assert_eq!(targets.len(), 1);
                assert_eq!(targets[0].as_name(), Some("x"));
                assert_eq!(value.kind, ExprKind::Constant(Constant::Int(1)));
            }
            other => panic!("expected Assign, got {other:?}"),
        }
    }

    #[test]
    fn chained_assignment_keeps_all_targets() {
        let s = parse_one("a = b = 3\n");
        match s.kind {
            StmtKind::Assign { targets, .. } => assert_eq!(targets.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn augmented_assignment() {
        let s = parse_one("total += price\n");
        assert!(matches!(s.kind, StmtKind::AugAssign { op: BinOp::Add, .. }));
    }

    #[test]
    fn annotated_assignment_desugars() {
        let s = parse_one("count: int = 0\n");
        assert!(matches!(s.kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn method_call_chain() {
        let s = parse_one("user = User.objects.get(email=email)\n");
        let StmtKind::Assign { value, .. } = s.kind else { panic!() };
        let ExprKind::Call { func, args, keywords } = value.kind else { panic!() };
        assert!(args.is_empty());
        assert_eq!(keywords.len(), 1);
        assert_eq!(keywords[0].name.as_deref(), Some("email"));
        let (root, chain) = func.dotted_chain().unwrap();
        assert_eq!(root, "User");
        assert_eq!(chain, vec!["objects", "get"]);
    }

    #[test]
    fn if_elif_else_desugars() {
        let m = parse_module("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n").unwrap();
        let StmtKind::If { orelse, .. } = &m.body[0].kind else { panic!() };
        assert_eq!(orelse.len(), 1);
        let StmtKind::If { orelse: inner_else, .. } = &orelse[0].kind else { panic!() };
        assert_eq!(inner_else.len(), 1);
    }

    #[test]
    fn comparison_chain() {
        let e = parse_expr("0 <= x < 10").unwrap();
        let ExprKind::Compare { ops, comparators, .. } = e.kind else { panic!() };
        assert_eq!(ops, vec![CmpOp::LtEq, CmpOp::Lt]);
        assert_eq!(comparators.len(), 2);
    }

    #[test]
    fn is_not_and_not_in() {
        let e = parse_expr("a is not None").unwrap();
        let ExprKind::Compare { ops, .. } = e.kind else { panic!() };
        assert_eq!(ops, vec![CmpOp::IsNot]);
        let e = parse_expr("a not in b").unwrap();
        let ExprKind::Compare { ops, .. } = e.kind else { panic!() };
        assert_eq!(ops, vec![CmpOp::NotIn]);
    }

    #[test]
    fn precedence_and_over_or_and_not() {
        let e = parse_expr("a or b and not c").unwrap();
        let ExprKind::BoolOp { op: BoolOpKind::Or, values } = e.kind else { panic!() };
        assert_eq!(values.len(), 2);
        let ExprKind::BoolOp { op: BoolOpKind::And, values: inner } = &values[1].kind else {
            panic!()
        };
        assert!(matches!(inner[1].kind, ExprKind::UnaryOp { op: UnaryOp::Not, .. }));
    }

    #[test]
    fn arith_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        let ExprKind::BinOp { op: BinOp::Add, right, .. } = e.kind else { panic!() };
        assert!(matches!(right.kind, ExprKind::BinOp { op: BinOp::Mul, .. }));
    }

    #[test]
    fn power_is_right_associative() {
        let e = parse_expr("2 ** 3 ** 2").unwrap();
        let ExprKind::BinOp { op: BinOp::Pow, right, .. } = e.kind else { panic!() };
        assert!(matches!(right.kind, ExprKind::BinOp { op: BinOp::Pow, .. }));
    }

    #[test]
    fn function_def_with_defaults_and_stars() {
        let s = parse_one("def f(a, b=2, *args, **kwargs):\n    pass\n");
        let StmtKind::FunctionDef(f) = s.kind else { panic!() };
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 4);
        assert!(f.params[1].default.is_some());
        assert_eq!(f.params[2].star, ParamStar::Args);
        assert_eq!(f.params[3].star, ParamStar::Kwargs);
    }

    #[test]
    fn decorated_class_with_bases_and_keywords() {
        let s = parse_one("@register\nclass Order(models.Model, metaclass=Meta):\n    pass\n");
        let StmtKind::ClassDef(c) = s.kind else { panic!() };
        assert_eq!(c.name, "Order");
        assert_eq!(c.decorators.len(), 1);
        assert_eq!(c.bases.len(), 1);
        assert_eq!(c.keywords.len(), 1);
    }

    #[test]
    fn try_except_else_finally() {
        let src = "try:\n    x\nexcept ValueError as e:\n    y\nexcept Exception:\n    z\nelse:\n    a\nfinally:\n    b\n";
        let s = parse_one(src);
        let StmtKind::Try { handlers, orelse, finalbody, .. } = s.kind else { panic!() };
        assert_eq!(handlers.len(), 2);
        assert_eq!(handlers[0].name.as_deref(), Some("e"));
        assert!(handlers[1].name.is_none());
        assert_eq!(orelse.len(), 1);
        assert_eq!(finalbody.len(), 1);
    }

    #[test]
    fn bare_try_without_handlers_is_error() {
        assert!(parse_module("try:\n    x\n").is_err());
    }

    #[test]
    fn for_with_tuple_target() {
        let s = parse_one("for k, v in items:\n    pass\n");
        let StmtKind::For { target, .. } = s.kind else { panic!() };
        assert!(matches!(target.kind, ExprKind::Tuple(ref t) if t.len() == 2));
    }

    #[test]
    fn while_else() {
        let s = parse_one("while x:\n    a\nelse:\n    b\n");
        let StmtKind::While { orelse, .. } = s.kind else { panic!() };
        assert_eq!(orelse.len(), 1);
    }

    #[test]
    fn with_as_target() {
        let s = parse_one("with transaction.atomic() as tx:\n    pass\n");
        let StmtKind::With { items, .. } = s.kind else { panic!() };
        assert_eq!(items.len(), 1);
        assert!(items[0].target.is_some());
    }

    #[test]
    fn imports() {
        let m = parse_module("import os\nfrom django.db import models, connection\nfrom . import utils\nfrom .models import *\n")
            .unwrap();
        assert_eq!(m.body.len(), 4);
        let StmtKind::ImportFrom { module, names } = &m.body[1].kind else { panic!() };
        assert_eq!(module, "django.db");
        assert_eq!(names.len(), 2);
        let StmtKind::ImportFrom { module, .. } = &m.body[2].kind else { panic!() };
        assert_eq!(module, ".");
        let StmtKind::ImportFrom { names, .. } = &m.body[3].kind else { panic!() };
        assert_eq!(names[0].name, "*");
    }

    #[test]
    fn subscripts_and_slices() {
        let e = parse_expr("a[0]").unwrap();
        assert!(matches!(e.kind, ExprKind::Subscript { .. }));
        let e = parse_expr("a[1:2]").unwrap();
        let ExprKind::Subscript { index, .. } = e.kind else { panic!() };
        assert!(matches!(index.kind, ExprKind::Slice { .. }));
        let e = parse_expr("a[:n]").unwrap();
        let ExprKind::Subscript { index, .. } = e.kind else { panic!() };
        let ExprKind::Slice { lower, upper, .. } = index.kind else { panic!() };
        assert!(lower.is_none() && upper.is_some());
        let e = parse_expr("request.GET['order_number']").unwrap();
        assert!(matches!(e.kind, ExprKind::Subscript { .. }));
    }

    #[test]
    fn collections() {
        assert!(
            matches!(parse_expr("[1, 2, 3]").unwrap().kind, ExprKind::List(ref v) if v.len() == 3)
        );
        assert!(
            matches!(parse_expr("(1, 2)").unwrap().kind, ExprKind::Tuple(ref v) if v.len() == 2)
        );
        assert!(matches!(parse_expr("()").unwrap().kind, ExprKind::Tuple(ref v) if v.is_empty()));
        assert!(
            matches!(parse_expr("{}").unwrap().kind, ExprKind::Dict { ref keys, .. } if keys.is_empty())
        );
        assert!(
            matches!(parse_expr("{1: 'a'}").unwrap().kind, ExprKind::Dict { ref keys, .. } if keys.len() == 1)
        );
        assert!(matches!(parse_expr("{1, 2}").unwrap().kind, ExprKind::Set(ref v) if v.len() == 2));
        assert!(matches!(parse_expr("[1,]").unwrap().kind, ExprKind::List(ref v) if v.len() == 1));
    }

    #[test]
    fn comprehensions() {
        let e = parse_expr("[x.id for x in rows if x.ok]").unwrap();
        let ExprKind::Comprehension { kind, generators, .. } = e.kind else { panic!() };
        assert_eq!(kind, ComprehensionKind::List);
        assert_eq!(generators.len(), 1);
        assert_eq!(generators[0].ifs.len(), 1);
        assert!(matches!(
            parse_expr("{x: y for x, y in items}").unwrap().kind,
            ExprKind::Comprehension { kind: ComprehensionKind::Dict, .. }
        ));
        assert!(matches!(
            parse_expr("{x for x in items}").unwrap().kind,
            ExprKind::Comprehension { kind: ComprehensionKind::Set, .. }
        ));
        assert!(matches!(
            parse_expr("(x for x in items)").unwrap().kind,
            ExprKind::Comprehension { kind: ComprehensionKind::Generator, .. }
        ));
    }

    #[test]
    fn generator_call_argument() {
        let e = parse_expr("any(line.total is None for line in lines)").unwrap();
        let ExprKind::Call { args, .. } = e.kind else { panic!() };
        assert!(matches!(args[0].kind, ExprKind::Comprehension { .. }));
    }

    #[test]
    fn ternary_and_lambda() {
        let e = parse_expr("a if cond else b").unwrap();
        assert!(matches!(e.kind, ExprKind::IfExp { .. }));
        let e = parse_expr("lambda x, y=1: x + y").unwrap();
        let ExprKind::Lambda { params, .. } = e.kind else { panic!() };
        assert_eq!(params.len(), 2);
    }

    #[test]
    fn fstring_holes_are_parsed() {
        let e = parse_expr("f'order {order.id} for {user.email!r:>10}'").unwrap();
        let ExprKind::FString { parts, .. } = e.kind else { panic!() };
        assert_eq!(parts.len(), 2);
        assert!(parts[0].dotted_chain().is_some());
    }

    #[test]
    fn fstring_escaped_braces() {
        let e = parse_expr("f'{{literal}} {x}'").unwrap();
        let ExprKind::FString { parts, .. } = e.kind else { panic!() };
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn adjacent_string_concat() {
        let e = parse_expr("'a' 'b' 'c'").unwrap();
        assert_eq!(e.as_str(), Some("abc"));
    }

    #[test]
    fn return_tuple() {
        let m = parse_module("def f():\n    return a, b\n").unwrap();
        let StmtKind::FunctionDef(f) = &m.body[0].kind else { panic!() };
        let StmtKind::Return { value: Some(v) } = &f.body[0].kind else { panic!() };
        assert!(matches!(v.kind, ExprKind::Tuple(_)));
    }

    #[test]
    fn raise_from() {
        let s = parse_one("raise ValueError('bad') from exc\n");
        let StmtKind::Raise { exc, cause } = s.kind else { panic!() };
        assert!(exc.is_some() && cause.is_some());
    }

    #[test]
    fn inline_suite() {
        let s = parse_one("if a: b = 1; c = 2\n");
        let StmtKind::If { body, .. } = s.kind else { panic!() };
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn node_ids_are_dense_and_unique() {
        let m =
            parse_module("def f(a):\n    if a:\n        return a.b\n    return None\n").unwrap();
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        fn walk_stmt(s: &Stmt, seen: &mut HashSet<u32>) {
            assert!(seen.insert(s.id.0), "duplicate stmt id {}", s.id);
            match &s.kind {
                StmtKind::FunctionDef(f) => {
                    for st in &f.body {
                        walk_stmt(st, seen);
                    }
                }
                StmtKind::If { test, body, orelse } => {
                    walk_expr(test, seen);
                    for st in body.iter().chain(orelse) {
                        walk_stmt(st, seen);
                    }
                }
                StmtKind::Return { value: Some(v) } => {
                    walk_expr(v, seen);
                }
                _ => {}
            }
        }
        fn walk_expr(e: &Expr, seen: &mut HashSet<u32>) {
            assert!(seen.insert(e.id.0), "duplicate expr id {}", e.id);
            if let ExprKind::Attribute { value, .. } = &e.kind {
                walk_expr(value, seen);
            }
        }
        for s in &m.body {
            walk_stmt(s, &mut seen);
        }
        assert!(seen.iter().all(|id| *id < m.node_count));
    }

    #[test]
    fn error_messages_carry_location() {
        let err = parse_module("if a\n    pass\n").unwrap_err();
        assert!(err.message.contains("expected"), "{}", err.message);
        assert_eq!(err.span.start.line, 1);
    }

    #[test]
    fn starred_call_args() {
        let e = parse_expr("f(*args, **kwargs)").unwrap();
        let ExprKind::Call { args, keywords, .. } = e.kind else { panic!() };
        assert!(matches!(args[0].kind, ExprKind::Starred(_)));
        assert_eq!(keywords.len(), 1);
        assert!(keywords[0].name.is_none());
    }

    #[test]
    fn dict_splat() {
        let e = parse_expr("{**base, 'k': v}").unwrap();
        let ExprKind::Dict { keys, values } = e.kind else { panic!() };
        assert_eq!(keys.len(), 1);
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn global_and_del_and_assert() {
        let m = parse_module("global a, b\ndel x\nassert y, 'msg'\n").unwrap();
        assert!(matches!(&m.body[0].kind, StmtKind::Global { names } if names.len() == 2));
        assert!(matches!(&m.body[1].kind, StmtKind::Delete { targets } if targets.len() == 1));
        assert!(matches!(&m.body[2].kind, StmtKind::Assert { msg: Some(_), .. }));
    }

    #[test]
    fn yield_forms() {
        let m = parse_module("def g():\n    yield 1\n    yield from other()\n    yield\n").unwrap();
        let StmtKind::FunctionDef(f) = &m.body[0].kind else { panic!() };
        assert_eq!(f.body.len(), 3);
    }

    #[test]
    fn django_model_realistic() {
        let src = r#"
from django.db import models


class OrderLine(models.Model):
    order = models.ForeignKey('Order', on_delete=models.CASCADE, related_name='lines')
    product = models.ForeignKey('catalogue.Product', null=True, on_delete=models.SET_NULL)
    quantity = models.IntegerField(default=1)
    sku = models.CharField(max_length=128)

    class Meta:
        unique_together = ('order', 'sku')

    def is_available(self):
        if self.product is None:
            return False
        return self.product.is_public and self.quantity > 0
"#;
        let m = parse_module(src).unwrap();
        let StmtKind::ClassDef(c) = &m.body[1].kind else { panic!() };
        assert_eq!(c.name, "OrderLine");
        assert_eq!(c.body.len(), 6);
    }

    // --- recovering mode ----------------------------------------------------

    #[test]
    fn recovering_matches_strict_on_clean_input() {
        let src = "class A:\n    x = 1\n\n    def m(self):\n        return self.x\n";
        let strict = parse_module(src).unwrap();
        let out = parse_module_recovering(src);
        assert!(out.errors.is_empty());
        assert_eq!(strict, out.module);
    }

    #[test]
    fn recovering_skips_broken_top_level_statement() {
        let out = parse_module_recovering("a = 1\nb = = 2\nc = 3\n");
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.module.body.len(), 2);
        assert!(matches!(&out.module.body[0].kind, StmtKind::Assign { .. }));
        assert!(matches!(&out.module.body[1].kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn recovering_keeps_other_statements_in_same_suite() {
        let src = "def f():\n    good1 = 1\n    bad = = 2\n    good2 = 3\n";
        let out = parse_module_recovering(src);
        assert_eq!(out.errors.len(), 1);
        let StmtKind::FunctionDef(f) = &out.module.body[0].kind else { panic!() };
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn recovering_broken_header_skips_whole_block_only() {
        // A broken `def` header loses that definition and its indented
        // body (the Indent/Dedent pair is skipped as a balanced unit), but
        // nothing after it.
        // Note no bracket in the broken header: an unbalanced `(` makes
        // the lexer treat everything to EOF as one bracketed logical line,
        // which costs the rest of the file (see DESIGN.md §9).
        let src = "def broken 123:\n    x = 1\n    y = 2\nclass Survivor:\n    z = 3\n";
        let out = parse_module_recovering(src);
        assert!(!out.errors.is_empty());
        assert_eq!(out.module.body.len(), 1);
        assert!(matches!(&out.module.body[0].kind, StmtKind::ClassDef(c) if c.name == "Survivor"));
    }

    #[test]
    fn recovering_never_errors_on_arbitrary_garbage() {
        for src in ["(((", ")= =(", "def def def", "if :\n::\n", "\u{1F980} = 1\n"] {
            let out = parse_module_recovering(src);
            assert!(!out.errors.is_empty(), "expected errors for {src:?}");
        }
    }

    #[test]
    fn depth_limit_instead_of_stack_overflow() {
        let bomb = format!("x = {}0{}\n", "(".repeat(4000), ")".repeat(4000));
        let err = parse_module(&bomb).unwrap_err();
        assert_eq!(err.kind, crate::error::ParseErrorKind::DepthLimit);
        let out = parse_module_recovering(&bomb);
        assert!(out.errors.iter().any(|e| e.kind == crate::error::ParseErrorKind::DepthLimit));
    }

    #[test]
    fn depth_limit_admits_reasonable_nesting() {
        let fine = format!("x = {}0{}\n", "(".repeat(30), ")".repeat(30));
        assert!(parse_module(&fine).is_ok());
    }

    #[test]
    fn depth_limit_caps_operator_chains() {
        // Built iteratively, so the recursion guard never fires — but the
        // left-deep tree would overflow the stack in the recursive drop.
        let bomb = format!("x = 1{}\n", " + 1".repeat(MAX_CHAIN + 50));
        let err = parse_module(&bomb).unwrap_err();
        assert_eq!(err.kind, crate::error::ParseErrorKind::DepthLimit);
        let out = parse_module_recovering(&bomb);
        assert!(out.errors.iter().any(|e| e.kind == crate::error::ParseErrorKind::DepthLimit));
        // A long-but-sane chain still parses.
        let fine = format!("x = 1{}\n", " + 1".repeat(500));
        assert!(parse_module(&fine).is_ok());
    }

    #[test]
    fn depth_limit_caps_postfix_chains() {
        let bomb = format!("x = a{}\n", ".b".repeat(MAX_CHAIN + 50));
        let err = parse_module(&bomb).unwrap_err();
        assert_eq!(err.kind, crate::error::ParseErrorKind::DepthLimit);
        let fine = format!("x = a{}()\n", ".b".repeat(200));
        assert!(parse_module(&fine).is_ok());
    }
}
