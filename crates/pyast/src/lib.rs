//! # cfinder-pyast
//!
//! A from-scratch lexer, parser, and abstract syntax tree for the Python
//! subset used by Django-style web applications.
//!
//! This crate is the parsing substrate of the CFinder reproduction: the
//! paper's static analysis (ASPLOS '23, Huang et al.) is defined over
//! CPython `ast`-shaped trees — `If`, `Call`, `Attribute`, `Assign`,
//! `Raise`, … — and this crate produces exactly those shapes, with source
//! spans and dense per-module node ids for downstream side tables.
//!
//! ## Quick start
//!
//! ```
//! use cfinder_pyast::parse_module;
//! use cfinder_pyast::ast::StmtKind;
//!
//! let module = parse_module(
//!     "if User.objects.filter(email=email).exists():\n    raise ValidationError('taken')\n",
//! ).unwrap();
//! assert!(matches!(module.body[0].kind, StmtKind::If { .. }));
//! ```
//!
//! ## Layout
//!
//! * [`lexer`] — tokens with significant indentation (INDENT/DEDENT),
//!   implicit line joining inside brackets, string prefixes.
//! * [`parser`] — recursive descent with Python operator precedence; a
//!   recovering mode ([`parse_module_recovering`]) that resynchronizes at
//!   statement boundaries and returns a partial module plus error list;
//!   and a recursion-depth guard ([`parser::MAX_DEPTH`]) so pathological
//!   nesting yields an error instead of a stack overflow.
//! * [`ast`] — node definitions ([`ast::NodeId`], [`span::Span`]).
//! * [`visit`] — visitor trait, pre-order walks, and the breadth-first
//!   iteration the pattern matcher uses.
//! * [`unparse`] — canonical source rendering for diagnostics and
//!   round-trip tests.
//! * [`hash`] — stable (process- and platform-independent) 128-bit
//!   content hashing, the keying substrate of the incremental analysis
//!   cache.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod error;
pub mod hash;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod token;
pub mod unparse;
pub mod visit;

pub use ast::{Expr, ExprKind, Module, NodeId, Stmt, StmtKind};
pub use error::{ParseError, ParseErrorKind};
pub use hash::{stable_hash, stable_hash_hex, StableHasher};
pub use lexer::{lex_recovering, LexRecovery};
pub use parser::{
    parse_expr, parse_module, parse_module_recovering, Recovered, MAX_CHAIN, MAX_DEPTH,
};
pub use span::{Pos, Span};
pub use unparse::{unparse_expr, unparse_module, unparse_stmt};
