//! Source positions and spans.
//!
//! Every token and AST node carries a [`Span`] so that diagnostics and
//! detection reports can point back at the offending source location, the
//! same way CFinder reports "detailed code pattern information" (§A.1).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A position in source text, tracked as 1-based line and column plus a
/// 0-based byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
    /// 0-based byte offset from the start of the file.
    pub offset: u32,
}

impl Pos {
    /// The first position in a file.
    pub const START: Pos = Pos { line: 1, col: 1, offset: 0 };

    /// Creates a new position.
    pub fn new(line: u32, col: u32, offset: u32) -> Self {
        Pos { line, col, offset }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open byte range `[start, end)` in a single source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Start of the span (inclusive).
    pub start: Pos,
    /// End of the span (exclusive).
    pub end: Pos,
}

impl Span {
    /// A zero-width span at the start of the file; used for synthesized nodes.
    pub const DUMMY: Span = Span { start: Pos::START, end: Pos::START };

    /// Creates a span between two positions.
    pub fn new(start: Pos, end: Pos) -> Self {
        Span { start, end }
    }

    /// Returns the smallest span covering both `self` and `other`.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span {
            start: if self.start <= other.start { self.start } else { other.start },
            end: if self.end.offset >= other.end.offset { self.end } else { other.end },
        }
    }

    /// Returns the source text this span covers.
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        let s = self.start.offset as usize;
        let e = (self.end.offset as usize).min(source.len());
        &source[s.min(e)..e]
    }

    /// Returns true if `self` fully contains `other`.
    pub fn contains(&self, other: Span) -> bool {
        self.start.offset <= other.start.offset && other.end.offset <= self.end.offset
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.end.offset.saturating_sub(self.start.offset)
    }

    /// Returns true if the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_display() {
        assert_eq!(Pos::new(3, 7, 40).to_string(), "3:7");
    }

    #[test]
    fn span_join_orders_endpoints() {
        let a = Span::new(Pos::new(1, 1, 0), Pos::new(1, 5, 4));
        let b = Span::new(Pos::new(2, 1, 10), Pos::new(2, 4, 13));
        let j = a.to(b);
        assert_eq!(j.start, a.start);
        assert_eq!(j.end, b.end);
        // Join is commutative.
        assert_eq!(b.to(a), j);
    }

    #[test]
    fn span_slice_extracts_text() {
        let src = "hello world";
        let sp = Span::new(Pos::new(1, 7, 6), Pos::new(1, 12, 11));
        assert_eq!(sp.slice(src), "world");
    }

    #[test]
    fn span_slice_clamps_out_of_range() {
        let src = "ab";
        let sp = Span::new(Pos::new(1, 1, 0), Pos::new(1, 99, 98));
        assert_eq!(sp.slice(src), "ab");
    }

    #[test]
    fn span_contains() {
        let outer = Span::new(Pos::new(1, 1, 0), Pos::new(1, 11, 10));
        let inner = Span::new(Pos::new(1, 3, 2), Pos::new(1, 6, 5));
        assert!(outer.contains(inner));
        assert!(!inner.contains(outer));
        assert!(outer.contains(outer));
    }

    #[test]
    fn span_len_and_empty() {
        assert!(Span::DUMMY.is_empty());
        let sp = Span::new(Pos::new(1, 1, 0), Pos::new(1, 4, 3));
        assert_eq!(sp.len(), 3);
        assert!(!sp.is_empty());
    }
}
