//! Lexing and parsing errors.

use std::error::Error;
use std::fmt;

use crate::span::Span;

/// Classifies a [`ParseError`] so callers can map errors onto a typed
/// incident taxonomy without matching on message strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseErrorKind {
    /// Ordinary malformed syntax, detected while lexing or parsing.
    #[default]
    Syntax,
    /// The parser's recursion-depth guard fired (pathologically nested
    /// input); the construct was abandoned instead of overflowing the
    /// stack.
    DepthLimit,
}

/// An error produced while lexing or parsing source text.
///
/// Carries the source [`Span`] where the error was detected so callers can
/// render `file:line:col` diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where the error was detected.
    pub span: Span,
    /// What class of failure this is.
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// Creates a new syntax error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError { message: message.into(), span, kind: ParseErrorKind::Syntax }
    }

    /// Creates a depth-limit error at `span`.
    pub fn depth_limit(max_depth: u32, span: Span) -> Self {
        ParseError {
            message: format!("nesting exceeds the maximum depth of {max_depth}"),
            span,
            kind: ParseErrorKind::DepthLimit,
        }
    }

    /// Creates a chain-length error at `span` (an iteratively-built
    /// operator or postfix chain grew past the cap; classified as
    /// [`ParseErrorKind::DepthLimit`] because it bounds tree depth).
    pub fn chain_limit(max_links: usize, span: Span) -> Self {
        ParseError {
            message: format!("expression chain exceeds the maximum length of {max_links}"),
            span,
            kind: ParseErrorKind::DepthLimit,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span.start)
    }
}

impl Error for ParseError {}

/// Convenience alias for parse results.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Pos;

    #[test]
    fn display_includes_position() {
        let err =
            ParseError::new("unexpected `)`", Span::new(Pos::new(4, 9, 33), Pos::new(4, 10, 34)));
        assert_eq!(err.to_string(), "unexpected `)` at 4:9");
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error>(_: &E) {}
        let err = ParseError::new("x", Span::DUMMY);
        assert_error(&err);
    }

    #[test]
    fn kinds_classify_errors() {
        assert_eq!(ParseError::new("x", Span::DUMMY).kind, ParseErrorKind::Syntax);
        let deep = ParseError::depth_limit(64, Span::DUMMY);
        assert_eq!(deep.kind, ParseErrorKind::DepthLimit);
        assert!(deep.message.contains("64"));
    }
}
