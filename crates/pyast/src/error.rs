//! Lexing and parsing errors.

use std::error::Error;
use std::fmt;

use crate::span::Span;

/// An error produced while lexing or parsing source text.
///
/// Carries the source [`Span`] where the error was detected so callers can
/// render `file:line:col` diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where the error was detected.
    pub span: Span,
}

impl ParseError {
    /// Creates a new error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError { message: message.into(), span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span.start)
    }
}

impl Error for ParseError {}

/// Convenience alias for parse results.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Pos;

    #[test]
    fn display_includes_position() {
        let err =
            ParseError::new("unexpected `)`", Span::new(Pos::new(4, 9, 33), Pos::new(4, 10, 34)));
        assert_eq!(err.to_string(), "unexpected `)` at 4:9");
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error>(_: &E) {}
        let err = ParseError::new("x", Span::DUMMY);
        assert_error(&err);
    }
}
