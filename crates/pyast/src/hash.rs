//! Stable content hashing.
//!
//! The incremental analysis cache keys on-disk entries by source-file
//! content, so the hash must be **stable**: the same bytes produce the
//! same digest in every process, on every platform, forever (unlike
//! `std::hash::DefaultHasher`, which is randomly seeded per process and
//! explicitly unstable across releases). This module implements 128-bit
//! FNV-1a — small, dependency-free, fast on the short-to-medium inputs
//! the analyzer sees, and wide enough that accidental collisions across a
//! cache directory are not a practical concern. It is **not** a
//! cryptographic hash: cache directories are trusted local state, and a
//! corrupted or hand-edited entry is detected by the cache's own
//! validation, not by the digest.

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// An incremental 128-bit FNV-1a hasher for building composite keys
/// (e.g. a tool fingerprint folded over version, options, and limits).
///
/// Field separators: [`StableHasher::write_str`] feeds a `0xff` byte after
/// the string so that adjacent fields cannot alias (`"ab" + "c"` hashes
/// differently from `"a" + "bc"`).
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a string field followed by a separator byte, so consecutive
    /// fields never alias.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]);
    }

    /// Feeds an integer as its little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.state
    }

    /// The current digest as 32 lowercase hex characters.
    pub fn finish_hex(&self) -> String {
        format!("{:032x}", self.state)
    }
}

/// Hashes one byte slice to a 128-bit digest.
pub fn stable_hash(bytes: &[u8]) -> u128 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

/// Hashes one byte slice to 32 lowercase hex characters — the form used
/// for cache-entry file names and stored content digests.
pub fn stable_hash_hex(bytes: &[u8]) -> String {
    format!("{:032x}", stable_hash(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors_are_stable() {
        // FNV-1a 128 reference values; these must never change, or every
        // on-disk cache entry in the wild silently invalidates.
        assert_eq!(stable_hash(b""), FNV_OFFSET);
        assert_eq!(stable_hash_hex(b""), "6c62272e07bb014262b821756295c58d");
        assert_eq!(stable_hash_hex(b"a"), "d228cb696f1a8caf78912b704e4a8964");
        assert_eq!(stable_hash_hex(b"foobar"), "343e1662793c64bf6f0d3597ba446f18");
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(stable_hash(b"models.py"), stable_hash(b"views.py"));
        assert_ne!(stable_hash(b"x = 1\n"), stable_hash(b"x = 2\n"));
    }

    #[test]
    fn field_separation_prevents_aliasing() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_fixed_width() {
        let mut h = StableHasher::new();
        h.write_u64(7);
        assert_eq!(h.finish_hex().len(), 32);
    }
}
