//! Abstract syntax tree for the Python subset.
//!
//! The node shapes deliberately mirror CPython's `ast` module (`If`, `Call`,
//! `Attribute`, `Assign`, `Raise`, …) because CFinder's pattern conditions
//! (§3.3.2 of the paper) are formulated over exactly those node kinds.
//!
//! Every statement and expression carries a unique [`NodeId`] (assigned by
//! the parser, dense from zero) and a [`Span`]. Downstream analyses key
//! side tables (control-flow, use-def, match results) by `NodeId`.

use std::fmt;

use crate::span::Span;

/// A unique, dense identifier for an AST node within one [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Placeholder id for nodes synthesized outside the parser.
    pub const DUMMY: NodeId = NodeId(u32::MAX);
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A parsed module (one source file).
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Top-level statements.
    pub body: Vec<Stmt>,
    /// Number of `NodeId`s handed out while parsing this module; all ids in
    /// the tree are `< node_count`.
    pub node_count: u32,
}

impl Module {
    /// Deep statement count — every statement in the module, including
    /// those nested in function/class bodies, branches, loops, and
    /// handlers. A parse-level size measure for the observability layer
    /// (`cfinder_statements_total`), deterministic for a given source.
    pub fn stmt_count(&self) -> usize {
        fn count(body: &[Stmt]) -> usize {
            body.iter()
                .map(|stmt| {
                    1 + match &stmt.kind {
                        StmtKind::FunctionDef(f) => count(&f.body),
                        StmtKind::ClassDef(c) => count(&c.body),
                        StmtKind::If { body, orelse, .. }
                        | StmtKind::For { body, orelse, .. }
                        | StmtKind::While { body, orelse, .. } => count(body) + count(orelse),
                        StmtKind::Try { body, handlers, orelse, finalbody } => {
                            count(body)
                                + handlers.iter().map(|h| count(&h.body)).sum::<usize>()
                                + count(orelse)
                                + count(finalbody)
                        }
                        StmtKind::With { body, .. } => count(body),
                        _ => 0,
                    }
                })
                .sum()
        }
        count(&self.body)
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Unique id within the module.
    pub id: NodeId,
    /// Source span.
    pub span: Span,
    /// The statement variant.
    pub kind: StmtKind,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `def name(params): body`
    FunctionDef(FunctionDef),
    /// `class name(bases, **keywords): body`
    ClassDef(ClassDef),
    /// `if test: body [else: orelse]` — `elif` chains desugar to a nested
    /// `If` as the sole statement of `orelse`.
    If {
        /// Condition.
        test: Expr,
        /// Then-branch.
        body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        orelse: Vec<Stmt>,
    },
    /// `for target in iter: body [else: orelse]`
    For {
        /// Loop variable(s).
        target: Expr,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// `else` clause.
        orelse: Vec<Stmt>,
    },
    /// `while test: body [else: orelse]`
    While {
        /// Condition.
        test: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// `else` clause.
        orelse: Vec<Stmt>,
    },
    /// `try: body except …: … [else: …] [finally: …]`
    Try {
        /// Guarded statements.
        body: Vec<Stmt>,
        /// `except` clauses in order.
        handlers: Vec<ExceptHandler>,
        /// `else` clause.
        orelse: Vec<Stmt>,
        /// `finally` clause.
        finalbody: Vec<Stmt>,
    },
    /// `with items: body`
    With {
        /// Context managers.
        items: Vec<WithItem>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `targets = value` (chained assignment keeps all targets).
    Assign {
        /// Assignment targets, left to right.
        targets: Vec<Expr>,
        /// Assigned value.
        value: Expr,
    },
    /// `target op= value`
    AugAssign {
        /// Target.
        target: Expr,
        /// The operator (e.g. `Add` for `+=`).
        op: BinOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `return [value]`
    Return {
        /// Optional return value.
        value: Option<Expr>,
    },
    /// `raise [exc [from cause]]`
    Raise {
        /// The raised exception.
        exc: Option<Expr>,
        /// The `from` cause.
        cause: Option<Expr>,
    },
    /// A bare expression statement.
    Expr {
        /// The expression.
        value: Expr,
    },
    /// `import module [as alias], …`
    Import {
        /// Imported names.
        names: Vec<ImportAlias>,
    },
    /// `from module import name [as alias], …`
    ImportFrom {
        /// Dotted module path (empty segments for leading dots are kept as
        /// written, e.g. `".models"`).
        module: String,
        /// Imported names (a single `*` entry for star imports).
        names: Vec<ImportAlias>,
    },
    /// `assert test [, msg]`
    Assert {
        /// Asserted condition.
        test: Expr,
        /// Optional message.
        msg: Option<Expr>,
    },
    /// `global names`
    Global {
        /// Declared names.
        names: Vec<String>,
    },
    /// `del targets`
    Delete {
        /// Deleted targets.
        targets: Vec<Expr>,
    },
    /// `pass`
    Pass,
    /// `break`
    Break,
    /// `continue`
    Continue,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Positional/keyword parameters in order.
    pub params: Vec<Param>,
    /// Decorator expressions, outermost first.
    pub decorators: Vec<Expr>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A class definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Base-class expressions.
    pub bases: Vec<Expr>,
    /// Keyword arguments in the class header (e.g. `metaclass=`).
    pub keywords: Vec<Keyword>,
    /// Decorator expressions, outermost first.
    pub decorators: Vec<Expr>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Default value, if any.
    pub default: Option<Expr>,
    /// Star kind: `*args`, `**kwargs`, or plain.
    pub star: ParamStar,
    /// Source span of the name.
    pub span: Span,
}

/// Whether a parameter is starred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamStar {
    /// A plain parameter.
    None,
    /// `*args`
    Args,
    /// `**kwargs`
    Kwargs,
}

/// One `except` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ExceptHandler {
    /// Exception type expression (`None` for a bare `except:`).
    pub typ: Option<Expr>,
    /// Binding name (`except E as name`).
    pub name: Option<String>,
    /// Handler body.
    pub body: Vec<Stmt>,
    /// Span of the clause header.
    pub span: Span,
}

/// One `with` item: `context_expr [as optional_vars]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WithItem {
    /// Context-manager expression.
    pub context: Expr,
    /// Target bound by `as`.
    pub target: Option<Expr>,
}

/// An `import` alias: `name [as asname]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportAlias {
    /// Imported dotted name (or `*`).
    pub name: String,
    /// Local alias.
    pub asname: Option<String>,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique id within the module.
    pub id: NodeId,
    /// Source span.
    pub span: Span,
    /// The expression variant.
    pub kind: ExprKind,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// An identifier reference.
    Name(String),
    /// `value.attr`
    Attribute {
        /// The object expression.
        value: Box<Expr>,
        /// Attribute name.
        attr: String,
    },
    /// `func(args, keywords)`
    Call {
        /// Callee expression.
        func: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Keyword arguments.
        keywords: Vec<Keyword>,
    },
    /// `value[index]`
    Subscript {
        /// The subscripted expression.
        value: Box<Expr>,
        /// Index expression (a `Slice` for `a[x:y]`).
        index: Box<Expr>,
    },
    /// A literal constant.
    Constant(Constant),
    /// `(a, b, …)` — also unparenthesized tuples.
    Tuple(Vec<Expr>),
    /// `[a, b, …]`
    List(Vec<Expr>),
    /// `{k: v, …}`
    Dict {
        /// Keys (same length as `values`).
        keys: Vec<Expr>,
        /// Values.
        values: Vec<Expr>,
    },
    /// `{a, b, …}` (non-empty; `{}` parses as an empty `Dict`).
    Set(Vec<Expr>),
    /// `left op right`
    BinOp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `op operand`
    UnaryOp {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `a and b and c` / `a or b or c` — n-ary, like CPython.
    BoolOp {
        /// `And` or `Or`.
        op: BoolOpKind,
        /// Two or more operands.
        values: Vec<Expr>,
    },
    /// `left op1 c1 op2 c2 …` — chained comparison.
    Compare {
        /// Leftmost operand.
        left: Box<Expr>,
        /// Comparison operators (same length as `comparators`).
        ops: Vec<CmpOp>,
        /// Right-hand operands.
        comparators: Vec<Expr>,
    },
    /// `body if test else orelse`
    IfExp {
        /// Condition.
        test: Box<Expr>,
        /// Value when true.
        body: Box<Expr>,
        /// Value when false.
        orelse: Box<Expr>,
    },
    /// `lambda params: body`
    Lambda {
        /// Parameters.
        params: Vec<Param>,
        /// Body expression.
        body: Box<Expr>,
    },
    /// `*expr` in a call or assignment context.
    Starred(Box<Expr>),
    /// An f-string, kept as its raw inner text plus the expressions that
    /// appear inside `{…}` holes (parsed so uses are visible to data-flow).
    FString {
        /// Raw literal text as written (without the `f` prefix and quotes).
        raw: String,
        /// Parsed hole expressions in order of appearance.
        parts: Vec<Expr>,
    },
    /// `lower:upper[:step]` inside a subscript.
    Slice {
        /// Lower bound.
        lower: Option<Box<Expr>>,
        /// Upper bound.
        upper: Option<Box<Expr>>,
        /// Step.
        step: Option<Box<Expr>>,
    },
    /// A comprehension: `[elt for t in iter if cond]`, `{…}`, `(…)`.
    Comprehension {
        /// Which bracket form.
        kind: ComprehensionKind,
        /// Element expression (key for dict comprehensions).
        element: Box<Expr>,
        /// Value expression for dict comprehensions.
        value: Option<Box<Expr>>,
        /// `for`/`if` clauses.
        generators: Vec<Comprehension>,
    },
    /// `yield [value]` (expression position).
    Yield(Option<Box<Expr>>),
}

/// Bracket form of a comprehension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComprehensionKind {
    /// `[…]`
    List,
    /// `{…}` with element only.
    Set,
    /// `{k: v …}`
    Dict,
    /// `(…)`
    Generator,
}

/// One `for target in iter [if cond]*` clause of a comprehension.
#[derive(Debug, Clone, PartialEq)]
pub struct Comprehension {
    /// Loop target.
    pub target: Expr,
    /// Iterated expression.
    pub iter: Expr,
    /// Filter conditions.
    pub ifs: Vec<Expr>,
}

/// A keyword argument `name=value`; `name` is `None` for `**expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Keyword {
    /// Argument name (`None` for `**expr`).
    pub name: Option<String>,
    /// Argument value.
    pub value: Expr,
}

/// Literal constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Constant {
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `True` / `False`
    Bool(bool),
    /// `None`
    None,
}

impl Constant {
    /// Returns true if this constant is `None`.
    pub fn is_none(&self) -> bool {
        matches!(self, Constant::None)
    }
}

/// Binary arithmetic/bitwise operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `//`
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl BinOp {
    /// The operator's source text.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `not`
    Not,
    /// `-`
    Neg,
    /// `+`
    Pos,
    /// `~`
    Invert,
}

impl UnaryOp {
    /// The operator's source text (with trailing space for `not`).
    pub fn symbol(&self) -> &'static str {
        match self {
            UnaryOp::Not => "not ",
            UnaryOp::Neg => "-",
            UnaryOp::Pos => "+",
            UnaryOp::Invert => "~",
        }
    }
}

/// Boolean connectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolOpKind {
    /// `and`
    And,
    /// `or`
    Or,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `in`
    In,
    /// `not in`
    NotIn,
    /// `is`
    Is,
    /// `is not`
    IsNot,
}

impl CmpOp {
    /// The operator's source text.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::NotEq => "!=",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
            CmpOp::In => "in",
            CmpOp::NotIn => "not in",
            CmpOp::Is => "is",
            CmpOp::IsNot => "is not",
        }
    }

    /// The logically negated operator, when one exists in the set.
    pub fn negated(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::NotEq,
            CmpOp::NotEq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::GtEq,
            CmpOp::LtEq => CmpOp::Gt,
            CmpOp::Gt => CmpOp::LtEq,
            CmpOp::GtEq => CmpOp::Lt,
            CmpOp::In => CmpOp::NotIn,
            CmpOp::NotIn => CmpOp::In,
            CmpOp::Is => CmpOp::IsNot,
            CmpOp::IsNot => CmpOp::Is,
        }
    }
}

impl Expr {
    /// If this expression is a plain name, returns it.
    pub fn as_name(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Name(n) => Some(n),
            _ => None,
        }
    }

    /// If this expression is an attribute access, returns `(value, attr)`.
    pub fn as_attribute(&self) -> Option<(&Expr, &str)> {
        match &self.kind {
            ExprKind::Attribute { value, attr } => Some((value, attr)),
            _ => None,
        }
    }

    /// If this expression is a string constant, returns its contents.
    pub fn as_str(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Constant(Constant::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Returns the chain of attribute names for a dotted expression rooted
    /// at a plain name: `a.b.c` → `Some(("a", ["b", "c"]))`.
    ///
    /// Calls and subscripts break the chain (returns `None`).
    pub fn dotted_chain(&self) -> Option<(&str, Vec<&str>)> {
        let mut attrs = Vec::new();
        let mut cur = self;
        loop {
            match &cur.kind {
                ExprKind::Name(n) => {
                    attrs.reverse();
                    return Some((n, attrs));
                }
                ExprKind::Attribute { value, attr } => {
                    attrs.push(attr.as_str());
                    cur = value;
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(n: &str) -> Expr {
        Expr { id: NodeId::DUMMY, span: Span::DUMMY, kind: ExprKind::Name(n.to_string()) }
    }

    fn attr(value: Expr, a: &str) -> Expr {
        Expr {
            id: NodeId::DUMMY,
            span: Span::DUMMY,
            kind: ExprKind::Attribute { value: Box::new(value), attr: a.to_string() },
        }
    }

    #[test]
    fn dotted_chain_walks_attributes() {
        let e = attr(attr(name("a"), "b"), "c");
        let (root, chain) = e.dotted_chain().unwrap();
        assert_eq!(root, "a");
        assert_eq!(chain, vec!["b", "c"]);
    }

    #[test]
    fn dotted_chain_rejects_calls() {
        let call = Expr {
            id: NodeId::DUMMY,
            span: Span::DUMMY,
            kind: ExprKind::Call { func: Box::new(name("f")), args: vec![], keywords: vec![] },
        };
        let e = attr(call, "b");
        assert!(e.dotted_chain().is_none());
    }

    #[test]
    fn cmp_op_negation_is_involutive() {
        use CmpOp::*;
        for op in [Eq, NotEq, Lt, LtEq, Gt, GtEq, In, NotIn, Is, IsNot] {
            assert_eq!(op.negated().negated(), op);
        }
    }

    #[test]
    fn accessors() {
        let e = name("x");
        assert_eq!(e.as_name(), Some("x"));
        assert!(e.as_attribute().is_none());
        let a = attr(name("x"), "y");
        let (v, at) = a.as_attribute().unwrap();
        assert_eq!(v.as_name(), Some("x"));
        assert_eq!(at, "y");
        let s = Expr {
            id: NodeId::DUMMY,
            span: Span::DUMMY,
            kind: ExprKind::Constant(Constant::Str("hi".into())),
        };
        assert_eq!(s.as_str(), Some("hi"));
        assert!(Constant::None.is_none());
    }
}
