//! Token definitions produced by the [lexer](crate::lexer).

use std::fmt;

use crate::span::Span;

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

/// The set of token kinds in the Python subset.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Structure
    /// Logical end of line.
    Newline,
    /// Increase of indentation level.
    Indent,
    /// Decrease of indentation level.
    Dedent,
    /// End of input (emitted exactly once).
    Eof,

    // Atoms
    /// Identifier (not a keyword).
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (contents, with escapes resolved).
    Str(String),
    /// Formatted string literal; kept as raw inner text.
    FStr(String),

    // Keywords
    /// The `def` keyword.
    Def,
    /// The `class` keyword.
    Class,
    /// The `if` keyword.
    If,
    /// The `elif` keyword.
    Elif,
    /// The `else` keyword.
    Else,
    /// The `for` keyword.
    For,
    /// The `while` keyword.
    While,
    /// The `try` keyword.
    Try,
    /// The `except` keyword.
    Except,
    /// The `finally` keyword.
    Finally,
    /// The `with` keyword.
    With,
    /// The `as` keyword.
    As,
    /// The `return` keyword.
    Return,
    /// The `raise` keyword.
    Raise,
    /// The `pass` keyword.
    Pass,
    /// The `break` keyword.
    Break,
    /// The `continue` keyword.
    Continue,
    /// The `import` keyword.
    Import,
    /// The `from` keyword.
    From,
    /// The `lambda` keyword.
    Lambda,
    /// The `global` keyword.
    Global,
    /// The `nonlocal` keyword.
    Nonlocal,
    /// The `del` keyword.
    Del,
    /// The `assert` keyword.
    Assert,
    /// The `yield` keyword.
    Yield,
    /// The `in` keyword.
    In,
    /// The `is` keyword.
    Is,
    /// The `not` keyword.
    Not,
    /// The `and` keyword.
    And,
    /// The `or` keyword.
    Or,
    /// The `None` keyword.
    None,
    /// The `True` keyword.
    True,
    /// The `False` keyword.
    False,

    // Operators and punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    StarStar,
    /// `/`
    Slash,
    /// `//`
    SlashSlash,
    /// `%`
    Percent,
    /// `@`
    At,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `->`
    Arrow,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `*=`
    StarEq,
    /// `/=`
    SlashEq,
    /// `//=`
    SlashSlashEq,
    /// `%=`
    PercentEq,
    /// `&=`
    AmpEq,
    /// `|=`
    PipeEq,
    /// `^=`
    CaretEq,
}

impl TokenKind {
    /// Maps an identifier to its keyword token, if it is one.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match ident {
            "def" => Def,
            "class" => Class,
            "if" => If,
            "elif" => Elif,
            "else" => Else,
            "for" => For,
            "while" => While,
            "try" => Try,
            "except" => Except,
            "finally" => Finally,
            "with" => With,
            "as" => As,
            "return" => Return,
            "raise" => Raise,
            "pass" => Pass,
            "break" => Break,
            "continue" => Continue,
            "import" => Import,
            "from" => From,
            "lambda" => Lambda,
            "global" => Global,
            "nonlocal" => Nonlocal,
            "del" => Del,
            "assert" => Assert,
            "yield" => Yield,
            "in" => In,
            "is" => Is,
            "not" => Not,
            "and" => And,
            "or" => Or,
            "None" => None,
            "True" => True,
            "False" => False,
            _ => return Option::None,
        })
    }

    /// Human-readable description used in parse-error messages.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Newline => "newline".to_string(),
            Indent => "indent".to_string(),
            Dedent => "dedent".to_string(),
            Eof => "end of file".to_string(),
            Name(n) => format!("identifier `{n}`"),
            Int(v) => format!("integer `{v}`"),
            Float(v) => format!("float `{v}`"),
            Str(_) => "string literal".to_string(),
            FStr(_) => "f-string literal".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// The canonical source text of fixed tokens (keywords/punctuation).
    ///
    /// Variable tokens (names, literals, structure tokens) return a
    /// placeholder suitable only for diagnostics.
    pub fn lexeme(&self) -> &'static str {
        use TokenKind::*;
        match self {
            Def => "def",
            Class => "class",
            If => "if",
            Elif => "elif",
            Else => "else",
            For => "for",
            While => "while",
            Try => "try",
            Except => "except",
            Finally => "finally",
            With => "with",
            As => "as",
            Return => "return",
            Raise => "raise",
            Pass => "pass",
            Break => "break",
            Continue => "continue",
            Import => "import",
            From => "from",
            Lambda => "lambda",
            Global => "global",
            Nonlocal => "nonlocal",
            Del => "del",
            Assert => "assert",
            Yield => "yield",
            In => "in",
            Is => "is",
            Not => "not",
            And => "and",
            Or => "or",
            None => "None",
            True => "True",
            False => "False",
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            LBrace => "{",
            RBrace => "}",
            Comma => ",",
            Colon => ":",
            Semi => ";",
            Dot => ".",
            Eq => "=",
            EqEq => "==",
            NotEq => "!=",
            Lt => "<",
            LtEq => "<=",
            Gt => ">",
            GtEq => ">=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            StarStar => "**",
            Slash => "/",
            SlashSlash => "//",
            Percent => "%",
            At => "@",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Shl => "<<",
            Shr => ">>",
            Arrow => "->",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            SlashSlashEq => "//=",
            PercentEq => "%=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            Newline | Indent | Dedent | Eof | Name(_) | Int(_) | Float(_) | Str(_) | FStr(_) => {
                "<dynamic>"
            }
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("def"), Some(TokenKind::Def));
        assert_eq!(TokenKind::keyword("None"), Some(TokenKind::None));
        assert_eq!(TokenKind::keyword("definitely"), None);
        assert_eq!(TokenKind::keyword(""), None);
    }

    #[test]
    fn keyword_lexemes_round_trip() {
        // Every keyword's lexeme must map back to itself via `keyword`.
        for kw in ["def", "class", "elif", "not", "and", "or", "True", "False", "in", "is"] {
            let tok = TokenKind::keyword(kw).unwrap();
            assert_eq!(tok.lexeme(), kw);
        }
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::Name("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::EqEq.describe(), "`==`");
        assert_eq!(TokenKind::Eof.describe(), "end of file");
    }
}
