//! Converts ASTs back to source text.
//!
//! Used for diagnostics (showing the matched snippet in detection reports)
//! and for the parser round-trip property tests. Output is canonical: four-
//! space indents, minimal but sufficient parentheses, one statement per line.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a module as canonical source text.
pub fn unparse_module(module: &Module) -> String {
    let mut out = String::new();
    for stmt in &module.body {
        unparse_stmt_into(stmt, 0, &mut out);
    }
    out
}

/// Renders one statement (and its nested suites) at `indent` levels.
pub fn unparse_stmt(stmt: &Stmt) -> String {
    let mut out = String::new();
    unparse_stmt_into(stmt, 0, &mut out);
    out
}

/// Renders an expression.
pub fn unparse_expr(expr: &Expr) -> String {
    let mut out = String::new();
    expr_into(expr, Prec::Lowest, &mut out);
    out
}

fn indent_str(level: usize) -> String {
    "    ".repeat(level)
}

fn unparse_stmt_into(stmt: &Stmt, level: usize, out: &mut String) {
    let pad = indent_str(level);
    match &stmt.kind {
        StmtKind::FunctionDef(f) => {
            for d in &f.decorators {
                let _ = writeln!(out, "{pad}@{}", unparse_expr(d));
            }
            let params: Vec<String> = f.params.iter().map(param_str).collect();
            let _ = writeln!(out, "{pad}def {}({}):", f.name, params.join(", "));
            suite(&f.body, level + 1, out);
        }
        StmtKind::ClassDef(c) => {
            for d in &c.decorators {
                let _ = writeln!(out, "{pad}@{}", unparse_expr(d));
            }
            let mut header: Vec<String> = c.bases.iter().map(unparse_expr).collect();
            header.extend(c.keywords.iter().map(|k| match &k.name {
                Some(n) => format!("{n}={}", unparse_expr(&k.value)),
                None => format!("**{}", unparse_expr(&k.value)),
            }));
            if header.is_empty() {
                let _ = writeln!(out, "{pad}class {}:", c.name);
            } else {
                let _ = writeln!(out, "{pad}class {}({}):", c.name, header.join(", "));
            }
            suite(&c.body, level + 1, out);
        }
        StmtKind::If { test, body, orelse } => {
            let _ = writeln!(out, "{pad}if {}:", unparse_expr(test));
            suite(body, level + 1, out);
            if !orelse.is_empty() {
                // Render `else: if …` chains as `elif`.
                if orelse.len() == 1 {
                    if let StmtKind::If { .. } = orelse[0].kind {
                        let rendered = {
                            let mut tmp = String::new();
                            unparse_stmt_into(&orelse[0], level, &mut tmp);
                            tmp
                        };
                        let rendered =
                            rendered.replacen(&format!("{pad}if "), &format!("{pad}elif "), 1);
                        out.push_str(&rendered);
                        return;
                    }
                }
                let _ = writeln!(out, "{pad}else:");
                suite(orelse, level + 1, out);
            }
        }
        StmtKind::For { target, iter, body, orelse } => {
            let _ = writeln!(out, "{pad}for {} in {}:", unparse_expr(target), unparse_expr(iter));
            suite(body, level + 1, out);
            if !orelse.is_empty() {
                let _ = writeln!(out, "{pad}else:");
                suite(orelse, level + 1, out);
            }
        }
        StmtKind::While { test, body, orelse } => {
            let _ = writeln!(out, "{pad}while {}:", unparse_expr(test));
            suite(body, level + 1, out);
            if !orelse.is_empty() {
                let _ = writeln!(out, "{pad}else:");
                suite(orelse, level + 1, out);
            }
        }
        StmtKind::Try { body, handlers, orelse, finalbody } => {
            let _ = writeln!(out, "{pad}try:");
            suite(body, level + 1, out);
            for h in handlers {
                match (&h.typ, &h.name) {
                    (Some(t), Some(n)) => {
                        let _ = writeln!(out, "{pad}except {} as {}:", unparse_expr(t), n);
                    }
                    (Some(t), None) => {
                        let _ = writeln!(out, "{pad}except {}:", unparse_expr(t));
                    }
                    _ => {
                        let _ = writeln!(out, "{pad}except:");
                    }
                }
                suite(&h.body, level + 1, out);
            }
            if !orelse.is_empty() {
                let _ = writeln!(out, "{pad}else:");
                suite(orelse, level + 1, out);
            }
            if !finalbody.is_empty() {
                let _ = writeln!(out, "{pad}finally:");
                suite(finalbody, level + 1, out);
            }
        }
        StmtKind::With { items, body } => {
            let rendered: Vec<String> = items
                .iter()
                .map(|i| match &i.target {
                    Some(t) => format!("{} as {}", unparse_expr(&i.context), unparse_expr(t)),
                    None => unparse_expr(&i.context),
                })
                .collect();
            let _ = writeln!(out, "{pad}with {}:", rendered.join(", "));
            suite(body, level + 1, out);
        }
        StmtKind::Assign { targets, value } => {
            let t: Vec<String> = targets.iter().map(unparse_expr).collect();
            let _ = writeln!(out, "{pad}{} = {}", t.join(" = "), unparse_expr(value));
        }
        StmtKind::AugAssign { target, op, value } => {
            let _ = writeln!(
                out,
                "{pad}{} {}= {}",
                unparse_expr(target),
                op.symbol(),
                unparse_expr(value)
            );
        }
        StmtKind::Return { value } => match value {
            Some(v) => {
                let _ = writeln!(out, "{pad}return {}", unparse_expr(v));
            }
            None => {
                let _ = writeln!(out, "{pad}return");
            }
        },
        StmtKind::Raise { exc, cause } => match (exc, cause) {
            (Some(e), Some(c)) => {
                let _ = writeln!(out, "{pad}raise {} from {}", unparse_expr(e), unparse_expr(c));
            }
            (Some(e), None) => {
                let _ = writeln!(out, "{pad}raise {}", unparse_expr(e));
            }
            _ => {
                let _ = writeln!(out, "{pad}raise");
            }
        },
        StmtKind::Expr { value } => {
            let _ = writeln!(out, "{pad}{}", unparse_expr(value));
        }
        StmtKind::Import { names } => {
            let _ = writeln!(out, "{pad}import {}", aliases(names));
        }
        StmtKind::ImportFrom { module, names } => {
            let _ = writeln!(out, "{pad}from {} import {}", module, aliases(names));
        }
        StmtKind::Assert { test, msg } => match msg {
            Some(m) => {
                let _ = writeln!(out, "{pad}assert {}, {}", unparse_expr(test), unparse_expr(m));
            }
            None => {
                let _ = writeln!(out, "{pad}assert {}", unparse_expr(test));
            }
        },
        StmtKind::Global { names } => {
            let _ = writeln!(out, "{pad}global {}", names.join(", "));
        }
        StmtKind::Delete { targets } => {
            let t: Vec<String> = targets.iter().map(unparse_expr).collect();
            let _ = writeln!(out, "{pad}del {}", t.join(", "));
        }
        StmtKind::Pass => {
            let _ = writeln!(out, "{pad}pass");
        }
        StmtKind::Break => {
            let _ = writeln!(out, "{pad}break");
        }
        StmtKind::Continue => {
            let _ = writeln!(out, "{pad}continue");
        }
    }
}

fn suite(body: &[Stmt], level: usize, out: &mut String) {
    if body.is_empty() {
        let _ = writeln!(out, "{}pass", indent_str(level));
    } else {
        for s in body {
            unparse_stmt_into(s, level, out);
        }
    }
}

fn aliases(names: &[ImportAlias]) -> String {
    names
        .iter()
        .map(|a| match &a.asname {
            Some(n) => format!("{} as {}", a.name, n),
            None => a.name.clone(),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn param_str(p: &Param) -> String {
    let star = match p.star {
        ParamStar::None => "",
        ParamStar::Args => "*",
        ParamStar::Kwargs => "**",
    };
    match &p.default {
        Some(d) => format!("{star}{}={}", p.name, unparse_expr(d)),
        None => format!("{star}{}", p.name),
    }
}

/// Operator precedence levels for parenthesization, lowest binds loosest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Lowest,
    Ternary,
    Or,
    And,
    Not,
    Compare,
    BitOr,
    BitXor,
    BitAnd,
    Shift,
    Arith,
    Term,
    Unary,
    Power,
    Postfix,
}

fn bin_prec(op: BinOp) -> Prec {
    match op {
        BinOp::BitOr => Prec::BitOr,
        BinOp::BitXor => Prec::BitXor,
        BinOp::BitAnd => Prec::BitAnd,
        BinOp::Shl | BinOp::Shr => Prec::Shift,
        BinOp::Add | BinOp::Sub => Prec::Arith,
        BinOp::Mul | BinOp::Div | BinOp::FloorDiv | BinOp::Mod => Prec::Term,
        BinOp::Pow => Prec::Power,
    }
}

fn expr_into(e: &Expr, parent: Prec, out: &mut String) {
    let prec = expr_prec(e);
    let need_parens = prec < parent;
    if need_parens {
        out.push('(');
    }
    match &e.kind {
        ExprKind::Name(n) => out.push_str(n),
        ExprKind::Constant(c) => constant_into(c, out),
        ExprKind::Attribute { value, attr } => {
            expr_into(value, Prec::Postfix, out);
            out.push('.');
            out.push_str(attr);
        }
        ExprKind::Call { func, args, keywords } => {
            expr_into(func, Prec::Postfix, out);
            out.push('(');
            let mut first = true;
            for a in args {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                expr_into(a, Prec::Lowest, out);
            }
            for k in keywords {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                match &k.name {
                    Some(n) => {
                        out.push_str(n);
                        out.push('=');
                        expr_into(&k.value, Prec::Lowest, out);
                    }
                    None => {
                        out.push_str("**");
                        expr_into(&k.value, Prec::Lowest, out);
                    }
                }
            }
            out.push(')');
        }
        ExprKind::Subscript { value, index } => {
            expr_into(value, Prec::Postfix, out);
            out.push('[');
            expr_into(index, Prec::Lowest, out);
            out.push(']');
        }
        ExprKind::Tuple(elems) => {
            out.push('(');
            for (i, el) in elems.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_into(el, Prec::Lowest, out);
            }
            if elems.len() == 1 {
                out.push(',');
            }
            out.push(')');
        }
        ExprKind::List(elems) => {
            out.push('[');
            for (i, el) in elems.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_into(el, Prec::Lowest, out);
            }
            out.push(']');
        }
        ExprKind::Set(elems) => {
            out.push('{');
            for (i, el) in elems.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_into(el, Prec::Lowest, out);
            }
            out.push('}');
        }
        ExprKind::Dict { keys, values } => {
            out.push('{');
            let mut vi = values.iter();
            let mut first = true;
            // Splat entries have no key; keys align with the tail of values.
            let splats = values.len() - keys.len();
            for _ in 0..splats {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str("**");
                expr_into(vi.next().unwrap(), Prec::Lowest, out);
            }
            for k in keys {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                expr_into(k, Prec::Lowest, out);
                out.push_str(": ");
                expr_into(vi.next().unwrap(), Prec::Lowest, out);
            }
            out.push('}');
        }
        ExprKind::BinOp { left, op, right } => {
            let p = bin_prec(*op);
            // Power is right-associative; everything else left-associative.
            if *op == BinOp::Pow {
                // `**` binds tighter on the left than itself (right-assoc),
                // so a Pow left operand must be parenthesized.
                expr_into(left, Prec::Postfix, out);
                let _ = write!(out, " {} ", op.symbol());
                expr_into(right, p, out);
            } else {
                expr_into(left, p, out);
                let _ = write!(out, " {} ", op.symbol());
                expr_into(right, next_prec(p), out);
            }
        }
        ExprKind::UnaryOp { op, operand } => {
            out.push_str(op.symbol());
            let inner = if *op == UnaryOp::Not { Prec::Not } else { Prec::Unary };
            expr_into(operand, inner, out);
        }
        ExprKind::BoolOp { op, values } => {
            let (p, sym) = match op {
                BoolOpKind::Or => (Prec::Or, " or "),
                BoolOpKind::And => (Prec::And, " and "),
            };
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    out.push_str(sym);
                }
                expr_into(v, next_prec(p), out);
            }
        }
        ExprKind::Compare { left, ops, comparators } => {
            expr_into(left, Prec::BitOr, out);
            for (op, c) in ops.iter().zip(comparators) {
                let _ = write!(out, " {} ", op.symbol());
                expr_into(c, Prec::BitOr, out);
            }
        }
        ExprKind::IfExp { test, body, orelse } => {
            expr_into(body, Prec::Or, out);
            out.push_str(" if ");
            expr_into(test, Prec::Or, out);
            out.push_str(" else ");
            expr_into(orelse, Prec::Ternary, out);
        }
        ExprKind::Lambda { params, body } => {
            out.push_str("lambda");
            if !params.is_empty() {
                out.push(' ');
                let ps: Vec<String> = params.iter().map(param_str).collect();
                out.push_str(&ps.join(", "));
            }
            out.push_str(": ");
            expr_into(body, Prec::Ternary, out);
        }
        ExprKind::Starred(inner) => {
            out.push('*');
            expr_into(inner, Prec::Unary, out);
        }
        ExprKind::FString { raw, .. } => {
            let _ = write!(out, "f{}", quote(raw));
        }
        ExprKind::Slice { lower, upper, step } => {
            if let Some(l) = lower {
                expr_into(l, Prec::Lowest, out);
            }
            out.push(':');
            if let Some(u) = upper {
                expr_into(u, Prec::Lowest, out);
            }
            if let Some(s) = step {
                out.push(':');
                expr_into(s, Prec::Lowest, out);
            }
        }
        ExprKind::Comprehension { kind, element, value, generators } => {
            let (open, close) = match kind {
                ComprehensionKind::List => ('[', ']'),
                ComprehensionKind::Set | ComprehensionKind::Dict => ('{', '}'),
                ComprehensionKind::Generator => ('(', ')'),
            };
            out.push(open);
            expr_into(element, Prec::Or, out);
            if let Some(v) = value {
                out.push_str(": ");
                expr_into(v, Prec::Or, out);
            }
            for g in generators {
                out.push_str(" for ");
                expr_into(&g.target, Prec::Or, out);
                out.push_str(" in ");
                expr_into(&g.iter, Prec::Or, out);
                for cond in &g.ifs {
                    out.push_str(" if ");
                    expr_into(cond, Prec::Or, out);
                }
            }
            out.push(close);
        }
        ExprKind::Yield(inner) => {
            out.push_str("yield");
            if let Some(v) = inner {
                out.push(' ');
                expr_into(v, Prec::Ternary, out);
            }
        }
    }
    if need_parens {
        out.push(')');
    }
}

/// The next-tighter precedence, used for the RHS of left-associative binops.
fn next_prec(p: Prec) -> Prec {
    use Prec::*;
    match p {
        Lowest => Ternary,
        Ternary => Or,
        Or => And,
        And => Not,
        Not => Compare,
        Compare => BitOr,
        BitOr => BitXor,
        BitXor => BitAnd,
        BitAnd => Shift,
        Shift => Arith,
        Arith => Term,
        Term => Unary,
        Unary => Power,
        Power | Postfix => Postfix,
    }
}

fn expr_prec(e: &Expr) -> Prec {
    match &e.kind {
        ExprKind::BinOp { op, .. } => bin_prec(*op),
        ExprKind::UnaryOp { op, .. } => {
            if *op == UnaryOp::Not {
                Prec::Not
            } else {
                Prec::Unary
            }
        }
        ExprKind::BoolOp { op, .. } => match op {
            BoolOpKind::Or => Prec::Or,
            BoolOpKind::And => Prec::And,
        },
        ExprKind::Compare { .. } => Prec::Compare,
        ExprKind::IfExp { .. } | ExprKind::Lambda { .. } | ExprKind::Yield(_) => Prec::Ternary,
        ExprKind::Slice { .. } => Prec::Lowest,
        _ => Prec::Postfix,
    }
}

fn constant_into(c: &Constant, out: &mut String) {
    match c {
        Constant::Str(s) => out.push_str(&quote(s)),
        Constant::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Constant::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e16 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Constant::Bool(true) => out.push_str("True"),
        Constant::Bool(false) => out.push_str("False"),
        Constant::None => out.push_str("None"),
    }
}

/// Quotes a string with single quotes and minimal escaping.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        match c {
            '\'' => out.push_str("\\'"),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('\'');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_module};

    fn round_trip_expr(src: &str) -> String {
        unparse_expr(&parse_expr(src).unwrap())
    }

    fn round_trip_module(src: &str) -> String {
        unparse_module(&parse_module(src).unwrap())
    }

    #[test]
    fn simple_exprs() {
        assert_eq!(round_trip_expr("a + b * c"), "a + b * c");
        assert_eq!(round_trip_expr("(a + b) * c"), "(a + b) * c");
        assert_eq!(round_trip_expr("a.b.c(1, x=2)"), "a.b.c(1, x=2)");
        assert_eq!(round_trip_expr("not a and b"), "not a and b");
        assert_eq!(round_trip_expr("not (a and b)"), "not (a and b)");
        assert_eq!(round_trip_expr("a is not None"), "a is not None");
    }

    #[test]
    fn stable_after_one_round() {
        // Canonical form must be a fixed point: parse∘unparse∘parse∘unparse
        // equals parse∘unparse.
        for src in [
            "x = a.filter(product=product).count() > 0\n",
            "if not lines:\n    wishlist.lines.create(product=product)\n",
            "def f(a, b=1, *args, **kw):\n    return a if b else None\n",
            "for k, v in d.items():\n    print(k, v)\n",
            "class A(B):\n    x = 1\n    def m(self):\n        raise E('x') from err\n",
        ] {
            let once = round_trip_module(src);
            let twice = round_trip_module(&once);
            assert_eq!(once, twice, "not canonical for {src:?}");
        }
    }

    #[test]
    fn elif_renders_compactly() {
        let out = round_trip_module("if a:\n    x\nelif b:\n    y\nelse:\n    z\n");
        assert!(out.contains("elif b:"), "{out}");
    }

    #[test]
    fn string_quoting() {
        assert_eq!(round_trip_expr("'it\\'s'"), "'it\\'s'");
        assert_eq!(round_trip_expr("'line\\n'"), "'line\\n'");
    }

    #[test]
    fn empty_suite_renders_pass() {
        // Synthesized empty function bodies render `pass` (parser never
        // produces empty suites, but builders can).
        use crate::ast::*;
        use crate::span::Span;
        let f = Stmt {
            id: NodeId::DUMMY,
            span: Span::DUMMY,
            kind: StmtKind::FunctionDef(FunctionDef {
                name: "f".into(),
                params: vec![],
                decorators: vec![],
                body: vec![],
            }),
        };
        assert_eq!(unparse_stmt(&f), "def f():\n    pass\n");
    }

    #[test]
    fn dict_splat_renders() {
        assert_eq!(round_trip_expr("{**base, 'a': 1}"), "{**base, 'a': 1}");
    }

    #[test]
    fn comprehension_renders() {
        assert_eq!(round_trip_expr("[x.id for x in rows if x.ok]"), "[x.id for x in rows if x.ok]");
    }

    #[test]
    fn slice_renders() {
        assert_eq!(round_trip_expr("a[1:2]"), "a[1:2]");
        assert_eq!(round_trip_expr("a[:n]"), "a[:n]");
        assert_eq!(round_trip_expr("a[::2]"), "a[::2]");
    }

    #[test]
    fn singleton_tuple_keeps_comma() {
        assert_eq!(round_trip_expr("(1,)"), "(1,)");
    }

    #[test]
    fn power_right_assoc_renders() {
        assert_eq!(round_trip_expr("2 ** 3 ** 2"), "2 ** 3 ** 2");
        assert_eq!(round_trip_expr("(2 ** 3) ** 2"), "(2 ** 3) ** 2");
    }
}
