//! AST traversal utilities.
//!
//! Three complementary mechanisms:
//!
//! * [`Visit`] — a classic visitor trait with pre-order callbacks and
//!   default recursive walking, used by analyses that need full context.
//! * [`walk_exprs`] / [`walk_stmts`] — closure-based pre-order walks for
//!   one-off scans.
//! * [`bfs_exprs`] — breadth-first expression traversal, which is the order
//!   CFinder's pattern matcher uses when searching candidate subtrees
//!   (§3.4.2 of the paper: "performs a breadth-first traversal in T_body").

use std::collections::VecDeque;

use crate::ast::*;

/// Pre-order visitor over statements and expressions.
///
/// Override the hooks you need; call the `walk_*` free functions (or rely on
/// the provided defaults) to recurse.
pub trait Visit {
    /// Called for every statement, before its children.
    fn visit_stmt(&mut self, stmt: &Stmt) {
        walk_stmt(self, stmt);
    }

    /// Called for every expression, before its children.
    fn visit_expr(&mut self, expr: &Expr) {
        walk_expr(self, expr);
    }
}

/// Recurses into the children of `stmt`, invoking the visitor's hooks.
pub fn walk_stmt<V: Visit + ?Sized>(v: &mut V, stmt: &Stmt) {
    match &stmt.kind {
        StmtKind::FunctionDef(f) => {
            for d in &f.decorators {
                v.visit_expr(d);
            }
            for p in &f.params {
                if let Some(d) = &p.default {
                    v.visit_expr(d);
                }
            }
            for s in &f.body {
                v.visit_stmt(s);
            }
        }
        StmtKind::ClassDef(c) => {
            for d in &c.decorators {
                v.visit_expr(d);
            }
            for b in &c.bases {
                v.visit_expr(b);
            }
            for k in &c.keywords {
                v.visit_expr(&k.value);
            }
            for s in &c.body {
                v.visit_stmt(s);
            }
        }
        StmtKind::If { test, body, orelse } => {
            v.visit_expr(test);
            for s in body.iter().chain(orelse) {
                v.visit_stmt(s);
            }
        }
        StmtKind::For { target, iter, body, orelse } => {
            v.visit_expr(target);
            v.visit_expr(iter);
            for s in body.iter().chain(orelse) {
                v.visit_stmt(s);
            }
        }
        StmtKind::While { test, body, orelse } => {
            v.visit_expr(test);
            for s in body.iter().chain(orelse) {
                v.visit_stmt(s);
            }
        }
        StmtKind::Try { body, handlers, orelse, finalbody } => {
            for s in body {
                v.visit_stmt(s);
            }
            for h in handlers {
                if let Some(t) = &h.typ {
                    v.visit_expr(t);
                }
                for s in &h.body {
                    v.visit_stmt(s);
                }
            }
            for s in orelse.iter().chain(finalbody) {
                v.visit_stmt(s);
            }
        }
        StmtKind::With { items, body } => {
            for item in items {
                v.visit_expr(&item.context);
                if let Some(t) = &item.target {
                    v.visit_expr(t);
                }
            }
            for s in body {
                v.visit_stmt(s);
            }
        }
        StmtKind::Assign { targets, value } => {
            for t in targets {
                v.visit_expr(t);
            }
            v.visit_expr(value);
        }
        StmtKind::AugAssign { target, value, .. } => {
            v.visit_expr(target);
            v.visit_expr(value);
        }
        StmtKind::Return { value } => {
            if let Some(e) = value {
                v.visit_expr(e);
            }
        }
        StmtKind::Raise { exc, cause } => {
            if let Some(e) = exc {
                v.visit_expr(e);
            }
            if let Some(e) = cause {
                v.visit_expr(e);
            }
        }
        StmtKind::Expr { value } => v.visit_expr(value),
        StmtKind::Assert { test, msg } => {
            v.visit_expr(test);
            if let Some(m) = msg {
                v.visit_expr(m);
            }
        }
        StmtKind::Delete { targets } => {
            for t in targets {
                v.visit_expr(t);
            }
        }
        StmtKind::Import { .. }
        | StmtKind::ImportFrom { .. }
        | StmtKind::Global { .. }
        | StmtKind::Pass
        | StmtKind::Break
        | StmtKind::Continue => {}
    }
}

/// Recurses into the children of `expr`, invoking the visitor's hooks.
pub fn walk_expr<V: Visit + ?Sized>(v: &mut V, expr: &Expr) {
    for child in expr_children(expr) {
        v.visit_expr(child);
    }
}

/// Returns the direct expression children of `expr` in source order.
pub fn expr_children(expr: &Expr) -> Vec<&Expr> {
    match &expr.kind {
        ExprKind::Name(_) | ExprKind::Constant(_) => vec![],
        ExprKind::Attribute { value, .. } => vec![value],
        ExprKind::Call { func, args, keywords } => {
            let mut out: Vec<&Expr> = vec![func];
            out.extend(args.iter());
            out.extend(keywords.iter().map(|k| &k.value));
            out
        }
        ExprKind::Subscript { value, index } => vec![value, index],
        ExprKind::Tuple(v) | ExprKind::List(v) | ExprKind::Set(v) => v.iter().collect(),
        ExprKind::Dict { keys, values } => keys.iter().chain(values.iter()).collect(),
        ExprKind::BinOp { left, right, .. } => vec![left, right],
        ExprKind::UnaryOp { operand, .. } => vec![operand],
        ExprKind::BoolOp { values, .. } => values.iter().collect(),
        ExprKind::Compare { left, comparators, .. } => {
            let mut out: Vec<&Expr> = vec![left];
            out.extend(comparators.iter());
            out
        }
        ExprKind::IfExp { test, body, orelse } => vec![test, body, orelse],
        ExprKind::Lambda { params, body } => {
            let mut out: Vec<&Expr> = params.iter().filter_map(|p| p.default.as_ref()).collect();
            out.push(body);
            out
        }
        ExprKind::Starred(inner) => vec![inner],
        ExprKind::FString { parts, .. } => parts.iter().collect(),
        ExprKind::Slice { lower, upper, step } => {
            [lower, upper, step].into_iter().flatten().map(|b| b.as_ref()).collect()
        }
        ExprKind::Comprehension { element, value, generators, .. } => {
            let mut out: Vec<&Expr> = vec![element];
            if let Some(val) = value {
                out.push(val);
            }
            for g in generators {
                out.push(&g.target);
                out.push(&g.iter);
                out.extend(g.ifs.iter());
            }
            out
        }
        ExprKind::Yield(inner) => inner.iter().map(|b| b.as_ref()).collect(),
    }
}

/// Iterates `root` and all transitive sub-expressions breadth-first.
pub fn bfs_exprs(root: &Expr) -> impl Iterator<Item = &Expr> {
    let mut queue: VecDeque<&Expr> = VecDeque::new();
    queue.push_back(root);
    std::iter::from_fn(move || {
        let next = queue.pop_front()?;
        queue.extend(expr_children(next));
        Some(next)
    })
}

/// Calls `f` on every expression reachable from `stmts` (pre-order,
/// including expressions nested in sub-statements).
pub fn walk_exprs<'a>(stmts: &'a [Stmt], f: &mut dyn FnMut(&'a Expr)) {
    struct W<'f, 'a> {
        f: &'f mut dyn FnMut(&'a Expr),
    }
    // A manual pre-order walk that lends out `'a` references (the `Visit`
    // trait cannot, because its hooks take fresh lifetimes).
    fn expr<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
        f(e);
        for c in expr_children(e) {
            expr(c, f);
        }
    }
    fn stmts_walk<'a>(body: &'a [Stmt], w: &mut W<'_, 'a>) {
        for s in body {
            stmt(s, w);
        }
    }
    fn stmt<'a>(s: &'a Stmt, w: &mut W<'_, 'a>) {
        match &s.kind {
            StmtKind::FunctionDef(fun) => {
                for d in &fun.decorators {
                    expr(d, w.f);
                }
                for p in &fun.params {
                    if let Some(d) = &p.default {
                        expr(d, w.f);
                    }
                }
                stmts_walk(&fun.body, w);
            }
            StmtKind::ClassDef(c) => {
                for d in &c.decorators {
                    expr(d, w.f);
                }
                for b in &c.bases {
                    expr(b, w.f);
                }
                for k in &c.keywords {
                    expr(&k.value, w.f);
                }
                stmts_walk(&c.body, w);
            }
            StmtKind::If { test, body, orelse } => {
                expr(test, w.f);
                stmts_walk(body, w);
                stmts_walk(orelse, w);
            }
            StmtKind::For { target, iter, body, orelse } => {
                expr(target, w.f);
                expr(iter, w.f);
                stmts_walk(body, w);
                stmts_walk(orelse, w);
            }
            StmtKind::While { test, body, orelse } => {
                expr(test, w.f);
                stmts_walk(body, w);
                stmts_walk(orelse, w);
            }
            StmtKind::Try { body, handlers, orelse, finalbody } => {
                stmts_walk(body, w);
                for h in handlers {
                    if let Some(t) = &h.typ {
                        expr(t, w.f);
                    }
                    stmts_walk(&h.body, w);
                }
                stmts_walk(orelse, w);
                stmts_walk(finalbody, w);
            }
            StmtKind::With { items, body } => {
                for item in items {
                    expr(&item.context, w.f);
                    if let Some(t) = &item.target {
                        expr(t, w.f);
                    }
                }
                stmts_walk(body, w);
            }
            StmtKind::Assign { targets, value } => {
                for t in targets {
                    expr(t, w.f);
                }
                expr(value, w.f);
            }
            StmtKind::AugAssign { target, value, .. } => {
                expr(target, w.f);
                expr(value, w.f);
            }
            StmtKind::Return { value } => {
                if let Some(e) = value {
                    expr(e, w.f);
                }
            }
            StmtKind::Raise { exc, cause } => {
                if let Some(e) = exc {
                    expr(e, w.f);
                }
                if let Some(e) = cause {
                    expr(e, w.f);
                }
            }
            StmtKind::Expr { value } => expr(value, w.f),
            StmtKind::Assert { test, msg } => {
                expr(test, w.f);
                if let Some(m) = msg {
                    expr(m, w.f);
                }
            }
            StmtKind::Delete { targets } => {
                for t in targets {
                    expr(t, w.f);
                }
            }
            StmtKind::Import { .. }
            | StmtKind::ImportFrom { .. }
            | StmtKind::Global { .. }
            | StmtKind::Pass
            | StmtKind::Break
            | StmtKind::Continue => {}
        }
    }
    let mut w = W { f };
    stmts_walk(stmts, &mut w);
}

/// Calls `f` on every statement reachable from `stmts` (pre-order).
pub fn walk_stmts<'a>(stmts: &'a [Stmt], f: &mut dyn FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match &s.kind {
            StmtKind::FunctionDef(fun) => walk_stmts(&fun.body, f),
            StmtKind::ClassDef(c) => walk_stmts(&c.body, f),
            StmtKind::If { body, orelse, .. }
            | StmtKind::For { body, orelse, .. }
            | StmtKind::While { body, orelse, .. } => {
                walk_stmts(body, f);
                walk_stmts(orelse, f);
            }
            StmtKind::Try { body, handlers, orelse, finalbody } => {
                walk_stmts(body, f);
                for h in handlers {
                    walk_stmts(&h.body, f);
                }
                walk_stmts(orelse, f);
                walk_stmts(finalbody, f);
            }
            StmtKind::With { body, .. } => walk_stmts(body, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_module};

    #[test]
    fn bfs_order_is_level_by_level() {
        // (a + b) * (c + d): BFS should see Mul, then both Adds, then leaves.
        let e = parse_expr("(a + b) * (c + d)").unwrap();
        let kinds: Vec<String> = bfs_exprs(&e)
            .map(|x| match &x.kind {
                ExprKind::BinOp { op, .. } => format!("{:?}", op),
                ExprKind::Name(n) => n.clone(),
                _ => "?".into(),
            })
            .collect();
        assert_eq!(kinds, vec!["Mul", "Add", "Add", "a", "b", "c", "d"]);
    }

    #[test]
    fn walk_exprs_sees_nested() {
        let m = parse_module("if a:\n    x = f(b.c)\n").unwrap();
        let mut names = Vec::new();
        walk_exprs(&m.body, &mut |e| {
            if let ExprKind::Name(n) = &e.kind {
                names.push(n.clone());
            }
        });
        assert_eq!(names, vec!["a", "x", "f", "b"]);
    }

    #[test]
    fn walk_stmts_counts_all() {
        let m = parse_module("def f():\n    if a:\n        pass\n    else:\n        return 1\n")
            .unwrap();
        let mut count = 0;
        walk_stmts(&m.body, &mut |_| count += 1);
        // FunctionDef, If, Pass, Return.
        assert_eq!(count, 4);
    }

    #[test]
    fn visitor_default_recursion() {
        struct Counter {
            exprs: usize,
            stmts: usize,
        }
        impl Visit for Counter {
            fn visit_stmt(&mut self, s: &Stmt) {
                self.stmts += 1;
                walk_stmt(self, s);
            }
            fn visit_expr(&mut self, e: &Expr) {
                self.exprs += 1;
                walk_expr(self, e);
            }
        }
        let m = parse_module("x = a + b\n").unwrap();
        let mut c = Counter { exprs: 0, stmts: 0 };
        for s in &m.body {
            c.visit_stmt(s);
        }
        assert_eq!(c.stmts, 1);
        // x, a+b, a, b
        assert_eq!(c.exprs, 4);
    }

    #[test]
    fn expr_children_comprehension() {
        let e = parse_expr("[x for x in rows if x.ok]").unwrap();
        // element, target, iter, if
        assert_eq!(expr_children(&e).len(), 4);
    }

    #[test]
    fn walk_exprs_covers_try_and_with() {
        let m = parse_module(
            "try:\n    a\nexcept E as x:\n    b\nfinally:\n    c\nwith ctx() as t:\n    d\n",
        )
        .unwrap();
        let mut names = Vec::new();
        walk_exprs(&m.body, &mut |e| {
            if let ExprKind::Name(n) = &e.kind {
                names.push(n.clone());
            }
        });
        for expected in ["a", "E", "b", "c", "ctx", "t", "d"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected} in {names:?}");
        }
    }
}
