//! Property tests for the lexer/parser/unparser pipeline.
//!
//! Two families:
//! 1. Robustness — the lexer and parser never panic on arbitrary input and
//!    lexer structure tokens stay balanced.
//! 2. Round-trip — for ASTs generated from a grammar-directed strategy, the
//!    canonical unparse is a fixed point: `unparse(parse(unparse(ast)))
//!    == unparse(ast)`.

use cfinder_pyast::lexer::lex;
use cfinder_pyast::parser::parse_module;
use cfinder_pyast::token::TokenKind;
use cfinder_pyast::unparse::unparse_module;
use proptest::prelude::*;

// --- robustness ------------------------------------------------------------

proptest! {
    /// The lexer returns Ok or Err but never panics, for any string.
    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = lex(&input);
    }

    /// INDENT and DEDENT tokens are always balanced when lexing succeeds.
    #[test]
    fn indents_balance(input in "[a-z \n:()#]{0,200}") {
        if let Ok(tokens) = lex(&input) {
            let mut depth: i64 = 0;
            for t in &tokens {
                match t.kind {
                    TokenKind::Indent => depth += 1,
                    TokenKind::Dedent => depth -= 1,
                    _ => {}
                }
                prop_assert!(depth >= 0, "dedent below zero");
            }
            prop_assert_eq!(depth, 0, "unbalanced at eof");
        }
    }

    /// Exactly one EOF token, and it is last.
    #[test]
    fn eof_is_last_and_unique(input in "[ -~\n]{0,120}") {
        if let Ok(tokens) = lex(&input) {
            let eofs = tokens.iter().filter(|t| t.kind == TokenKind::Eof).count();
            prop_assert_eq!(eofs, 1);
            prop_assert_eq!(&tokens.last().unwrap().kind, &TokenKind::Eof);
        }
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_module(&input);
    }

    /// Token spans are monotonically non-decreasing.
    #[test]
    fn spans_monotone(input in "[ -~\n]{0,150}") {
        if let Ok(tokens) = lex(&input) {
            let mut last = 0u32;
            for t in &tokens {
                prop_assert!(t.span.start.offset >= last || t.span.start.offset == t.span.end.offset,
                    "span went backwards");
                last = last.max(t.span.start.offset);
            }
        }
    }
}

// --- grammar-directed round trip --------------------------------------------

/// Generates small well-formed expressions as source strings.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| s),
        (0i64..10_000).prop_map(|n| n.to_string()),
        Just("None".to_string()),
        Just("True".to_string()),
        "[a-z]{0,8}".prop_map(|s| format!("'{s}'")),
    ];
    // Operands are parenthesized so free composition cannot build invalid
    // precedence mixes like `a == not b`.
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}) + ({b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}) == ({b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}) and ({b})")),
            inner.clone().prop_map(|a| format!("not ({a})")),
            (inner.clone(), "[a-z][a-z0-9_]{0,6}").prop_map(|(a, attr)| format!("({a}).{attr}")),
            (inner.clone(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| format!("({f})({})", args.join(", "))),
            proptest::collection::vec(inner.clone(), 0..3)
                .prop_map(|elems| format!("[{}]", elems.join(", "))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| format!("({a}) if ({b}) else ({c})")),
        ]
    })
}

/// Generates small well-formed statements/blocks as source strings.
fn stmt_strategy() -> impl Strategy<Value = String> {
    let e = expr_strategy().boxed();
    prop_oneof![
        (Just(()), e.clone()).prop_map(|(_, v)| format!("x = {v}\n")),
        e.clone().prop_map(|v| format!("return {v}\n")),
        e.clone().prop_map(|v| format!("{v}\n")),
        (e.clone(), e.clone()).prop_map(|(c, v)| format!("if {c}:\n    y = {v}\n")),
        (e.clone(), e.clone())
            .prop_map(|(c, v)| format!("if {c}:\n    y = {v}\nelse:\n    pass\n")),
        (e.clone(), e.clone()).prop_map(|(it, v)| format!("for i in {it}:\n    z = {v}\n")),
        e.clone().prop_map(|v| format!("while {v}:\n    break\n")),
        e.clone().prop_map(|v| format!("raise Error({v})\n")),
        (e.clone(), e).prop_map(|(a, b)| format!("def f(p):\n    q = {a}\n    return {b}\n")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Canonical unparse is a fixed point over generated programs.
    #[test]
    fn unparse_is_canonical(stmts in proptest::collection::vec(stmt_strategy(), 1..5)) {
        let src: String = stmts.concat();
        let m1 = parse_module(&src).expect("generated source must parse");
        let once = unparse_module(&m1);
        let m2 = parse_module(&once).expect("unparsed source must reparse");
        let twice = unparse_module(&m2);
        prop_assert_eq!(once, twice);
    }

    /// Parsing preserves statement count for flat generated modules.
    #[test]
    fn statement_count_preserved(stmts in proptest::collection::vec(stmt_strategy(), 1..5)) {
        let src: String = stmts.concat();
        let m = parse_module(&src).expect("generated source must parse");
        prop_assert_eq!(m.body.len(), stmts.len());
    }
}
