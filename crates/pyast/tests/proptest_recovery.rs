//! Property tests for the error-recovering lexer/parser entry points.
//!
//! The recovering pipeline is the analyzer's fault-tolerance boundary, so
//! its contract is stronger than the strict one's: it must *never* fail —
//! no panic, no `Err` — and everything it returns (tokens, statements,
//! recorded errors) must carry spans inside the input it was given.

use cfinder_pyast::lexer::{lex, lex_recovering};
use cfinder_pyast::parser::{parse_module, parse_module_recovering};
use cfinder_pyast::token::TokenKind;
use cfinder_pyast::visit::Visit;
use cfinder_pyast::{Expr, Span, Stmt};
use proptest::prelude::*;

/// Collects every span in a module (statements and expressions).
struct SpanCollector(Vec<Span>);

impl Visit for SpanCollector {
    fn visit_stmt(&mut self, stmt: &Stmt) {
        self.0.push(stmt.span);
        cfinder_pyast::visit::walk_stmt(self, stmt);
    }
    fn visit_expr(&mut self, expr: &Expr) {
        self.0.push(expr.span);
        cfinder_pyast::visit::walk_expr(self, expr);
    }
}

fn assert_spans_in_bounds(input: &str, out: &cfinder_pyast::Recovered) {
    let len = input.len() as u32;
    for err in &out.errors {
        assert!(err.span.start.offset <= err.span.end.offset, "inverted error span");
        assert!(err.span.end.offset <= len, "error span {:?} outside input len {len}", err.span);
    }
    let mut spans = SpanCollector(Vec::new());
    for stmt in &out.module.body {
        spans.visit_stmt(stmt);
    }
    for span in spans.0 {
        assert!(span.end.offset <= len, "node span {span:?} outside input len {len}");
    }
}

proptest! {
    /// The recovering lexer never panics and always ends with exactly one
    /// EOF token, with balanced INDENT/DEDENT, for any input.
    #[test]
    fn recovering_lexer_total(input in ".{0,200}") {
        let out = lex_recovering(&input);
        let eofs = out.tokens.iter().filter(|t| t.kind == TokenKind::Eof).count();
        prop_assert_eq!(eofs, 1);
        prop_assert_eq!(&out.tokens.last().unwrap().kind, &TokenKind::Eof);
        let mut depth: i64 = 0;
        for t in &out.tokens {
            match t.kind {
                TokenKind::Indent => depth += 1,
                TokenKind::Dedent => depth -= 1,
                _ => {}
            }
            prop_assert!(depth >= 0, "dedent below zero");
        }
        prop_assert_eq!(depth, 0, "unbalanced at eof");
    }

    /// The recovering parser never panics and never returns a span —
    /// error or AST node — outside the input, for any input.
    #[test]
    fn recovering_parser_total_and_spans_in_bounds(input in ".{0,200}") {
        let out = parse_module_recovering(&input);
        assert_spans_in_bounds(&input, &out);
    }

    /// Same, over structured Python-looking fragments that exercise the
    /// indentation machinery and resynchronization much harder than
    /// uniform noise does.
    #[test]
    fn recovering_parser_total_on_pythonish_soup(
        input in "[a-z() :=,.'\\[\\]{}#!$\n\t]{0,300}"
    ) {
        let out = parse_module_recovering(&input);
        assert_spans_in_bounds(&input, &out);
    }

    /// On input the strict pipeline accepts, recovery reports no errors
    /// and produces the identical module.
    #[test]
    fn recovering_agrees_with_strict_on_valid_input(input in "[a-z =:\n()0-9]{0,120}") {
        if lex(&input).is_ok() {
            if let Ok(strict) = parse_module(&input) {
                let out = parse_module_recovering(&input);
                prop_assert!(out.errors.is_empty(), "spurious errors: {:?}", out.errors);
                prop_assert_eq!(strict, out.module);
            }
        }
    }

    /// Recovery monotonicity at the file level: prepending a broken
    /// statement line never costs the valid statements that follow it.
    #[test]
    fn recovering_keeps_statements_after_injected_garbage(n in 1usize..6) {
        let valid: String = (0..n).map(|i| format!("v{i} = {i}\n")).collect();
        let src = format!("bad = = =\n{valid}");
        let out = parse_module_recovering(&src);
        prop_assert!(!out.errors.is_empty());
        prop_assert_eq!(out.module.body.len(), n);
    }
}
