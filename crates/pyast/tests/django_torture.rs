//! Parser torture tests on realistic Django source shapes: decorators,
//! nested classes, long call chains, comprehensions, f-strings, multi-line
//! expressions, and the odd corners real codebases contain.

use cfinder_pyast::ast::{ExprKind, StmtKind};
use cfinder_pyast::parse_module;
use cfinder_pyast::unparse::unparse_module;
use cfinder_pyast::visit::{walk_exprs, walk_stmts};

const DJANGO_VIEWS: &str = r#"
import logging
from collections import defaultdict
from django.db import models, transaction
from django.shortcuts import get_object_or_404, render

logger = logging.getLogger(__name__)

PAGE_SIZE = 25
STATUSES = {'new': 0, 'paid': 1, 'shipped': 2}


class OrderQuerySet(models.QuerySet):
    def paid(self):
        return self.filter(status='paid')

    def for_user(self, user):
        return self.filter(user=user).exclude(status='cancelled')


@transaction.atomic
def place_order(request, basket_id):
    basket = get_object_or_404(Basket, pk=basket_id)
    if not basket.lines.exists():
        raise ValueError('empty basket')
    totals = [line.price * line.quantity for line in basket.lines.all()]
    order = Order.objects.create(
        user=request.user,
        total=sum(totals),
        reference=f'ORD-{basket.id:08d}',
    )
    for line in basket.lines.all():
        order.lines.create(
            product=line.product,
            quantity=line.quantity,
            price=line.price,
        )
    logger.info('order %s placed with %d lines', order.reference, len(totals))
    return order


def order_summary(request):
    counts = defaultdict(int)
    for order in Order.objects.for_user(request.user):
        counts[order.status] += 1
    rows = sorted(
        (
            (status, count)
            for status, count in counts.items()
            if count > 0
        ),
        key=lambda pair: STATUSES.get(pair[0], 99),
    )
    return render(request, 'summary.html', {'rows': rows, 'total': sum(c for _, c in rows)})


class ExportMixin:
    headers = ['reference', 'total']

    def rows(self):
        try:
            queryset = self.get_queryset()
        except AttributeError:
            queryset = Order.objects.none()
        finally:
            logger.debug('export started')
        for order in queryset:
            yield [order.reference, str(order.total)]


def retry(times=3):
    def decorator(fn):
        def wrapper(*args, **kwargs):
            last = None
            for attempt in range(times):
                try:
                    return fn(*args, **kwargs)
                except OSError as exc:
                    last = exc
                    continue
            raise last
        return wrapper
    return decorator


@retry(times=5)
def sync_inventory(codes):
    seen = {c.strip().upper() for c in codes if c}
    missing = seen - {p.sku for p in Product.objects.all()}
    if missing:
        raise RuntimeError(f'unknown skus: {", ".join(sorted(missing))}')
    return {
        p.sku: (p.stock_level or 0) + 1
        for p in Product.objects.filter(sku__in=seen)
    }
"#;

#[test]
fn parses_realistic_django_module() {
    let module = parse_module(DJANGO_VIEWS).expect("realistic Django code parses");
    // Imports, constants, queryset class, three functions, mixin, decorator
    // factory, decorated function.
    assert!(module.body.len() >= 10, "{} top-level statements", module.body.len());
}

#[test]
fn statement_and_expression_inventory() {
    let module = parse_module(DJANGO_VIEWS).unwrap();
    let mut stmt_count = 0;
    walk_stmts(&module.body, &mut |_| stmt_count += 1);
    assert!(stmt_count > 40, "{stmt_count} statements");
    let mut call_count = 0;
    let mut fstrings = 0;
    let mut comprehensions = 0;
    walk_exprs(&module.body, &mut |e| match &e.kind {
        ExprKind::Call { .. } => call_count += 1,
        ExprKind::FString { .. } => fstrings += 1,
        ExprKind::Comprehension { .. } => comprehensions += 1,
        _ => {}
    });
    assert!(call_count > 30, "{call_count} calls");
    assert_eq!(fstrings, 2);
    assert!(comprehensions >= 4, "{comprehensions} comprehensions");
}

#[test]
fn unparse_of_torture_module_is_canonical() {
    let module = parse_module(DJANGO_VIEWS).unwrap();
    let once = unparse_module(&module);
    let reparsed = parse_module(&once).expect("canonical output reparses");
    let twice = unparse_module(&reparsed);
    assert_eq!(once, twice);
}

#[test]
fn nested_decorator_factories_resolve() {
    let module = parse_module(DJANGO_VIEWS).unwrap();
    let decorated = module.body.iter().find_map(|s| match &s.kind {
        StmtKind::FunctionDef(f) if f.name == "sync_inventory" => Some(f),
        _ => None,
    });
    let f = decorated.expect("sync_inventory exists");
    assert_eq!(f.decorators.len(), 1);
    assert!(matches!(f.decorators[0].kind, ExprKind::Call { .. }));
}

#[test]
fn multiline_call_arguments_keep_structure() {
    let module = parse_module(DJANGO_VIEWS).unwrap();
    let mut create_kwargs = None;
    walk_exprs(&module.body, &mut |e| {
        if let ExprKind::Call { func, keywords, .. } = &e.kind {
            if let Some((_, chain)) = func.dotted_chain() {
                if chain.last() == Some(&"create") && keywords.len() == 3 {
                    create_kwargs = Some(keywords.len());
                }
            }
        }
    });
    assert_eq!(create_kwargs, Some(3), "Order.objects.create(...) kwargs found");
}

#[test]
fn spans_cover_the_source_monotonically() {
    let module = parse_module(DJANGO_VIEWS).unwrap();
    let mut last_start = 0;
    for stmt in &module.body {
        assert!(stmt.span.start.offset as usize >= last_start, "statements in order");
        last_start = stmt.span.start.offset as usize;
        assert!((stmt.span.end.offset as usize) <= DJANGO_VIEWS.len());
    }
}

#[test]
fn weird_but_valid_corners() {
    for src in [
        // Trailing commas everywhere.
        "f(a, b,)\nx = [1, 2,]\ny = {1: 2,}\n",
        // Chained comparisons with mixed operators.
        "ok = 0 <= x < len(items) != 5\n",
        // Lambda default referencing another parameter's shadow.
        "f = lambda x, key=len: key(x)\n",
        // Nested ternaries.
        "v = a if p else b if q else c\n",
        // Deep attribute chain with calls interleaved.
        "x = a.b().c.d(e).f.g\n",
        // Semicolons and inline suites.
        "a = 1; b = 2\nif a: a += 1; b -= 1\n",
        // Unary chains and power.
        "y = --x ** -2\n",
        // Starred assignment targets in calls.
        "g(*args, **kwargs)\n",
        // Global + del + assert with message.
        "def f():\n    global state\n    del state['k']\n    assert state, 'empty'\n",
        // While/else and for/else.
        "while p():\n    break\nelse:\n    q()\nfor i in r:\n    continue\nelse:\n    s()\n",
    ] {
        let module = parse_module(src).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        let once = unparse_module(&module);
        let reparsed = parse_module(&once).unwrap_or_else(|e| panic!("reparse {once:?}: {e}"));
        assert_eq!(once, unparse_module(&reparsed), "canonical for {src:?}");
    }
}
