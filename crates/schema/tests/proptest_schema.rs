//! Property tests for constraint-set algebra and migration replay.

use cfinder_schema::{
    Column, ColumnType, Constraint, ConstraintSet, Migration, MigrationHistory, MigrationOp,
    Schema, Table,
};
use proptest::prelude::*;

fn constraint_strategy() -> impl Strategy<Value = Constraint> {
    let table = prop_oneof![Just("alpha"), Just("beta"), Just("gamma")];
    let col = prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")];
    prop_oneof![
        (table.clone(), col.clone()).prop_map(|(t, c)| Constraint::not_null(t, c)),
        (table.clone(), proptest::collection::btree_set(col.clone(), 1..3))
            .prop_map(|(t, cols)| Constraint::unique(t, cols)),
        (table.clone(), col.clone(), prop_oneof![Just("alpha"), Just("beta")])
            .prop_map(|(t, c, r)| Constraint::foreign_key(t, c, r, "id")),
    ]
}

fn set_strategy() -> impl Strategy<Value = ConstraintSet> {
    proptest::collection::vec(constraint_strategy(), 0..12).prop_map(|v| v.into_iter().collect())
}

proptest! {
    /// Difference and intersection partition a set relative to another.
    #[test]
    fn difference_intersection_partition(a in set_strategy(), b in set_strategy()) {
        let diff = a.difference(&b);
        let inter = a.intersection(&b);
        prop_assert_eq!(diff.len() + inter.len(), a.len());
        for c in diff.iter() {
            prop_assert!(!b.contains(c));
            prop_assert!(a.contains(c));
        }
        for c in inter.iter() {
            prop_assert!(b.contains(c));
            prop_assert!(a.contains(c));
        }
    }

    /// Union is commutative and bounded by the sum of sizes.
    #[test]
    fn union_laws(a in set_strategy(), b in set_strategy()) {
        let ab = a.union(&b);
        let ba = b.union(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.len() <= a.len() + b.len());
        prop_assert!(ab.len() >= a.len().max(b.len()));
        // Idempotent.
        prop_assert_eq!(a.union(&a), a);
    }

    /// Unique-constraint normalization: any column order and duplication
    /// yields the same constraint.
    #[test]
    fn unique_normalization(mut cols in proptest::collection::vec("[a-d]", 1..5)) {
        let original = Constraint::unique("t", cols.clone());
        cols.reverse();
        cols.push(cols[0].clone()); // duplicate one
        let shuffled = Constraint::unique("t", cols);
        prop_assert_eq!(original, shuffled);
    }

    /// Replay-through is monotone: each prefix's constraint set is a
    /// subset of any longer prefix's (when no constraints are dropped).
    #[test]
    fn replay_prefix_monotone(add_count in 1usize..10) {
        let mut migrations = vec![Migration {
            index: 0,
            month: 0,
            ops: (0..add_count)
                .map(|i| {
                    MigrationOp::CreateTable(
                        Table::new(format!("t{i}"))
                            .with_column(Column::new("x", ColumnType::Integer)),
                    )
                })
                .collect(),
        }];
        for i in 0..add_count {
            migrations.push(Migration {
                index: (i + 1) as u32,
                month: (i + 1) as u32,
                ops: vec![MigrationOp::AddConstraint {
                    constraint: Constraint::not_null(format!("t{i}"), "x"),
                    meta: cfinder_schema::ConstraintMeta::with_creation(),
                }],
            });
        }
        let history = MigrationHistory::new("app", migrations);
        let mut previous: Option<Schema> = None;
        for k in 0..=add_count {
            let schema = history.replay_through(k as u32).unwrap();
            if let Some(prev) = &previous {
                for c in prev.constraints().iter() {
                    prop_assert!(schema.constraints().contains(c));
                }
                prop_assert!(schema.constraints().len() >= prev.constraints().len());
            }
            previous = Some(schema);
        }
    }

    /// JSON round-trip for arbitrary constraint sets embedded in a schema.
    #[test]
    fn schema_json_round_trip(constraints in set_strategy()) {
        let mut schema = Schema::new();
        for t in ["alpha", "beta", "gamma"] {
            schema.add_table(
                Table::new(t)
                    .with_column(Column::new("a", ColumnType::Integer))
                    .with_column(Column::new("b", ColumnType::Integer))
                    .with_column(Column::new("c", ColumnType::Integer))
                    .with_column(Column::new("d", ColumnType::Integer)),
            );
        }
        for c in constraints.iter() {
            let _ = schema.add_constraint(c.clone());
        }
        let back = Schema::from_json(&schema.to_json()).unwrap();
        prop_assert_eq!(back, schema);
    }
}
