//! Database integrity constraints.
//!
//! The three constraint types the paper studies — not-null, unique
//! (including composite and partial/conditional unique, §3.5.2), and
//! foreign key — extended with the next constraint class the paper's own
//! motivating examples call for: CHECK predicates and column DEFAULTs.
//! A normalized [`ConstraintSet`] supports the diff step of §3.5.3
//! ("filter the existing constraints").

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::predicate::Predicate;
use crate::types::Literal;

/// The constraint categories: the paper's three plus CHECK/DEFAULT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ConstraintType {
    /// `NOT NULL`
    NotNull,
    /// `UNIQUE` (single, composite, or partial).
    Unique,
    /// `FOREIGN KEY … REFERENCES …`
    ForeignKey,
    /// `CHECK (predicate)`
    Check,
    /// `DEFAULT value`
    Default,
}

impl ConstraintType {
    /// All constraint types, in the paper's presentation order (the
    /// paper's three first, then the CHECK/DEFAULT extension).
    pub const ALL: [ConstraintType; 5] = [
        ConstraintType::Unique,
        ConstraintType::NotNull,
        ConstraintType::ForeignKey,
        ConstraintType::Check,
        ConstraintType::Default,
    ];

    /// Short label used in tables ("Unique", "Not null", "FK").
    pub fn label(&self) -> &'static str {
        match self {
            ConstraintType::NotNull => "Not null",
            ConstraintType::Unique => "Unique",
            ConstraintType::ForeignKey => "Foreign key",
            ConstraintType::Check => "Check",
            ConstraintType::Default => "Default",
        }
    }
}

impl fmt::Display for ConstraintType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One fixed-value filter of a partial (conditional) unique constraint,
/// e.g. `valid = TRUE` in `UNIQUE (code) WHERE valid = TRUE`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Condition {
    /// Filtered column.
    pub column: String,
    /// Required value.
    pub value: Literal,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.column, self.value)
    }
}

/// Why a constraint could not be constructed. Typed so SQL ingestion can
/// downgrade a hostile definition to an `Unsupported` warning instead of
/// panicking mid-parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// A unique constraint over zero columns.
    EmptyColumns,
    /// Two partial-unique conditions require different values of the same
    /// column, so the `WHERE` clause can never hold and the index never
    /// applies.
    ContradictoryConditions {
        /// The column with conflicting required values.
        column: String,
    },
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::EmptyColumns => {
                f.write_str("unique constraint requires at least one column")
            }
            ConstraintError::ContradictoryConditions { column } => write!(
                f,
                "contradictory partial-unique conditions on column `{column}` (the WHERE clause can never hold)"
            ),
        }
    }
}

impl std::error::Error for ConstraintError {}

/// Longest generated identifier the emitters will produce, in bytes.
///
/// PostgreSQL's `NAMEDATALEN - 1` is 63; MySQL allows 64 but measures in
/// characters, so the stricter byte bound is safe for both (and SQLite
/// does not care).
pub const MAX_IDENTIFIER_BYTES: usize = 63;

/// Clamps a generated identifier to [`MAX_IDENTIFIER_BYTES`].
///
/// Names already within the limit are returned byte-identical. Longer
/// names keep a 50-byte prefix (cut at a character boundary) and append
/// `_` plus 12 hex digits of an FNV-1a hash of the *full* name, so two
/// distinct long names can never clamp to the same identifier the way
/// PostgreSQL's silent 63-byte truncation collides them.
pub fn clamp_identifier(name: &str) -> String {
    if name.len() <= MAX_IDENTIFIER_BYTES {
        return name.to_string();
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut end = MAX_IDENTIFIER_BYTES - 13;
    while !name.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}_{:012x}", &name[..end], hash & 0xffff_ffff_ffff)
}

/// A database constraint in normalized form.
///
/// Normalization rules (enforced by the constructors):
/// * unique columns are sorted, deduplicated, and non-empty;
/// * partial-unique conditions are sorted by column;
/// * table/column names are kept verbatim (case-sensitive, like Django).
///
/// Equality and hashing operate on the normalized form, so a
/// [`ConstraintSet`] treats `UNIQUE(a, b)` and `UNIQUE(b, a)` as the same
/// constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Constraint {
    /// `table.column NOT NULL`
    NotNull {
        /// Constrained table.
        table: String,
        /// Constrained column.
        column: String,
    },
    /// `UNIQUE (columns) [WHERE conditions]` on `table`.
    Unique {
        /// Constrained table.
        table: String,
        /// Sorted, deduplicated column list (non-empty).
        columns: Vec<String>,
        /// Sorted fixed-value conditions; empty for a full unique.
        conditions: Vec<Condition>,
    },
    /// `table.column REFERENCES ref_table(ref_column)`
    ForeignKey {
        /// Dependent (referencing) table.
        table: String,
        /// Referencing column.
        column: String,
        /// Referenced table.
        ref_table: String,
        /// Referenced column (usually the primary key).
        ref_column: String,
    },
    /// `CHECK (predicate)` on `table`.
    Check {
        /// Constrained table.
        table: String,
        /// Normalized single-column predicate.
        predicate: Predicate,
    },
    /// `table.column DEFAULT value`.
    Default {
        /// Constrained table.
        table: String,
        /// Defaulted column.
        column: String,
        /// The default value (never `NULL` — that is the absence of a
        /// default, not a constraint).
        value: Literal,
    },
}

impl Constraint {
    /// Creates a not-null constraint.
    pub fn not_null(table: impl Into<String>, column: impl Into<String>) -> Self {
        Constraint::NotNull { table: table.into(), column: column.into() }
    }

    /// Creates a (possibly composite) unique constraint; columns are
    /// normalized (sorted + deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty — a unique constraint over zero columns
    /// is meaningless and always a caller bug.
    pub fn unique<I, S>(table: impl Into<String>, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::partial_unique(table, columns, Vec::new())
    }

    /// Creates a partial (conditional) unique constraint.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or the conditions are contradictory;
    /// see [`Constraint::try_partial_unique`] for the fallible form.
    pub fn partial_unique<I, S>(
        table: impl Into<String>,
        columns: I,
        conditions: Vec<Condition>,
    ) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::try_partial_unique(table, columns, conditions).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a partial (conditional) unique constraint, rejecting
    /// degenerate inputs with a typed error instead of panicking.
    ///
    /// Columns are normalized (sorted + deduplicated) and must be
    /// non-empty. Conditions are normalized too, and a pair requiring
    /// different values of the same column (`active = TRUE AND active =
    /// FALSE`) is rejected as [`ConstraintError::ContradictoryConditions`]
    /// — such an index can never apply, so minidb would silently enforce
    /// nothing.
    pub fn try_partial_unique<I, S>(
        table: impl Into<String>,
        columns: I,
        conditions: Vec<Condition>,
    ) -> Result<Self, ConstraintError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let set: BTreeSet<String> = columns.into_iter().map(Into::into).collect();
        if set.is_empty() {
            return Err(ConstraintError::EmptyColumns);
        }
        let mut conditions = conditions;
        conditions.sort();
        conditions.dedup();
        for pair in conditions.windows(2) {
            // Sorted + deduplicated: two adjacent entries with the same
            // column necessarily require different values.
            if pair[0].column == pair[1].column {
                return Err(ConstraintError::ContradictoryConditions {
                    column: pair[0].column.clone(),
                });
            }
        }
        Ok(Constraint::Unique {
            table: table.into(),
            columns: set.into_iter().collect(),
            conditions,
        })
    }

    /// Creates a foreign-key constraint.
    pub fn foreign_key(
        table: impl Into<String>,
        column: impl Into<String>,
        ref_table: impl Into<String>,
        ref_column: impl Into<String>,
    ) -> Self {
        Constraint::ForeignKey {
            table: table.into(),
            column: column.into(),
            ref_table: ref_table.into(),
            ref_column: ref_column.into(),
        }
    }

    /// Creates a CHECK constraint over a normalized predicate.
    pub fn check(table: impl Into<String>, predicate: Predicate) -> Self {
        Constraint::Check { table: table.into(), predicate }
    }

    /// Creates a column-default constraint.
    ///
    /// # Panics
    ///
    /// Panics if `value` is `NULL` — `DEFAULT NULL` is the absence of a
    /// default, not a constraint, and always a caller bug.
    pub fn default_value(
        table: impl Into<String>,
        column: impl Into<String>,
        value: Literal,
    ) -> Self {
        assert!(!value.is_null(), "DEFAULT NULL is not a constraint");
        Constraint::Default { table: table.into(), column: column.into(), value }
    }

    /// The constraint's category.
    pub fn constraint_type(&self) -> ConstraintType {
        match self {
            Constraint::NotNull { .. } => ConstraintType::NotNull,
            Constraint::Unique { .. } => ConstraintType::Unique,
            Constraint::ForeignKey { .. } => ConstraintType::ForeignKey,
            Constraint::Check { .. } => ConstraintType::Check,
            Constraint::Default { .. } => ConstraintType::Default,
        }
    }

    /// The constrained (dependent) table.
    pub fn table(&self) -> &str {
        match self {
            Constraint::NotNull { table, .. }
            | Constraint::Unique { table, .. }
            | Constraint::ForeignKey { table, .. }
            | Constraint::Check { table, .. }
            | Constraint::Default { table, .. } => table,
        }
    }

    /// The constrained columns (one for not-null/FK/check/default, one or
    /// more for unique).
    pub fn columns(&self) -> Vec<&str> {
        match self {
            Constraint::NotNull { column, .. }
            | Constraint::ForeignKey { column, .. }
            | Constraint::Default { column, .. } => {
                vec![column.as_str()]
            }
            Constraint::Unique { columns, .. } => columns.iter().map(String::as_str).collect(),
            Constraint::Check { predicate, .. } => vec![predicate.column()],
        }
    }

    /// True for a partial (conditional) unique constraint.
    pub fn is_partial_unique(&self) -> bool {
        matches!(self, Constraint::Unique { conditions, .. } if !conditions.is_empty())
    }

    /// Renders the `ALTER TABLE` DDL that adds this constraint — what a
    /// developer would paste into a migration after confirming a report.
    ///
    /// Identifiers are always double-quoted (PostgreSQL style): the
    /// paper's own running example constrains a table named `order`, a
    /// reserved word in every major dialect, so unquoted emission produced
    /// invalid SQL. This is the canonical PostgreSQL form; `cfinder-sql`'s
    /// `constraint_ddl` generalizes it to MySQL and SQLite and a drift
    /// test there pins the two implementations together.
    pub fn ddl(&self) -> String {
        fn q(ident: &str) -> String {
            format!("\"{}\"", ident.replace('"', "\"\""))
        }
        match self {
            Constraint::NotNull { table, column } => {
                format!("ALTER TABLE {} ALTER COLUMN {} SET NOT NULL;", q(table), q(column))
            }
            Constraint::Unique { table, columns, conditions } => {
                let cols: Vec<String> = columns.iter().map(|c| q(c)).collect();
                let cols = cols.join(", ");
                let name = q(&clamp_identifier(&format!("uq_{table}_{}", columns.join("_"))));
                if conditions.is_empty() {
                    format!("ALTER TABLE {} ADD CONSTRAINT {name} UNIQUE ({cols});", q(table))
                } else {
                    // Partial uniques need a partial unique index (PostgreSQL).
                    let conds: Vec<String> = conditions
                        .iter()
                        .map(|c| format!("{} = {}", q(&c.column), c.value))
                        .collect();
                    format!(
                        "CREATE UNIQUE INDEX {name} ON {} ({cols}) WHERE {};",
                        q(table),
                        conds.join(" AND ")
                    )
                }
            }
            Constraint::ForeignKey { table, column, ref_table, ref_column } => format!(
                "ALTER TABLE {} ADD CONSTRAINT {} FOREIGN KEY ({}) REFERENCES {}({});",
                q(table),
                q(&clamp_identifier(&format!("fk_{table}_{column}"))),
                q(column),
                q(ref_table),
                q(ref_column)
            ),
            Constraint::Check { table, predicate } => format!(
                "ALTER TABLE {} ADD CONSTRAINT {} CHECK ({});",
                q(table),
                q(&clamp_identifier(&format!("ck_{table}_{}", predicate.column()))),
                predicate.render(&q)
            ),
            Constraint::Default { table, column, value } => format!(
                "ALTER TABLE {} ALTER COLUMN {} SET DEFAULT {};",
                q(table),
                q(column),
                value.sql()
            ),
        }
    }

    /// Renders the constraint the way the paper writes them, e.g.
    /// `WishlistLine Unique (product, wishlist)` or
    /// `Discount FK (voucher_id) ref Voucher(id)`.
    pub fn describe(&self) -> String {
        match self {
            Constraint::NotNull { table, column } => {
                format!("{table} Not NULL ({column})")
            }
            Constraint::Unique { table, columns, conditions } => {
                let cols = columns.join(", ");
                if conditions.is_empty() {
                    format!("{table} Unique ({cols})")
                } else {
                    let conds: Vec<String> = conditions.iter().map(|c| c.to_string()).collect();
                    format!("{table} Unique ({cols}) where {}", conds.join(" and "))
                }
            }
            Constraint::ForeignKey { table, column, ref_table, ref_column } => {
                format!("{table} FK ({column}) ref {ref_table}({ref_column})")
            }
            Constraint::Check { table, predicate } => {
                format!("{table} Check ({})", predicate.describe())
            }
            Constraint::Default { table, column, value } => {
                format!("{table} Default ({column} = {})", value.sql())
            }
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A normalized, order-independent set of constraints.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintSet {
    items: BTreeSet<Constraint>,
}

impl ConstraintSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a constraint; returns true if it was not already present.
    pub fn insert(&mut self, c: Constraint) -> bool {
        self.items.insert(c)
    }

    /// Removes a constraint; returns true if it was present.
    pub fn remove(&mut self, c: &Constraint) -> bool {
        self.items.remove(c)
    }

    /// Membership test on the normalized form.
    pub fn contains(&self, c: &Constraint) -> bool {
        self.items.contains(c)
    }

    /// Returns true if a unique constraint with exactly these columns exists
    /// on `table`, regardless of any partial condition.
    ///
    /// Deliberately condition-insensitive, for recall-style queries: an
    /// inferred `UNIQUE(email)` counts as covered by an existing
    /// `UNIQUE(email) WHERE active = TRUE` even though the conditions
    /// differ. Use [`ConstraintSet::contains_unique_exact`] when the
    /// conditions must match too.
    pub fn contains_unique_columns(&self, table: &str, columns: &[&str]) -> bool {
        let want: BTreeSet<&str> = columns.iter().copied().collect();
        self.items.iter().any(|c| match c {
            Constraint::Unique { table: t, columns: cols, .. } => {
                t == table && cols.iter().map(String::as_str).collect::<BTreeSet<_>>() == want
            }
            _ => false,
        })
    }

    /// Condition-sensitive variant of
    /// [`ConstraintSet::contains_unique_columns`]: true only when a unique
    /// constraint with exactly these columns *and* exactly these conditions
    /// (normalized — order and duplicates do not matter) exists on `table`.
    pub fn contains_unique_exact(
        &self,
        table: &str,
        columns: &[&str],
        conditions: &[Condition],
    ) -> bool {
        let want_cols: BTreeSet<&str> = columns.iter().copied().collect();
        let mut want_conds = conditions.to_vec();
        want_conds.sort();
        want_conds.dedup();
        self.items.iter().any(|c| match c {
            Constraint::Unique { table: t, columns: cols, conditions: conds } => {
                t == table
                    && cols.iter().map(String::as_str).collect::<BTreeSet<_>>() == want_cols
                    && *conds == want_conds
            }
            _ => false,
        })
    }

    /// Number of constraints in the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns true if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates constraints in normalized (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.items.iter()
    }

    /// Constraints of one type, in normalized order.
    pub fn of_type(&self, ty: ConstraintType) -> impl Iterator<Item = &Constraint> {
        self.items.iter().filter(move |c| c.constraint_type() == ty)
    }

    /// Count of constraints of one type.
    pub fn count_of(&self, ty: ConstraintType) -> usize {
        self.of_type(ty).count()
    }

    // --- query-optimizer lookup API ------------------------------------------
    //
    // The minidb rewrite pass (`cfinder-minidb::rewrite`) consumes an
    // analyzer-produced set through these accessors; they answer the four
    // questions a rewrite rule may ask without the caller re-implementing
    // normalization or partial-unique subtleties.

    /// Is `table.column` declared NOT NULL?
    pub fn is_not_null(&self, table: &str, column: &str) -> bool {
        self.items.iter().any(|c| {
            matches!(c, Constraint::NotNull { table: t, column: col } if t == table && col == column)
        })
    }

    /// The column sets of every *full* (unconditional) unique constraint
    /// on `table`, in normalized order. Partial uniques are excluded: a
    /// `UNIQUE (code) WHERE active = TRUE` guarantees nothing about rows
    /// outside its condition, so no rewrite may rely on it.
    pub fn full_unique_sets(&self, table: &str) -> Vec<&[String]> {
        self.items
            .iter()
            .filter_map(|c| match c {
                Constraint::Unique { table: t, columns, conditions }
                    if t == table && conditions.is_empty() =>
                {
                    Some(columns.as_slice())
                }
                _ => None,
            })
            .collect()
    }

    /// Is there a full (unconditional) unique constraint on exactly
    /// `table.column` alone?
    pub fn has_single_column_unique(&self, table: &str, column: &str) -> bool {
        self.contains_unique_exact(table, &[column], &[])
    }

    /// The foreign-key target of `table.column`, if one is declared:
    /// `(ref_table, ref_column)`.
    pub fn foreign_key_of(&self, table: &str, column: &str) -> Option<(&str, &str)> {
        self.items.iter().find_map(|c| match c {
            Constraint::ForeignKey { table: t, column: col, ref_table, ref_column }
                if t == table && col == column =>
            {
                Some((ref_table.as_str(), ref_column.as_str()))
            }
            _ => None,
        })
    }

    /// Every CHECK predicate declared on `table.column`, in normalized
    /// order.
    pub fn checks_on(&self, table: &str, column: &str) -> Vec<&Predicate> {
        self.items
            .iter()
            .filter_map(|c| match c {
                Constraint::Check { table: t, predicate } if t == table => {
                    (predicate.column() == column).then_some(predicate)
                }
                _ => None,
            })
            .collect()
    }

    /// Set difference: constraints in `self` that are absent from `other`.
    ///
    /// This is the §3.5.3 step: `inferred.difference(&existing)` yields the
    /// missing constraints.
    #[must_use]
    pub fn difference(&self, other: &ConstraintSet) -> ConstraintSet {
        ConstraintSet { items: self.items.difference(&other.items).cloned().collect() }
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &ConstraintSet) -> ConstraintSet {
        ConstraintSet { items: self.items.intersection(&other.items).cloned().collect() }
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &ConstraintSet) -> ConstraintSet {
        ConstraintSet { items: self.items.union(&other.items).cloned().collect() }
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> Self {
        ConstraintSet { items: iter.into_iter().collect() }
    }
}

impl Extend<Constraint> for ConstraintSet {
    fn extend<T: IntoIterator<Item = Constraint>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

impl IntoIterator for ConstraintSet {
    type Item = Constraint;
    type IntoIter = std::collections::btree_set::IntoIter<Constraint>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a ConstraintSet {
    type Item = &'a Constraint;
    type IntoIter = std::collections::btree_set::Iter<'a, Constraint>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_normalizes_column_order() {
        let a = Constraint::unique("wishlist_line", ["product", "wishlist"]);
        let b = Constraint::unique("wishlist_line", ["wishlist", "product"]);
        assert_eq!(a, b);
    }

    #[test]
    fn unique_dedups_columns() {
        let c = Constraint::unique("t", ["a", "a", "b"]);
        assert_eq!(c.columns(), vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn unique_requires_columns() {
        let _ = Constraint::unique("t", Vec::<String>::new());
    }

    #[test]
    fn partial_unique_differs_from_full() {
        let full = Constraint::unique("voucher", ["code"]);
        let partial = Constraint::partial_unique(
            "voucher",
            ["code"],
            vec![Condition { column: "active".into(), value: Literal::Bool(true) }],
        );
        assert_ne!(full, partial);
        assert!(partial.is_partial_unique());
        assert!(!full.is_partial_unique());
    }

    #[test]
    fn describe_matches_paper_style() {
        assert_eq!(
            Constraint::unique("WishlistLine", ["wishlist", "product"]).describe(),
            "WishlistLine Unique (product, wishlist)"
        );
        assert_eq!(Constraint::not_null("Order", "total").describe(), "Order Not NULL (total)");
        assert_eq!(
            Constraint::foreign_key("Discount", "voucher_id", "Voucher", "id").describe(),
            "Discount FK (voucher_id) ref Voucher(id)"
        );
    }

    #[test]
    fn ddl_generation() {
        assert_eq!(
            Constraint::not_null("orders", "total").ddl(),
            "ALTER TABLE \"orders\" ALTER COLUMN \"total\" SET NOT NULL;"
        );
        assert_eq!(
            Constraint::unique("users", ["email"]).ddl(),
            "ALTER TABLE \"users\" ADD CONSTRAINT \"uq_users_email\" UNIQUE (\"email\");"
        );
        assert_eq!(
            Constraint::foreign_key("orders", "basket_id", "baskets", "id").ddl(),
            "ALTER TABLE \"orders\" ADD CONSTRAINT \"fk_orders_basket_id\" FOREIGN KEY (\"basket_id\") REFERENCES \"baskets\"(\"id\");"
        );
        let partial = Constraint::partial_unique(
            "vouchers",
            ["code"],
            vec![Condition { column: "active".into(), value: Literal::Bool(true) }],
        );
        assert_eq!(
            partial.ddl(),
            "CREATE UNIQUE INDEX \"uq_vouchers_code\" ON \"vouchers\" (\"code\") WHERE \"active\" = TRUE;"
        );
    }

    #[test]
    fn ddl_quotes_reserved_word_identifiers() {
        // Regression for the paper's §3 running example: table `order` is
        // a reserved word in PostgreSQL, MySQL, and SQLite — the unquoted
        // emission this replaced produced invalid SQL for it.
        assert_eq!(
            Constraint::not_null("order", "total").ddl(),
            "ALTER TABLE \"order\" ALTER COLUMN \"total\" SET NOT NULL;"
        );
        assert_eq!(
            Constraint::unique("order", ["number"]).ddl(),
            "ALTER TABLE \"order\" ADD CONSTRAINT \"uq_order_number\" UNIQUE (\"number\");"
        );
        assert_eq!(
            Constraint::foreign_key("order", "basket_id", "basket", "id").ddl(),
            "ALTER TABLE \"order\" ADD CONSTRAINT \"fk_order_basket_id\" FOREIGN KEY (\"basket_id\") REFERENCES \"basket\"(\"id\");"
        );
        // Embedded quotes are doubled, never truncated.
        assert_eq!(
            Constraint::not_null("we\"ird", "c").ddl(),
            "ALTER TABLE \"we\"\"ird\" ALTER COLUMN \"c\" SET NOT NULL;"
        );
    }

    #[test]
    fn set_difference_is_missing_constraints() {
        let inferred: ConstraintSet = [
            Constraint::not_null("order", "total"),
            Constraint::unique("user", ["email"]),
            Constraint::foreign_key("order", "basket_id", "basket", "id"),
        ]
        .into_iter()
        .collect();
        let existing: ConstraintSet =
            [Constraint::not_null("order", "total")].into_iter().collect();
        let missing = inferred.difference(&existing);
        assert_eq!(missing.len(), 2);
        assert!(!missing.contains(&Constraint::not_null("order", "total")));
        assert!(missing.contains(&Constraint::unique("user", ["email"])));
    }

    #[test]
    fn contains_unique_columns_ignores_conditions_and_order() {
        let mut set = ConstraintSet::new();
        set.insert(Constraint::partial_unique(
            "t",
            ["b", "a"],
            vec![Condition { column: "ok".into(), value: Literal::Bool(true) }],
        ));
        assert!(set.contains_unique_columns("t", &["a", "b"]));
        assert!(set.contains_unique_columns("t", &["b", "a"]));
        assert!(!set.contains_unique_columns("t", &["a"]));
        assert!(!set.contains_unique_columns("other", &["a", "b"]));
    }

    #[test]
    fn count_of_type() {
        let set: ConstraintSet = [
            Constraint::not_null("a", "x"),
            Constraint::not_null("a", "y"),
            Constraint::unique("a", ["x"]),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.count_of(ConstraintType::NotNull), 2);
        assert_eq!(set.count_of(ConstraintType::Unique), 1);
        assert_eq!(set.count_of(ConstraintType::ForeignKey), 0);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut set = ConstraintSet::new();
        assert!(set.insert(Constraint::not_null("t", "c")));
        assert!(!set.insert(Constraint::not_null("t", "c")));
        assert_eq!(set.len(), 1);
        assert!(set.remove(&Constraint::not_null("t", "c")));
        assert!(set.is_empty());
    }

    #[test]
    fn union_and_intersection() {
        let a: ConstraintSet = [Constraint::not_null("t", "x")].into_iter().collect();
        let b: ConstraintSet =
            [Constraint::not_null("t", "x"), Constraint::not_null("t", "y")].into_iter().collect();
        assert_eq!(a.union(&b).len(), 2);
        assert_eq!(a.intersection(&b).len(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let c = Constraint::partial_unique(
            "t",
            ["a"],
            vec![Condition { column: "ok".into(), value: Literal::Bool(true) }],
        );
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<Constraint>(&json).unwrap(), c);
        let c = Constraint::check(
            "orders",
            Predicate::compare("total", crate::predicate::CompareOp::Gt, Literal::Int(0)),
        );
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<Constraint>(&json).unwrap(), c);
        let c = Constraint::default_value("orders", "status", Literal::Str("Pending".into()));
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<Constraint>(&json).unwrap(), c);
    }

    #[test]
    fn check_and_default_ddl_and_describe() {
        use crate::predicate::CompareOp;
        let check = Constraint::check(
            "orders",
            Predicate::compare("total", CompareOp::Gt, Literal::Int(0)),
        );
        assert_eq!(check.constraint_type(), ConstraintType::Check);
        assert_eq!(check.columns(), vec!["total"]);
        assert_eq!(
            check.ddl(),
            "ALTER TABLE \"orders\" ADD CONSTRAINT \"ck_orders_total\" CHECK (\"total\" > 0);"
        );
        assert_eq!(check.describe(), "orders Check (total > 0)");

        let member = Constraint::check(
            "orders",
            Predicate::in_values(
                "status",
                [Literal::Str("Open".into()), Literal::Str("Closed".into())],
            ),
        );
        assert_eq!(
            member.ddl(),
            "ALTER TABLE \"orders\" ADD CONSTRAINT \"ck_orders_status\" CHECK (\"status\" IN ('Closed', 'Open'));"
        );

        let default = Constraint::default_value("orders", "status", Literal::Str("Pending".into()));
        assert_eq!(default.constraint_type(), ConstraintType::Default);
        assert_eq!(default.columns(), vec!["status"]);
        assert_eq!(
            default.ddl(),
            "ALTER TABLE \"orders\" ALTER COLUMN \"status\" SET DEFAULT 'Pending';"
        );
        assert_eq!(default.describe(), "orders Default (status = 'Pending')");
    }

    #[test]
    #[should_panic(expected = "DEFAULT NULL")]
    fn default_null_is_rejected() {
        let _ = Constraint::default_value("t", "c", Literal::Null);
    }

    #[test]
    fn contradictory_partial_unique_is_rejected() {
        let conds = vec![
            Condition { column: "active".into(), value: Literal::Bool(true) },
            Condition { column: "active".into(), value: Literal::Bool(false) },
        ];
        assert_eq!(
            Constraint::try_partial_unique("t", ["code"], conds),
            Err(ConstraintError::ContradictoryConditions { column: "active".into() })
        );
        // The same condition twice is merely redundant, not contradictory.
        let dup = vec![
            Condition { column: "active".into(), value: Literal::Bool(true) },
            Condition { column: "active".into(), value: Literal::Bool(true) },
        ];
        let c = Constraint::try_partial_unique("t", ["code"], dup).unwrap();
        assert!(matches!(&c, Constraint::Unique { conditions, .. } if conditions.len() == 1));
        assert_eq!(
            Constraint::try_partial_unique("t", Vec::<String>::new(), Vec::new()),
            Err(ConstraintError::EmptyColumns)
        );
        assert!(ConstraintError::EmptyColumns.to_string().contains("at least one column"));
    }

    #[test]
    #[should_panic(expected = "contradictory partial-unique conditions")]
    fn partial_unique_panics_on_contradiction() {
        let _ = Constraint::partial_unique(
            "t",
            ["code"],
            vec![
                Condition { column: "active".into(), value: Literal::Bool(true) },
                Condition { column: "active".into(), value: Literal::Bool(false) },
            ],
        );
    }

    #[test]
    fn contains_unique_exact_is_condition_sensitive() {
        let cond = Condition { column: "ok".into(), value: Literal::Bool(true) };
        let mut set = ConstraintSet::new();
        set.insert(Constraint::partial_unique("t", ["b", "a"], vec![cond.clone()]));
        assert!(set.contains_unique_columns("t", &["a", "b"]));
        assert!(set.contains_unique_exact("t", &["a", "b"], std::slice::from_ref(&cond)));
        // Duplicate and reordered conditions normalize before comparing.
        assert!(set.contains_unique_exact("t", &["b", "a"], &[cond.clone(), cond.clone()]));
        assert!(!set.contains_unique_exact("t", &["a", "b"], &[]));
        assert!(!set.contains_unique_exact(
            "t",
            &["a", "b"],
            &[Condition { column: "ok".into(), value: Literal::Bool(false) }]
        ));
        set.insert(Constraint::unique("t", ["c"]));
        assert!(set.contains_unique_exact("t", &["c"], &[]));
    }

    #[test]
    fn lookup_api_answers_rewrite_questions() {
        use crate::predicate::CompareOp;
        let set: ConstraintSet = [
            Constraint::not_null("orders", "total"),
            Constraint::unique("users", ["email"]),
            Constraint::unique("users", ["first", "last"]),
            Constraint::partial_unique(
                "users",
                ["code"],
                vec![Condition { column: "active".into(), value: Literal::Bool(true) }],
            ),
            Constraint::foreign_key("orders", "user_id", "users", "id"),
            Constraint::check(
                "orders",
                Predicate::compare("total", CompareOp::Gt, Literal::Int(0)),
            ),
            Constraint::check(
                "orders",
                Predicate::in_values(
                    "status",
                    [Literal::Str("Open".into()), Literal::Str("Closed".into())],
                ),
            ),
        ]
        .into_iter()
        .collect();

        assert!(set.is_not_null("orders", "total"));
        assert!(!set.is_not_null("orders", "status"));
        assert!(!set.is_not_null("users", "total"));

        let uniques = set.full_unique_sets("users");
        assert_eq!(uniques.len(), 2, "partial unique must be excluded: {uniques:?}");
        assert!(uniques.iter().any(|cols| *cols == ["email".to_string()]));
        assert!(uniques.iter().any(|cols| *cols == ["first".to_string(), "last".to_string()]));
        assert!(set.full_unique_sets("orders").is_empty());

        assert!(set.has_single_column_unique("users", "email"));
        // Partial unique on `code` must not count.
        assert!(!set.has_single_column_unique("users", "code"));
        assert!(!set.has_single_column_unique("users", "first"));

        assert_eq!(set.foreign_key_of("orders", "user_id"), Some(("users", "id")));
        assert_eq!(set.foreign_key_of("orders", "total"), None);

        assert_eq!(set.checks_on("orders", "total").len(), 1);
        assert_eq!(set.checks_on("orders", "status").len(), 1);
        assert!(set.checks_on("orders", "user_id").is_empty());
        assert!(set.checks_on("users", "total").is_empty());
    }

    #[test]
    fn clamp_identifier_bounds_and_disambiguates() {
        // Short names are returned byte-identical.
        assert_eq!(clamp_identifier("uq_users_email"), "uq_users_email");
        let exactly = "x".repeat(MAX_IDENTIFIER_BYTES);
        assert_eq!(clamp_identifier(&exactly), exactly);

        // Long names clamp to the bound and keep a recognizable prefix.
        let base = format!("uq_line_{}", "very_long_column_name_".repeat(4));
        let a = format!("{base}alpha");
        let b = format!("{base}beta");
        assert!(a.len() > MAX_IDENTIFIER_BYTES && b.len() > MAX_IDENTIFIER_BYTES);
        let ca = clamp_identifier(&a);
        let cb = clamp_identifier(&b);
        assert_eq!(ca.len(), MAX_IDENTIFIER_BYTES);
        assert_eq!(cb.len(), MAX_IDENTIFIER_BYTES);
        assert!(ca.starts_with("uq_line_very_long_column_name_"));
        // The two names share their first 63 bytes, so PostgreSQL-style
        // truncation would collide them; the hash suffix must not.
        assert_eq!(a.as_bytes()[..MAX_IDENTIFIER_BYTES], b.as_bytes()[..MAX_IDENTIFIER_BYTES]);
        assert_ne!(ca, cb);
        // Deterministic.
        assert_eq!(ca, clamp_identifier(&a));

        // Multi-byte characters are cut at a boundary, never mid-char.
        let unicode = format!("uq_{}", "é".repeat(60));
        let clamped = clamp_identifier(&unicode);
        assert!(clamped.len() <= MAX_IDENTIFIER_BYTES);
        assert!(std::str::from_utf8(clamped.as_bytes()).is_ok());
    }

    #[test]
    fn long_generated_names_are_clamped_in_ddl() {
        let cols: Vec<String> = (0..12).map(|i| format!("customer_reference_{i}")).collect();
        let c = Constraint::unique("order_line_attribute_history", cols);
        let ddl = c.ddl();
        let name = ddl.split('"').nth(3).unwrap();
        assert!(name.len() <= MAX_IDENTIFIER_BYTES, "{name}");
        assert!(name.starts_with("uq_order_line_attribute_history_"), "{name}");
    }
}
