//! # cfinder-schema
//!
//! Relational schema modeling for the CFinder reproduction: tables,
//! columns, the three database-constraint types the paper studies
//! (not-null, unique — including composite and partial —, foreign key)
//! plus the CHECK/DEFAULT extension with its normalized predicate AST,
//! schema migrations with history metadata, and the §2 empirical-study
//! analytics (afterthought constraints, reasons, consequences,
//! vulnerable-window lengths).
//!
//! The [`Schema`] type stands in for the `information_schema` view the
//! paper's tool reads: the declared constraint state that inferred
//! constraints are diffed against (§3.5.3).
//!
//! ```
//! use cfinder_schema::{Column, ColumnType, Constraint, Schema, Table};
//!
//! let mut schema = Schema::new();
//! schema.add_table(
//!     Table::new("users").with_column(Column::new("email", ColumnType::VarChar(254))),
//! );
//! schema.add_constraint(Constraint::unique("users", ["email"])).unwrap();
//! assert!(schema.constraints().contains(&Constraint::unique("users", ["email"])));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod constraint;
pub mod history;
pub mod migration;
pub mod predicate;
pub mod table;
pub mod types;

pub use constraint::{
    clamp_identifier, Condition, Constraint, ConstraintError, ConstraintSet, ConstraintType,
    MAX_IDENTIFIER_BYTES,
};
pub use history::{MigrationHistory, MissingConstraintRecord, StudyReport};
pub use migration::{
    AddReason, CodeCheckStatus, Consequence, ConstraintMeta, IssueRef, Migration, MigrationOp,
};
pub use predicate::{CompareOp, Predicate};
pub use table::{Column, Schema, Table};
pub use types::{ColumnType, Literal};
