//! Migration-history replay and the §2 empirical study.
//!
//! [`MigrationHistory`] replays an app's migrations into a [`Schema`] and
//! computes the study aggregates behind the paper's Tables 2 and 3:
//! which constraints were "missed first and added in later pull requests",
//! why they were added, what the consequences were, and how long the
//! vulnerable window stayed open.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::constraint::{Constraint, ConstraintType};
use crate::migration::{AddReason, CodeCheckStatus, Consequence, Migration, MigrationOp};
use crate::table::Schema;

/// The ordered migration history of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationHistory {
    /// Application name.
    pub app: String,
    /// Migrations in ascending `index` order.
    pub migrations: Vec<Migration>,
}

impl MigrationHistory {
    /// Creates a history, verifying that migration indices ascend.
    ///
    /// # Panics
    ///
    /// Panics if indices or months are not non-decreasing.
    pub fn new(app: impl Into<String>, migrations: Vec<Migration>) -> Self {
        for w in migrations.windows(2) {
            assert!(w[0].index < w[1].index, "migration indices must ascend");
            assert!(w[0].month <= w[1].month, "migration months must not decrease");
        }
        MigrationHistory { app: app.into(), migrations }
    }

    /// Replays the full history into a schema.
    ///
    /// # Errors
    ///
    /// Returns the first replay error.
    pub fn replay(&self) -> Result<Schema, String> {
        self.replay_through(u32::MAX)
    }

    /// Replays migrations with `index <= last_index` — the "old version of
    /// the code" view used by the paper's Table 9 evaluation.
    ///
    /// # Errors
    ///
    /// Returns the first replay error.
    pub fn replay_through(&self, last_index: u32) -> Result<Schema, String> {
        let mut schema = Schema::new();
        for m in self.migrations.iter().filter(|m| m.index <= last_index) {
            m.apply(&mut schema)?;
        }
        Ok(schema)
    }

    /// Computes the §2 study aggregates.
    pub fn study(&self) -> StudyReport {
        // When was each column created? (table, column) -> month.
        let mut column_created: HashMap<(String, String), u32> = HashMap::new();
        let mut records = Vec::new();
        for m in &self.migrations {
            for op in &m.ops {
                match op {
                    MigrationOp::CreateTable(t) => {
                        for c in &t.columns {
                            column_created.insert((t.name.clone(), c.name.clone()), m.month);
                        }
                    }
                    MigrationOp::AddColumn { table, column } => {
                        column_created.insert((table.clone(), column.name.clone()), m.month);
                    }
                    MigrationOp::AddConstraint { constraint, meta } => {
                        // A constraint is "missing" when it was added in a
                        // later migration than its column(s) (§2: "not
                        // specified when the columns are created, and added
                        // later in another pull request").
                        let created_month = constraint
                            .columns()
                            .iter()
                            .filter_map(|c| {
                                column_created
                                    .get(&(constraint.table().to_string(), (*c).to_string()))
                            })
                            .max()
                            .copied();
                        let was_missing = meta.reason != AddReason::WithCreation
                            && created_month.is_some_and(|cm| m.month > cm);
                        if was_missing {
                            records.push(MissingConstraintRecord {
                                constraint: constraint.clone(),
                                reason: meta.reason,
                                consequence: meta.issue.as_ref().map(|i| i.consequence),
                                code_checks: meta.issue.as_ref().map(|i| i.code_checks),
                                months_missing: m.month - created_month.unwrap_or(0),
                                added_in_migration: m.index,
                            });
                        }
                    }
                    MigrationOp::DropConstraint(_) => {}
                }
            }
        }
        StudyReport { app: self.app.clone(), records }
    }
}

/// One constraint that was missed first and added later.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissingConstraintRecord {
    /// The constraint that was eventually added.
    pub constraint: Constraint,
    /// Why it was added.
    pub reason: AddReason,
    /// Consequence of the motivating issue, if any.
    pub consequence: Option<Consequence>,
    /// Code-check status of the motivating issue, if any.
    pub code_checks: Option<CodeCheckStatus>,
    /// Length of the vulnerable window, in months.
    pub months_missing: u32,
    /// Migration index that added the constraint.
    pub added_in_migration: u32,
}

/// Aggregates for one application's study (feeds Tables 2 and 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyReport {
    /// Application name.
    pub app: String,
    /// All afterthought-constraint records.
    pub records: Vec<MissingConstraintRecord>,
}

impl StudyReport {
    /// Total afterthought constraints (one Table 2 cell).
    pub fn total(&self) -> usize {
        self.records.len()
    }

    /// Count per constraint type (Table 2 rows).
    pub fn count_by_type(&self, ty: ConstraintType) -> usize {
        self.records.iter().filter(|r| r.constraint.constraint_type() == ty).count()
    }

    /// Count per add-reason (Table 3 columns).
    pub fn count_by_reason(&self, reason: AddReason) -> usize {
        self.records.iter().filter(|r| r.reason == reason).count()
    }

    /// Count per (type, reason) — Table 3 cells.
    pub fn count_by_type_and_reason(&self, ty: ConstraintType, reason: AddReason) -> usize {
        self.records
            .iter()
            .filter(|r| r.constraint.constraint_type() == ty && r.reason == reason)
            .count()
    }

    /// Fraction of afterthought constraints that are issue-related
    /// (the paper's 82%).
    pub fn issue_related_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let n = self.records.iter().filter(|r| r.reason.is_issue_related()).count();
        n as f64 / self.records.len() as f64
    }

    /// Mean vulnerable-window length in months (the paper's "on average 19
    /// months").
    pub fn mean_months_missing(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let sum: u32 = self.records.iter().map(|r| r.months_missing).sum();
        f64::from(sum) / self.records.len() as f64
    }

    /// Breakdown of issue consequences (18 crashes / 8 corruptions / … in
    /// the paper).
    pub fn count_by_consequence(&self, consequence: Consequence) -> usize {
        self.records.iter().filter(|r| r.consequence == Some(consequence)).count()
    }

    /// Breakdown of code-check status among issue-backed records
    /// (Observation 3's 73% / 13% / 13%).
    pub fn count_by_code_checks(&self, status: CodeCheckStatus) -> usize {
        self.records.iter().filter(|r| r.code_checks == Some(status)).count()
    }

    /// Merges several app reports into a "Total" report.
    pub fn merged<'a>(reports: impl IntoIterator<Item = &'a StudyReport>) -> StudyReport {
        let mut records = Vec::new();
        for r in reports {
            records.extend(r.records.iter().cloned());
        }
        StudyReport { app: "Total".to_string(), records }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{ConstraintMeta, IssueRef};
    use crate::table::{Column, Table};
    use crate::types::ColumnType;

    fn history_with_afterthought() -> MigrationHistory {
        MigrationHistory::new(
            "shop",
            vec![
                Migration {
                    index: 0,
                    month: 0,
                    ops: vec![MigrationOp::CreateTable(
                        Table::new("orders")
                            .with_column(Column::new("total", ColumnType::Decimal(12, 2)))
                            .with_column(Column::new("number", ColumnType::VarChar(32))),
                    )],
                },
                Migration {
                    index: 1,
                    month: 0,
                    ops: vec![MigrationOp::AddConstraint {
                        // Same month as creation but reason WithCreation:
                        // not an afterthought.
                        constraint: Constraint::unique("orders", ["number"]),
                        meta: ConstraintMeta::with_creation(),
                    }],
                },
                Migration {
                    index: 2,
                    month: 19,
                    ops: vec![MigrationOp::AddConstraint {
                        constraint: Constraint::not_null("orders", "total"),
                        meta: ConstraintMeta {
                            reason: AddReason::FromReportedIssue,
                            issue: Some(IssueRef {
                                id: 1670,
                                consequence: Consequence::PageCrash,
                                code_checks: CodeCheckStatus::NoChecks,
                            }),
                        },
                    }],
                },
            ],
        )
    }

    #[test]
    fn replay_produces_full_schema() {
        let h = history_with_afterthought();
        let s = h.replay().unwrap();
        assert!(s.constraints().contains(&Constraint::not_null("orders", "total")));
        assert!(s.constraints().contains(&Constraint::unique("orders", ["number"])));
    }

    #[test]
    fn replay_through_gives_old_version() {
        let h = history_with_afterthought();
        let s = h.replay_through(1).unwrap();
        assert!(!s.constraints().contains(&Constraint::not_null("orders", "total")));
        assert!(s.constraints().contains(&Constraint::unique("orders", ["number"])));
    }

    #[test]
    fn study_flags_only_afterthoughts() {
        let h = history_with_afterthought();
        let report = h.study();
        assert_eq!(report.total(), 1);
        let rec = &report.records[0];
        assert_eq!(rec.constraint, Constraint::not_null("orders", "total"));
        assert_eq!(rec.months_missing, 19);
        assert_eq!(rec.reason, AddReason::FromReportedIssue);
        assert_eq!(rec.consequence, Some(Consequence::PageCrash));
    }

    #[test]
    fn study_aggregates() {
        let h = history_with_afterthought();
        let report = h.study();
        assert_eq!(report.count_by_type(ConstraintType::NotNull), 1);
        assert_eq!(report.count_by_type(ConstraintType::Unique), 0);
        assert_eq!(report.count_by_reason(AddReason::FromReportedIssue), 1);
        assert!((report.issue_related_fraction() - 1.0).abs() < 1e-9);
        assert!((report.mean_months_missing() - 19.0).abs() < 1e-9);
        assert_eq!(report.count_by_consequence(Consequence::PageCrash), 1);
        assert_eq!(report.count_by_code_checks(CodeCheckStatus::NoChecks), 1);
    }

    #[test]
    fn merged_totals() {
        let h = history_with_afterthought();
        let a = h.study();
        let b = h.study();
        let merged = StudyReport::merged([&a, &b]);
        assert_eq!(merged.total(), 2);
        assert_eq!(merged.app, "Total");
    }

    #[test]
    #[should_panic(expected = "indices must ascend")]
    fn non_ascending_indices_panic() {
        let m = Migration { index: 1, month: 0, ops: vec![] };
        let m2 = Migration { index: 0, month: 0, ops: vec![] };
        let _ = MigrationHistory::new("x", vec![m, m2]);
    }

    #[test]
    fn empty_report_fractions_are_zero() {
        let report = StudyReport { app: "x".into(), records: vec![] };
        assert_eq!(report.issue_related_fraction(), 0.0);
        assert_eq!(report.mean_months_missing(), 0.0);
    }
}
