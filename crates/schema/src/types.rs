//! Column types and literal values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// SQL column types, matching what Django's field types map onto.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 32-bit integer (`IntegerField`).
    Integer,
    /// 64-bit integer (`BigIntegerField`, implicit `id` keys).
    BigInt,
    /// Double-precision float (`FloatField`).
    Float,
    /// Fixed-point decimal (`DecimalField`): digits and decimal places.
    Decimal(u8, u8),
    /// Bounded string (`CharField(max_length)`).
    VarChar(u32),
    /// Unbounded string (`TextField`).
    Text,
    /// Boolean (`BooleanField`).
    Boolean,
    /// Timestamp (`DateTimeField`).
    DateTime,
    /// Calendar date (`DateField`).
    Date,
    /// JSON document (`JSONField`).
    Json,
}

impl ColumnType {
    /// SQL-ish name used in rendered schemas and reports.
    pub fn sql_name(&self) -> String {
        match self {
            ColumnType::Integer => "integer".to_string(),
            ColumnType::BigInt => "bigint".to_string(),
            ColumnType::Float => "double precision".to_string(),
            ColumnType::Decimal(p, s) => format!("numeric({p},{s})"),
            ColumnType::VarChar(n) => format!("varchar({n})"),
            ColumnType::Text => "text".to_string(),
            ColumnType::Boolean => "boolean".to_string(),
            ColumnType::DateTime => "timestamp".to_string(),
            ColumnType::Date => "date".to_string(),
            ColumnType::Json => "jsonb".to_string(),
        }
    }

    /// Returns true for the textual types.
    pub fn is_textual(&self) -> bool {
        matches!(self, ColumnType::VarChar(_) | ColumnType::Text)
    }

    /// Returns true for the numeric types.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            ColumnType::Integer
                | ColumnType::BigInt
                | ColumnType::Float
                | ColumnType::Decimal(_, _)
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sql_name())
    }
}

/// A literal value, used in column defaults and partial-unique conditions.
///
/// Floats are excluded on purpose: literals participate in `Eq`/`Hash`
/// (constraint-set membership), and the corpus never needs float conditions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Literal {
    /// SQL NULL.
    Null,
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
}

impl Literal {
    /// Renders as SQL literal text.
    pub fn sql(&self) -> String {
        match self {
            Literal::Null => "NULL".to_string(),
            Literal::Int(v) => v.to_string(),
            Literal::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Literal::Bool(true) => "TRUE".to_string(),
            Literal::Bool(false) => "FALSE".to_string(),
        }
    }

    /// Returns true if this literal is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Literal::Null)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_names() {
        assert_eq!(ColumnType::VarChar(128).sql_name(), "varchar(128)");
        assert_eq!(ColumnType::Decimal(12, 2).sql_name(), "numeric(12,2)");
        assert_eq!(ColumnType::BigInt.sql_name(), "bigint");
    }

    #[test]
    fn classification() {
        assert!(ColumnType::Text.is_textual());
        assert!(!ColumnType::Text.is_numeric());
        assert!(ColumnType::Decimal(10, 2).is_numeric());
        assert!(ColumnType::Integer.is_numeric());
        assert!(!ColumnType::Boolean.is_numeric());
    }

    #[test]
    fn literal_sql_escapes_quotes() {
        assert_eq!(Literal::Str("it's".into()).sql(), "'it''s'");
        assert_eq!(Literal::Null.sql(), "NULL");
        assert_eq!(Literal::Bool(true).sql(), "TRUE");
        assert_eq!(Literal::Int(-3).sql(), "-3");
    }

    #[test]
    fn literal_null_check() {
        assert!(Literal::Null.is_null());
        assert!(!Literal::Int(0).is_null());
    }

    #[test]
    fn serde_round_trip() {
        let t = ColumnType::Decimal(12, 2);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<ColumnType>(&json).unwrap(), t);
        let l = Literal::Str("x".into());
        let json = serde_json::to_string(&l).unwrap();
        assert_eq!(serde_json::from_str::<Literal>(&json).unwrap(), l);
    }
}
